//! Umbrella crate for the ITUA reproduction workspace.
//!
//! Re-exports the full stack so examples and integration tests can depend on
//! a single crate:
//!
//! * [`sim`] — discrete-event kernel (RNG, distributions, event queue).
//! * [`stats`] — estimators, confidence intervals, replications.
//! * [`markov`] — sparse CTMC/DTMC numerical solvers.
//! * [`san`] — the stochastic activity network formalism and simulator.
//! * [`itua`] — the ITUA intrusion-tolerant replication model (the paper's
//!   object of study) in both SAN and direct discrete-event form.
//! * [`rare`] — RESTART-style importance splitting for rare-event
//!   (unreliability tail) estimation.
//! * [`runner`] — parallel experiment execution with deterministic
//!   reduction, progress reporting, and a resumable result store.
//! * [`studies`] — the paper's Figure 3/4/5 studies and sweep harness.
//! * [`scenario`] — the declarative experiment layer: the scenario trait,
//!   the built-in study registry behind the `itua` CLI, and the `.scn`
//!   scenario-file parser.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the system
//! inventory.

pub use itua_analyzer as analyzer;
pub use itua_core as itua;
pub use itua_markov as markov;
pub use itua_rare as rare;
pub use itua_runner as runner;
pub use itua_san as san;
pub use itua_scenario as scenario;
pub use itua_sim as sim;
pub use itua_stats as stats;
pub use itua_studies as studies;

//! Random-variate distributions for activity firing times.
//!
//! Every distribution validates its parameters at construction and exposes
//! moments where they exist in closed form, so tests can compare empirical
//! and analytic values.

use crate::rng::Rng;
use std::f64::consts::PI;
use std::fmt;

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        ParamError { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// A source of nonnegative random variates.
///
/// Implementors must return values that are finite and `>= 0`; firing times
/// in a stochastic activity network are durations.
pub trait Distribution: fmt::Debug + Send + Sync {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// The distribution mean, if finite and known in closed form.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// Exponential distribution with the given rate (`mean = 1/rate`).
///
/// The workhorse of Markovian activity timing.
///
/// # Example
///
/// ```
/// use itua_sim::dist::{Distribution, Exponential};
/// # fn main() -> Result<(), itua_sim::dist::ParamError> {
/// let d = Exponential::new(4.0)?;
/// assert_eq!(d.mean(), Some(0.25));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ParamError::new(format!("exponential rate {rate}")));
        }
        Ok(Exponential { rate })
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }
}

/// Continuous uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the bounds are not finite, `low < 0`, or
    /// `low >= high`.
    pub fn new(low: f64, high: f64) -> Result<Self, ParamError> {
        if !low.is_finite() || !high.is_finite() || low < 0.0 || low >= high {
            return Err(ParamError::new(format!("uniform bounds [{low}, {high})")));
        }
        Ok(Uniform { low, high })
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.f64_range(self.low, self.high)
    }

    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.low + self.high))
    }
}

/// Deterministic (constant) delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a constant delay of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `value` is negative or not finite.
    pub fn new(value: f64) -> Result<Self, ParamError> {
        if !value.is_finite() || value < 0.0 {
            return Err(ParamError::new(format!("deterministic delay {value}")));
        }
        Ok(Deterministic { value })
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.value
    }

    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }
}

/// Erlang distribution: sum of `k` independent exponentials of rate `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    rate: f64,
}

impl Erlang {
    /// Creates an Erlang distribution with shape `k` and rate `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `k == 0` or `rate` is not finite positive.
    pub fn new(k: u32, rate: f64) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::new("erlang shape k = 0"));
        }
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ParamError::new(format!("erlang rate {rate}")));
        }
        Ok(Erlang { k, rate })
    }
}

impl Distribution for Erlang {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Product-of-uniforms form avoids k calls to ln().
        let mut prod = 1.0;
        for _ in 0..self.k {
            prod *= rng.next_f64_open();
        }
        -prod.ln() / self.rate
    }

    fn mean(&self) -> Option<f64> {
        Some(self.k as f64 / self.rate)
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// Used to model non-memoryless attacker inter-arrival processes
/// (increasing-hazard attacks for `k > 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both parameters are finite and
    /// positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !shape.is_finite() || shape <= 0.0 || !scale.is_finite() || scale <= 0.0 {
            return Err(ParamError::new(format!(
                "weibull shape {shape} scale {scale}"
            )));
        }
        Ok(Weibull { shape, scale })
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.scale * (-rng.next_f64_open().ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.scale * gamma(1.0 + 1.0 / self.shape))
    }
}

/// Lognormal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lognormal {
    mu: f64,
    sigma: f64,
}

impl Lognormal {
    /// Creates a lognormal distribution with log-mean `mu` and log-standard
    /// deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `mu` is not finite or `sigma` is not finite
    /// and positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
            return Err(ParamError::new(format!("lognormal mu {mu} sigma {sigma}")));
        }
        Ok(Lognormal { mu, sigma })
    }
}

impl Distribution for Lognormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
}

/// Samples a standard normal variate by the Marsaglia polar method.
pub fn standard_normal(rng: &mut Rng) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Lanczos approximation of the gamma function (for Weibull moments).
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        PI / ((PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A discrete distribution over `0..weights.len()` (for case selection and
/// categorical workloads).
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Creates a discrete distribution proportional to `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `weights` is empty, any weight is negative
    /// or non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("discrete: empty weights"));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(ParamError::new(format!("discrete weight {w}")));
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(ParamError::new("discrete: all weights zero"));
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(Discrete { cumulative })
    }

    /// Draws an index according to the weights.
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &dyn Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn empirical_var(d: &dyn Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::new(2.0).unwrap();
        assert!((empirical_mean(&d, 200_000, 1) - 0.5).abs() < 0.01);
        assert!((empirical_var(&d, 200_000, 2) - 0.25).abs() < 0.02);
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn uniform_moments_and_bounds() {
        let d = Uniform::new(1.0, 3.0).unwrap();
        assert!((empirical_mean(&d, 100_000, 3) - 2.0).abs() < 0.01);
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..3.0).contains(&x));
        }
        assert!(Uniform::new(3.0, 1.0).is_err());
        assert!(Uniform::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(1.5).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 1.5);
        }
        assert!(Deterministic::new(-0.1).is_err());
    }

    #[test]
    fn erlang_moments() {
        let d = Erlang::new(3, 2.0).unwrap();
        assert_eq!(d.mean(), Some(1.5));
        assert!((empirical_mean(&d, 200_000, 6) - 1.5).abs() < 0.02);
        // Var = k / rate^2 = 0.75
        assert!((empirical_var(&d, 200_000, 7) - 0.75).abs() < 0.03);
        assert!(Erlang::new(0, 1.0).is_err());
    }

    #[test]
    fn weibull_mean_matches_gamma_formula() {
        let d = Weibull::new(2.0, 1.0).unwrap();
        // mean = Γ(1.5) = sqrt(pi)/2 ≈ 0.8862
        let analytic = d.mean().unwrap();
        assert!((analytic - 0.886_226_9).abs() < 1e-6);
        assert!((empirical_mean(&d, 200_000, 8) - analytic).abs() < 0.01);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(1.0, 0.5).unwrap();
        assert!((d.mean().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lognormal_mean() {
        let d = Lognormal::new(0.0, 0.5).unwrap();
        let analytic = (0.125f64).exp();
        assert_eq!(d.mean(), Some(analytic));
        assert!((empirical_mean(&d, 300_000, 9) - analytic).abs() < 0.01);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from_u64(10);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| x * x).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01);
        assert!((var - 1.0).abs() < 0.02);
    }

    #[test]
    fn discrete_frequencies() {
        let d = Discrete::new(&[0.5, 0.3, 0.2]).unwrap();
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample_index(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.2).abs() < 0.01);
    }

    #[test]
    fn discrete_rejects_bad_weights() {
        assert!(Discrete::new(&[]).is_err());
        assert!(Discrete::new(&[0.0, 0.0]).is_err());
        assert!(Discrete::new(&[1.0, -1.0]).is_err());
        assert!(Discrete::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn samples_are_nonnegative() {
        let mut rng = Rng::seed_from_u64(12);
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Exponential::new(0.1).unwrap()),
            Box::new(Uniform::new(0.0, 5.0).unwrap()),
            Box::new(Deterministic::new(0.0).unwrap()),
            Box::new(Erlang::new(5, 0.3).unwrap()),
            Box::new(Weibull::new(0.7, 2.0).unwrap()),
            Box::new(Lognormal::new(-1.0, 1.0).unwrap()),
        ];
        for d in &dists {
            for _ in 0..1000 {
                let x = d.sample(&mut rng);
                assert!(x.is_finite() && x >= 0.0, "{d:?} produced {x}");
            }
        }
    }

    #[test]
    fn gamma_function_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - PI.sqrt()).abs() < 1e-10);
    }
}

//! A minimal discrete-event executive.
//!
//! [`Engine`] couples a clock, an [`EventQueue`], and a user-supplied
//! [`EventHandler`]. The SAN simulator in `itua-san` and the direct ITUA
//! discrete-event model in `itua-core` both run on this loop.

use crate::queue::{EventKey, EventQueue};
use crate::rng::Rng;

/// A model driven by the [`Engine`].
///
/// The handler receives each event together with a [`Context`] that lets it
/// read the clock, schedule and cancel events, and draw random numbers.
pub trait EventHandler {
    /// The event payload type.
    type Event;

    /// Handles one event occurring at the current simulation time.
    fn handle(&mut self, event: Self::Event, ctx: &mut Context<'_, Self::Event>);
}

/// The simulation context handed to [`EventHandler::handle`].
#[derive(Debug)]
pub struct Context<'a, E> {
    now: f64,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut Rng,
}

impl<'a, E> Context<'a, E> {
    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` to occur `delay` time units from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: E) -> EventKey {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancels a previously scheduled event.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// The simulation's random number generator.
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }
}

/// Outcome of [`Engine::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event queue drained before the horizon.
    QueueEmpty,
    /// The event budget was exhausted (possible livelock).
    EventBudgetExhausted,
}

/// Discrete-event simulation executive.
///
/// # Example
///
/// A Poisson process counter:
///
/// ```
/// use itua_sim::engine::{Context, Engine, EventHandler, RunOutcome};
/// use itua_sim::dist::{Distribution, Exponential};
/// use itua_sim::rng::Rng;
///
/// struct Counter {
///     arrivals: u64,
///     exp: Exponential,
/// }
///
/// impl EventHandler for Counter {
///     type Event = ();
///     fn handle(&mut self, _e: (), ctx: &mut Context<'_, ()>) {
///         self.arrivals += 1;
///         let d = self.exp.sample(ctx.rng());
///         ctx.schedule_in(d, ());
///     }
/// }
///
/// # fn main() -> Result<(), itua_sim::dist::ParamError> {
/// let mut model = Counter { arrivals: 0, exp: Exponential::new(10.0)? };
/// let mut engine = Engine::new(Rng::seed_from_u64(1));
/// engine.schedule_at(0.0, ());
/// let outcome = engine.run_until(100.0, &mut model);
/// assert_eq!(outcome, RunOutcome::HorizonReached);
/// // ≈ 10 events per unit time over 100 units
/// assert!((model.arrivals as f64 - 1000.0).abs() < 200.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    rng: Rng,
    now: f64,
    events_processed: u64,
    event_budget: u64,
}

impl<E> Engine<E> {
    /// Creates an engine at time 0 with the given random source.
    pub fn new(rng: Rng) -> Self {
        Engine {
            queue: EventQueue::new(),
            rng,
            now: 0.0,
            events_processed: 0,
            event_budget: u64::MAX,
        }
    }

    /// Limits the total number of events processed (livelock guard).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedules an event at absolute time `time` (before or between runs).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock.
    pub fn schedule_at(&mut self, time: f64, event: E) -> EventKey {
        assert!(time >= self.now, "cannot schedule in the past");
        self.queue.schedule(time, event)
    }

    /// Runs the loop until `horizon`, the queue drains, or the event budget
    /// is exhausted. The clock is left at `horizon` if the horizon was
    /// reached, otherwise at the time of the last processed event.
    pub fn run_until<H>(&mut self, horizon: f64, handler: &mut H) -> RunOutcome
    where
        H: EventHandler<Event = E>,
    {
        loop {
            if self.events_processed >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::QueueEmpty,
                Some(t) if t > horizon => {
                    self.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    let (t, event) = self.queue.pop().expect("peeked event exists");
                    debug_assert!(t >= self.now, "time went backwards");
                    self.now = t;
                    self.events_processed += 1;
                    let mut ctx = Context {
                        now: self.now,
                        queue: &mut self.queue,
                        rng: &mut self.rng,
                    };
                    handler.handle(event, &mut ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(f64, u32)>,
    }

    impl EventHandler for Recorder {
        type Event = u32;
        fn handle(&mut self, event: u32, ctx: &mut Context<'_, u32>) {
            self.seen.push((ctx.now(), event));
            if event == 1 {
                ctx.schedule_in(0.5, 10);
            }
        }
    }

    #[test]
    fn processes_in_order_and_respects_horizon() {
        let mut engine = Engine::new(Rng::seed_from_u64(0));
        engine.schedule_at(1.0, 1);
        engine.schedule_at(3.0, 3);
        engine.schedule_at(10.0, 99);
        let mut model = Recorder { seen: vec![] };
        let outcome = engine.run_until(5.0, &mut model);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(model.seen, vec![(1.0, 1), (1.5, 10), (3.0, 3)]);
        assert_eq!(engine.now(), 5.0);
    }

    #[test]
    fn queue_empty_outcome() {
        let mut engine = Engine::new(Rng::seed_from_u64(0));
        engine.schedule_at(1.0, 2);
        let mut model = Recorder { seen: vec![] };
        assert_eq!(engine.run_until(5.0, &mut model), RunOutcome::QueueEmpty);
        assert_eq!(engine.now(), 1.0);
    }

    struct Livelock;
    impl EventHandler for Livelock {
        type Event = ();
        fn handle(&mut self, _e: (), ctx: &mut Context<'_, ()>) {
            ctx.schedule_in(0.0, ());
        }
    }

    #[test]
    fn event_budget_stops_livelock() {
        let mut engine = Engine::new(Rng::seed_from_u64(0)).with_event_budget(1000);
        engine.schedule_at(0.0, ());
        let outcome = engine.run_until(1.0, &mut Livelock);
        assert_eq!(outcome, RunOutcome::EventBudgetExhausted);
        assert_eq!(engine.events_processed(), 1000);
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<()> = Engine::new(Rng::seed_from_u64(0));
        engine.schedule_at(1.0, ());
        let mut h = NoopHandler;
        engine.run_until(2.0, &mut h);
        engine.schedule_at(0.5, ());
    }

    struct NoopHandler;
    impl EventHandler for NoopHandler {
        type Event = ();
        fn handle(&mut self, _e: (), _ctx: &mut Context<'_, ()>) {}
    }

    #[test]
    fn resume_after_horizon() {
        let mut engine = Engine::new(Rng::seed_from_u64(0));
        engine.schedule_at(1.0, 1);
        engine.schedule_at(7.0, 3);
        let mut model = Recorder { seen: vec![] };
        assert_eq!(
            engine.run_until(5.0, &mut model),
            RunOutcome::HorizonReached
        );
        assert_eq!(engine.run_until(8.0, &mut model), RunOutcome::QueueEmpty);
        assert_eq!(model.seen.last(), Some(&(7.0, 3)));
    }
}

//! Deterministic pseudo-random number generation.
//!
//! The workspace deliberately does not use the `rand` crate for simulation:
//! experiment reproducibility across platforms and across crate upgrades is a
//! hard requirement for a validation study, so the generator is implemented
//! here, frozen, and tested against published reference vectors.
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded from a
//! single `u64` through **splitmix64** as its authors recommend. Independent
//! sub-streams for replications and submodels are derived with
//! [`Rng::stream`], which re-seeds through splitmix64 so that streams with
//! nearby indices are statistically unrelated.

/// The splitmix64 generator, used for seeding and stream derivation.
///
/// Passes through every `u64` state; its output function is a strong
/// 64-bit mixer (variant of MurmurHash3's finalizer).
///
/// # Example
///
/// ```
/// use itua_sim::rng::SplitMix64;
/// let mut sm = SplitMix64::new(0);
/// assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a splitmix64 generator with the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Derives the seed of an independent replication stream in O(1).
///
/// `stream_seed(base, index)` is random access into a splitmix64-style
/// sequence: the base seed is first diffused through the splitmix64
/// finalizer (so *nearby* base seeds yield unrelated stream families), and
/// the result is then advanced by `index` golden-ratio increments and
/// finalized again. Unlike the historical `base_seed + index` scheme, two
/// experiments whose base seeds differ by less than the replication count
/// do **not** share any replication seeds.
///
/// # Example
///
/// ```
/// use itua_sim::rng::stream_seed;
/// // Adjacent bases used to collide under `base + i`; streams don't.
/// assert_ne!(stream_seed(1, 1), stream_seed(2, 0));
/// // Deterministic and order-free: any replication's seed in O(1).
/// assert_eq!(stream_seed(7, 1000), stream_seed(7, 1000));
/// ```
pub fn stream_seed(base: u64, index: u64) -> u64 {
    let origin = mix64(base);
    mix64(origin.wrapping_add(index.wrapping_mul(0x9e3779b97f4a7c15)))
}

/// The splitmix64 output function (a strong 64-bit mixer).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// All simulation randomness in the workspace flows through this type.
/// Cloning an `Rng` clones its state, which is occasionally useful for
/// common-random-number variance reduction.
///
/// # Example
///
/// ```
/// use itua_sim::rng::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a single `u64` seed via splitmix64.
    ///
    /// This is the only constructor; it guarantees the internal state is
    /// never all-zero (which would be a fixed point of xoshiro).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Derives an independent sub-stream for index `index`.
    ///
    /// Streams derived from the same generator with different indices are
    /// statistically independent for all practical purposes: the stream seed
    /// is produced by hashing the parent state together with the index
    /// through splitmix64.
    pub fn stream(&self, index: u64) -> Rng {
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(index)
                .rotate_left(17)
                ^ self.s[2],
        );
        // Burn one output so that index 0 does not mirror the parent seed.
        let _ = sm.next_u64();
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1]`.
    ///
    /// Useful for `-ln(u)` style transforms where `u == 0` must not occur.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `out` with uniform draws from the open interval `(0, 1]`.
    ///
    /// Consumes exactly `out.len()` generator outputs in order: element
    /// `i` equals what the `i`-th call to [`Rng::next_f64_open`] would
    /// have returned, so batched and one-at-a-time sampling produce
    /// bit-identical streams.
    pub fn fill_f64_open(&mut self, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.next_f64_open();
        }
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// Uses Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below: bound must be positive");
        // Lemire's method: multiply into 128 bits; reject the small biased
        // region at the bottom.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniform `f64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is not finite.
    pub fn f64_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low.is_finite() && high.is_finite() && low <= high);
        low + (high - low) * self.next_f64()
    }

    /// Chooses an index in `[0, weights.len())` with probability
    /// proportional to `weights[i]`.
    ///
    /// Entries that are negative or NaN are treated as zero. If all weights
    /// are zero the choice is uniform.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_choice: empty weights");
        let total: f64 = weights.iter().map(|&w| sanitize(w)).sum();
        if total <= 0.0 {
            return self.usize_below(weights.len());
        }
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= sanitize(w);
            if u < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // floating-point slack lands on the last index
    }

    /// Randomly permutes `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.usize_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Chooses one element of `slice` uniformly, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.usize_below(slice.len())])
        }
    }
}

#[inline]
fn sanitize(w: f64) -> f64 {
    if w.is_finite() && w > 0.0 {
        w
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_is_reproducible() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_differs_across_seeds() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_distinct_and_reproducible() {
        let root = Rng::seed_from_u64(7);
        let mut s0 = root.stream(0);
        let mut s1 = root.stream(1);
        let mut s0b = root.stream(0);
        assert_eq!(s0.next_u64(), s0b.next_u64());
        let mut a = root.stream(0);
        let collisions = (0..64).filter(|_| a.next_u64() == s1.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn u64_below_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(5);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.u64_below(bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for &c in &counts {
            // 5-sigma band for a binomial count.
            let sigma = (expect * (1.0 - 1.0 / bound as f64)).sqrt();
            assert!(
                (c as f64 - expect).abs() < 5.0 * sigma,
                "count {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn u64_below_zero_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.u64_below(0);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = Rng::seed_from_u64(11);
        let w = [0.8, 0.15, 0.05];
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.weighted_choice(&w)] += 1;
        }
        for i in 0..3 {
            let p = w[i];
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "case {i}: {freq} vs {p}");
        }
    }

    #[test]
    fn weighted_choice_all_zero_is_uniform() {
        let mut rng = Rng::seed_from_u64(13);
        let w = [0.0, 0.0];
        let mut c0 = 0;
        for _ in 0..10_000 {
            if rng.weighted_choice(&w) == 0 {
                c0 += 1;
            }
        }
        assert!((c0 as f64 / 10_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn weighted_choice_ignores_nan_and_negative() {
        let mut rng = Rng::seed_from_u64(17);
        let w = [f64::NAN, -3.0, 1.0];
        for _ in 0..100 {
            assert_eq!(rng.weighted_choice(&w), 2);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_single() {
        let mut rng = Rng::seed_from_u64(23);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn stream_seeds_do_not_overlap_for_nearby_bases() {
        // The old `base + i` scheme made replication i of base b collide
        // with replication i-1 of base b+1. Streams must not.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for base in 0..8u64 {
            for rep in 0..1000u64 {
                assert!(
                    seen.insert(stream_seed(base, rep)),
                    "collision at {base}/{rep}"
                );
            }
        }
    }

    #[test]
    fn stream_seed_is_random_access() {
        // Computing seeds out of order gives the same values.
        let forward: Vec<u64> = (0..16).map(|i| stream_seed(99, i)).collect();
        let backward: Vec<u64> = (0..16).rev().map(|i| stream_seed(99, i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::seed_from_u64(29);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }
}

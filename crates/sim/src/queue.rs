//! The pending-event set: a time-ordered priority queue.
//!
//! Determinism requirements drive the design:
//!
//! * ties in event time are broken by **insertion order** (FIFO), so a
//!   simulation is a pure function of its seed;
//! * cancellation is O(1) via generation-stamped slots with lazy deletion,
//!   because a stochastic activity network constantly cancels activities
//!   that became disabled — no per-event hashing anywhere on the path;
//! * stale (cancelled) heap entries are discarded on pop and, amortized,
//!   by compaction whenever they outnumber the live ones, so the heap
//!   stays within a constant factor of the live event count even under
//!   reschedule storms that cancel nearly every entry they push.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// A key is a slot index plus the slot's generation at schedule time.
/// Each slot holds at most one live event; cancelling or delivering the
/// event bumps the slot's generation, which invalidates the key (and any
/// stale heap entry carrying it) in O(1) without hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey {
    slot: u32,
    generation: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: f64,
    seq: u64,
    slot: u32,
    generation: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-time-first, with
        // FIFO (lowest sequence number) breaking ties.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Heap sizes below this never trigger compaction; the O(n) sweep is not
/// worth it for a handful of stale entries.
const COMPACT_MIN_LEN: usize = 64;

/// A pending-event set with deterministic ordering and O(1) cancel.
///
/// # Example
///
/// ```
/// use itua_sim::queue::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "b");
/// let key = q.schedule(1.0, "a");
/// q.schedule(1.0, "a2"); // same time: FIFO order
/// q.cancel(key);
/// assert_eq!(q.pop(), Some((1.0, "a2")));
/// assert_eq!(q.pop(), Some((2.0, "b")));
/// assert_eq!(q.pop(), None);
/// ```
// Clone lets an importance-splitting branch snapshot a simulator state
// mid-run; the cloned heap preserves sequence numbers and slot
// generations, so the clone pops events in exactly the original order.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Current generation per slot. A heap entry (or key) is live iff its
    /// generation equals its slot's; cancel and pop bump the slot, so
    /// every stale entry mismatches. Generations are monotone per slot
    /// and never reset, which keeps keys from earlier occupancies of a
    /// reused slot invalid forever.
    generations: Vec<u64>,
    /// Slots available for reuse (their current generation is unclaimed).
    free: Vec<u32>,
    /// Number of live (scheduled, not yet popped or cancelled) events.
    live: usize,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            generations: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
        }
    }

    /// Schedules `payload` at absolute time `time` and returns a key that
    /// can later be passed to [`EventQueue::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, payload: T) -> EventKey {
        assert!(!time.is_nan(), "cannot schedule an event at NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.generations.push(0);
                (self.generations.len() - 1) as u32
            }
        };
        let generation = self.generations[slot as usize];
        self.heap.push(Entry {
            time,
            seq,
            slot,
            generation,
            payload,
        });
        self.live += 1;
        EventKey { slot, generation }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling twice, or
    /// cancelling an already-popped event, returns `false` and is harmless.
    /// The entry stays in the heap as a stale tombstone until it surfaces
    /// or a compaction sweep removes it.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.generations.get_mut(key.slot as usize) {
            Some(g) if *g == key.generation => {
                *g += 1;
                self.free.push(key.slot);
                self.live -= 1;
                self.maybe_compact();
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        while let Some(entry) = self.heap.pop() {
            if self.generations[entry.slot as usize] != entry.generation {
                continue; // stale: cancelled after it was pushed
            }
            self.generations[entry.slot as usize] += 1;
            self.free.push(entry.slot);
            self.live -= 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Returns the time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<f64> {
        while let Some(e) = self.heap.peek() {
            if self.generations[e.slot as usize] == e.generation {
                return Some(e.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (not-yet-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether there are no live events.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drops every pending event. Slot generations are bumped, not reset,
    /// so keys issued before the clear stay invalid.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.free.clear();
        for (slot, g) in self.generations.iter_mut().enumerate() {
            *g += 1;
            self.free.push(slot as u32);
        }
        self.live = 0;
    }

    /// Sweeps stale entries out of the heap once they outnumber the live
    /// ones. Rebuilding costs O(n) and halves the heap, so the amortized
    /// cost per cancellation is O(1); pop order is unaffected because it
    /// is fully determined by the `(time, seq)` comparator, not by the
    /// heap's internal layout.
    fn maybe_compact(&mut self) {
        if self.heap.len() >= COMPACT_MIN_LEN && self.heap.len() > 2 * self.live {
            let mut entries = std::mem::take(&mut self.heap).into_vec();
            entries.retain(|e| self.generations[e.slot as usize] == e.generation);
            self.heap = BinaryHeap::from(entries);
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey {
            slot: 12345,
            generation: 0,
        }));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn keys_from_before_clear_are_invalid() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, 1);
        q.clear();
        assert!(!q.cancel(a), "pre-clear key must not cancel anything");
        // Reusing the same slot after clear must hand out a fresh key.
        let b = q.schedule(3.0, 3);
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert!(!q.cancel(b), "event already delivered");
    }

    #[test]
    #[should_panic]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert!(!q.cancel(a), "event already delivered");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_keys() {
        let mut q = EventQueue::new();
        let mut old_keys = Vec::new();
        // Repeatedly schedule and cancel so slots are recycled many times.
        for round in 0..50 {
            let k = q.schedule(round as f64, round);
            for &old in &old_keys {
                assert!(!q.cancel(old), "stale key cancelled a live event");
            }
            assert!(q.cancel(k));
            old_keys.push(k);
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn compaction_preserves_order_under_cancel_storm() {
        // Push far more cancelled than live entries so compaction kicks
        // in, then verify the live ones still pop in (time, FIFO) order.
        let mut q = EventQueue::new();
        let mut live = Vec::new();
        for i in 0..500u32 {
            let key = q.schedule(f64::from(i % 10), i);
            if i % 7 == 0 {
                live.push((f64::from(i % 10), i));
            } else {
                q.cancel(key);
            }
        }
        assert_eq!(q.len(), live.len());
        live.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for expect in live {
            assert_eq!(q.pop(), Some(expect));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_cancel() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(5.0, 1);
        q.schedule(1.0, 2);
        assert_eq!(q.pop(), Some((1.0, 2)));
        q.schedule(3.0, 3);
        q.cancel(k1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((4.0, 4)));
        assert_eq!(q.pop(), None);
    }
}

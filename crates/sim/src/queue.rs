//! The pending-event set: a time-ordered priority queue.
//!
//! Determinism requirements drive the design:
//!
//! * ties in event time are broken by **insertion order** (FIFO), so a
//!   simulation is a pure function of its seed;
//! * cancellation is O(log n) amortized via lazy deletion, because a
//!   stochastic activity network constantly cancels activities that became
//!   disabled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

#[derive(Debug, Clone)]
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-time-first, with
        // FIFO (lowest sequence number) breaking ties.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A pending-event set with deterministic ordering and O(log n) cancel.
///
/// # Example
///
/// ```
/// use itua_sim::queue::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "b");
/// let key = q.schedule(1.0, "a");
/// q.schedule(1.0, "a2"); // same time: FIFO order
/// q.cancel(key);
/// assert_eq!(q.pop(), Some((1.0, "a2")));
/// assert_eq!(q.pop(), Some((2.0, "b")));
/// assert_eq!(q.pop(), None);
/// ```
// Clone lets an importance-splitting branch snapshot a simulator state
// mid-run; the cloned heap preserves sequence numbers, so the clone pops
// events in exactly the original order.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Sequence numbers of events that are scheduled and not yet popped or
    /// cancelled. Membership here is the source of truth for liveness.
    pending: HashSet<u64>,
    /// Sequence numbers cancelled while still in the heap (lazy deletion).
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at absolute time `time` and returns a key that
    /// can later be passed to [`EventQueue::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, payload: T) -> EventKey {
        assert!(!time.is_nan(), "cannot schedule an event at NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.pending.insert(seq);
        EventKey(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling twice, or
    /// cancelling an already-popped event, returns `false` and is harmless.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.pending.remove(&key.0) {
            self.cancelled.insert(key.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Returns the time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<f64> {
        loop {
            let seq = match self.heap.peek() {
                Some(e) => e.seq,
                None => return None,
            };
            if self.cancelled.contains(&seq) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.seq);
                continue;
            }
            return self.heap.peek().map(|e| e.time);
        }
    }

    /// Number of live (not-yet-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether there are no live events.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey(12345)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert!(!q.cancel(a), "event already delivered");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn interleaved_schedule_pop_cancel() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(5.0, 1);
        q.schedule(1.0, 2);
        assert_eq!(q.pop(), Some((1.0, 2)));
        q.schedule(3.0, 3);
        q.cancel(k1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((4.0, 4)));
        assert_eq!(q.pop(), None);
    }
}

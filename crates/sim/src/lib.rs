//! Discrete-event simulation kernel for the ITUA reproduction.
//!
//! This crate provides the low-level machinery every stochastic model in the
//! workspace is built on:
//!
//! * [`rng`] — a deterministic, seedable pseudo-random number generator
//!   (xoshiro256\*\* seeded through splitmix64) with support for independent
//!   sub-streams, so that every replication of an experiment is exactly
//!   reproducible from a single `u64` seed on every platform.
//! * [`dist`] — random-variate generators (exponential, uniform, Erlang,
//!   Weibull, lognormal, deterministic, discrete …) used as activity
//!   firing-time distributions.
//! * [`queue`] — a pending-event set: a time-ordered priority queue with
//!   deterministic FIFO tie-breaking and O(log n) cancellation.
//! * [`engine`] — a tiny event-loop executive tying a clock, a queue, and an
//!   event handler together for models that do not need the full SAN
//!   formalism.
//!
//! # Example
//!
//! Estimate the mean of an exponential distribution:
//!
//! ```
//! use itua_sim::rng::Rng;
//! use itua_sim::dist::{Distribution, Exponential};
//!
//! # fn main() -> Result<(), itua_sim::dist::ParamError> {
//! let mut rng = Rng::seed_from_u64(42);
//! let exp = Exponential::new(2.0)?; // rate 2 → mean 0.5
//! let mean: f64 = (0..10_000).map(|_| exp.sample(&mut rng)).sum::<f64>() / 10_000.0;
//! assert!((mean - 0.5).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod queue;
pub mod rng;

pub use dist::{Distribution, Exponential, ParamError};
pub use engine::{Engine, EventHandler};
pub use queue::{EventKey, EventQueue};
pub use rng::Rng;

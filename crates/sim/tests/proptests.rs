//! Property-based tests for the simulation kernel.

use itua_sim::dist::{Discrete, Distribution, Erlang, Exponential, Lognormal, Uniform, Weibull};
use itua_sim::queue::EventQueue;
use itua_sim::rng::Rng;
use proptest::prelude::*;

proptest! {
    /// The queue delivers events in nondecreasing time order, FIFO on ties.
    #[test]
    fn queue_is_time_ordered(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut seen_at_time: Vec<usize> = vec![];
        let mut count = 0;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last_time, "time went backwards");
            if t == last_time {
                // FIFO: insertion indices at equal times must increase.
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < id));
                seen_at_time.push(id);
            } else {
                seen_at_time = vec![id];
            }
            last_time = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn queue_cancellation_exact(
        times in prop::collection::vec(0.0f64..1e3, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let keys: Vec<_> = times.iter().map(|&t| q.schedule(t, t)).collect();
        let mut expected = times.len();
        for (key, &cancel) in keys.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if cancel {
                prop_assert!(q.cancel(*key));
                expected -= 1;
            }
        }
        prop_assert_eq!(q.len(), expected);
        let mut delivered = 0;
        while q.pop().is_some() {
            delivered += 1;
        }
        prop_assert_eq!(delivered, expected);
    }

    /// Streams with the same seed are identical; different seeds differ.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(seed.wrapping_add(1));
        let collisions = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        prop_assert!(collisions < 4);
    }

    /// `u64_below` respects its bound for arbitrary bounds.
    #[test]
    fn u64_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.u64_below(bound) < bound);
        }
    }

    /// Every distribution produces finite, nonnegative samples for random
    /// (valid) parameters.
    #[test]
    fn distributions_nonnegative(
        seed in any::<u64>(),
        rate in 1e-3f64..1e3,
        shape in 0.2f64..5.0,
        k in 1u32..20,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Exponential::new(rate).unwrap()),
            Box::new(Uniform::new(0.0, rate).unwrap()),
            Box::new(Erlang::new(k, rate).unwrap()),
            Box::new(Weibull::new(shape, rate).unwrap()),
            Box::new(Lognormal::new(0.0, shape).unwrap()),
        ];
        for d in &dists {
            for _ in 0..16 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{:?} produced {}", d, x);
            }
        }
    }

    /// Discrete sampling always returns a valid index.
    #[test]
    fn discrete_index_valid(weights in prop::collection::vec(0.0f64..10.0, 1..20), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Discrete::new(&weights).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(d.sample_index(&mut rng) < weights.len());
        }
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn shuffle_is_permutation(mut v in prop::collection::vec(any::<i32>(), 0..100), seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        rng.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }

    /// Random schedule/cancel/pop interleavings: the generation-stamped
    /// queue agrees step-for-step with a naive sorted-Vec reference model.
    /// Earliest-time-first with FIFO tie-break, cancelled keys never
    /// surface, double cancels / cancels of delivered events are no-ops,
    /// and `len` tracks the live count exactly — including through the
    /// compaction sweeps that cancel-heavy interleavings trigger.
    #[test]
    fn queue_matches_sorted_vec_reference(ops in prop::collection::vec(
        prop_oneof![
            // Schedule: a coarse time grid forces plenty of ties, so the
            // FIFO tie-break actually carries the ordering.
            (0u8..40).prop_map(|t| QueueOp::Schedule(f64::from(t))),
            // Cancel the pending event scheduled at `nth` (modulo the
            // number of outstanding keys), or a long-dead key.
            any::<prop::sample::Index>().prop_map(QueueOp::Cancel),
            Just(QueueOp::Pop),
        ],
        1..300,
    )) {
        /// Reference model: a Vec of (time, seq, payload) kept sorted by
        /// (time, seq); schedule appends, cancel removes, pop takes the
        /// front. Quadratic and boring on purpose.
        #[derive(Default)]
        struct Reference {
            pending: Vec<(f64, u64, u64)>,
            next_seq: u64,
        }
        impl Reference {
            fn schedule(&mut self, time: f64, payload: u64) -> u64 {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.pending.push((time, seq, payload));
                self.pending
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN times"));
                seq
            }
            fn cancel(&mut self, seq: u64) -> bool {
                match self.pending.iter().position(|&(_, s, _)| s == seq) {
                    Some(i) => {
                        self.pending.remove(i);
                        true
                    }
                    None => false,
                }
            }
            fn pop(&mut self) -> Option<(f64, u64)> {
                if self.pending.is_empty() {
                    None
                } else {
                    let (t, _, p) = self.pending.remove(0);
                    Some((t, p))
                }
            }
        }

        let mut q = EventQueue::new();
        let mut reference = Reference::default();
        // Outstanding (key, reference-seq) pairs for not-yet-cancelled,
        // not-yet-popped schedules, plus retired keys that must stay dead.
        let mut outstanding = Vec::new();
        let mut retired = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                QueueOp::Schedule(t) => {
                    payload += 1;
                    let key = q.schedule(t, payload);
                    let seq = reference.schedule(t, payload);
                    outstanding.push((key, seq));
                }
                QueueOp::Cancel(idx) => {
                    if outstanding.is_empty() {
                        // Nothing pending: any retired key must refuse.
                        if let Some(&key) = retired.last() {
                            prop_assert!(!q.cancel(key), "retired key cancelled");
                        }
                    } else {
                        let (key, seq) = outstanding.swap_remove(idx.index(outstanding.len()));
                        prop_assert!(q.cancel(key), "live key refused to cancel");
                        prop_assert!(!q.cancel(key), "double cancel succeeded");
                        prop_assert!(reference.cancel(seq));
                        retired.push(key);
                    }
                }
                QueueOp::Pop => {
                    let got = q.pop();
                    let want = reference.pop();
                    prop_assert_eq!(got, want, "pop diverged from reference");
                    if got.is_some() {
                        // Retire the popped event's key (the outstanding
                        // entry whose seq just left the reference):
                        // cancelling a delivered event must be a no-op.
                        let i = outstanding
                            .iter()
                            .position(|&(_, seq)| reference.pending.iter().all(|&(_, s, _)| s != seq))
                            .expect("popped event was outstanding");
                        let (key, _) = outstanding.swap_remove(i);
                        prop_assert!(!q.cancel(key), "cancel after pop succeeded");
                        retired.push(key);
                    }
                }
            }
            prop_assert_eq!(q.len(), reference.pending.len(), "live count diverged");
            prop_assert_eq!(q.is_empty(), reference.pending.is_empty());
        }
        // Drain both: the full remaining sequences must agree.
        loop {
            let got = q.pop();
            let want = reference.pop();
            prop_assert_eq!(got, want, "drain diverged from reference");
            if got.is_none() {
                break;
            }
        }
        // Every key ever issued is now dead.
        for (key, _) in outstanding {
            prop_assert!(!q.cancel(key), "drained key cancelled");
        }
        for key in retired {
            prop_assert!(!q.cancel(key), "retired key cancelled after drain");
        }
    }
}

/// One step of the queue-vs-reference interleaving.
#[derive(Debug, Clone)]
enum QueueOp {
    Schedule(f64),
    Cancel(prop::sample::Index),
    Pop,
}

//! Property-based tests for the simulation kernel.

use itua_sim::dist::{Discrete, Distribution, Erlang, Exponential, Lognormal, Uniform, Weibull};
use itua_sim::queue::EventQueue;
use itua_sim::rng::Rng;
use proptest::prelude::*;

proptest! {
    /// The queue delivers events in nondecreasing time order, FIFO on ties.
    #[test]
    fn queue_is_time_ordered(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut seen_at_time: Vec<usize> = vec![];
        let mut count = 0;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last_time, "time went backwards");
            if t == last_time {
                // FIFO: insertion indices at equal times must increase.
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < id));
                seen_at_time.push(id);
            } else {
                seen_at_time = vec![id];
            }
            last_time = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn queue_cancellation_exact(
        times in prop::collection::vec(0.0f64..1e3, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let keys: Vec<_> = times.iter().map(|&t| q.schedule(t, t)).collect();
        let mut expected = times.len();
        for (key, &cancel) in keys.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if cancel {
                prop_assert!(q.cancel(*key));
                expected -= 1;
            }
        }
        prop_assert_eq!(q.len(), expected);
        let mut delivered = 0;
        while q.pop().is_some() {
            delivered += 1;
        }
        prop_assert_eq!(delivered, expected);
    }

    /// Streams with the same seed are identical; different seeds differ.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(seed.wrapping_add(1));
        let collisions = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        prop_assert!(collisions < 4);
    }

    /// `u64_below` respects its bound for arbitrary bounds.
    #[test]
    fn u64_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.u64_below(bound) < bound);
        }
    }

    /// Every distribution produces finite, nonnegative samples for random
    /// (valid) parameters.
    #[test]
    fn distributions_nonnegative(
        seed in any::<u64>(),
        rate in 1e-3f64..1e3,
        shape in 0.2f64..5.0,
        k in 1u32..20,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Exponential::new(rate).unwrap()),
            Box::new(Uniform::new(0.0, rate).unwrap()),
            Box::new(Erlang::new(k, rate).unwrap()),
            Box::new(Weibull::new(shape, rate).unwrap()),
            Box::new(Lognormal::new(0.0, shape).unwrap()),
        ];
        for d in &dists {
            for _ in 0..16 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{:?} produced {}", d, x);
            }
        }
    }

    /// Discrete sampling always returns a valid index.
    #[test]
    fn discrete_index_valid(weights in prop::collection::vec(0.0f64..10.0, 1..20), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Discrete::new(&weights).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(d.sample_index(&mut rng) < weights.len());
        }
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn shuffle_is_permutation(mut v in prop::collection::vec(any::<i32>(), 0..100), seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        rng.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }
}

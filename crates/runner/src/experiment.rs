//! Parallel SAN experiments: the multi-threaded equivalent of
//! [`itua_san::experiment::run_experiment`].
//!
//! Reward variables hold per-run mutable state, so each replication gets a
//! fresh set from a caller-supplied factory. The per-replication
//! observations (a few named `f64`s) are shipped back to the reducing
//! thread and recorded into one [`ReplicationEstimator`] in replication
//! order — the same order the sequential loop uses — so the estimates are
//! bit-identical to the sequential path for every thread count.

use crate::engine::{replicate, RunnerConfig};
use crate::progress::Progress;
use itua_san::experiment::ExperimentConfig;
use itua_san::model::SanError;
use itua_san::reward::{Observation, RewardVariable};
use itua_san::simulator::{Observer, SanSimulator};
use itua_sim::rng::stream_seed;
use itua_stats::replication::{Estimate, ReplicationEstimator};

/// Runs a replication experiment across worker threads.
///
/// `make_variables` builds a fresh set of reward variables for one
/// replication; it is called once per replication, possibly concurrently
/// from several threads. Replication `i` is seeded with
/// `stream_seed(config.base_seed, i)` — exactly like the sequential
/// [`itua_san::experiment::run_experiment`] — and estimates are reduced in
/// replication order, so for any [`RunnerConfig`] (1, 2, 4, … threads)
/// this returns **bit-identical** estimates to the sequential path.
///
/// # Errors
///
/// Propagates the simulator error of the lowest-indexed failing
/// replication (deterministic regardless of which worker hit it first).
///
/// # Example
///
/// ```
/// use itua_runner::engine::RunnerConfig;
/// use itua_runner::progress::NullProgress;
/// use itua_runner::experiment::run_experiment_parallel;
/// use itua_san::experiment::{run_experiment, ExperimentConfig};
/// use itua_san::model::SanBuilder;
/// use itua_san::reward::{RewardVariable, TimeAveraged};
/// use itua_san::simulator::SanSimulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SanBuilder::new("m");
/// let up = b.place("up", 1);
/// let down = b.place("down", 0);
/// b.timed_activity("fail", 1.0).input_arc(up, 1).output_arc(down, 1).build()?;
/// b.timed_activity("fix", 4.0).input_arc(down, 1).output_arc(up, 1).build()?;
/// let sim = SanSimulator::new(b.finish()?);
/// let cfg = ExperimentConfig { horizon: 20.0, replications: 100, ..Default::default() };
///
/// let parallel = run_experiment_parallel(&sim, cfg, &RunnerConfig::default(), &NullProgress,
///     || vec![Box::new(TimeAveraged::new("unavail", move |m| m.get(down) as f64)) as Box<dyn RewardVariable>])?;
///
/// let mut seq_var = TimeAveraged::new("unavail", move |m| m.get(down) as f64);
/// let sequential = run_experiment(&sim, cfg, &mut [&mut seq_var])?;
/// assert_eq!(parallel, sequential); // bit-identical
/// # Ok(())
/// # }
/// ```
pub fn run_experiment_parallel<F>(
    sim: &SanSimulator,
    config: ExperimentConfig,
    runner: &RunnerConfig,
    progress: &dyn Progress,
    make_variables: F,
) -> Result<Vec<Estimate>, SanError>
where
    F: Fn() -> Vec<Box<dyn RewardVariable>> + Sync,
{
    let per_rep: Vec<Result<Vec<Observation>, SanError>> =
        replicate(config.replications, runner, progress, |rep| {
            let mut variables = make_variables();
            {
                let mut observers: Vec<&mut dyn Observer> = variables
                    .iter_mut()
                    .map(|v| v.as_mut() as &mut dyn Observer)
                    .collect();
                sim.run(
                    stream_seed(config.base_seed, rep as u64),
                    config.horizon,
                    &mut observers,
                )?;
            }
            Ok(variables.iter().flat_map(|v| v.observations()).collect())
        });

    let mut est = ReplicationEstimator::new(config.confidence);
    for observations in per_rep {
        for o in observations? {
            est.record(&o.name, o.value);
        }
    }
    Ok(est.estimates())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullProgress;
    use itua_san::experiment::run_experiment;
    use itua_san::model::SanBuilder;
    use itua_san::reward::{EverTrue, TimeAveraged};

    fn repairable() -> SanSimulator {
        let mut b = SanBuilder::new("m");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", 1.0)
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("fix", 9.0)
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        SanSimulator::new(b.finish().unwrap())
    }

    #[test]
    fn matches_sequential_bit_for_bit() {
        let sim = repairable();
        let down = sim.san().place_id("down").unwrap();
        let cfg = ExperimentConfig {
            horizon: 25.0,
            replications: 120,
            base_seed: 77,
            confidence: 0.95,
        };
        let mut v1 = TimeAveraged::new("unavail", move |m| m.get(down) as f64);
        let mut v2 = EverTrue::new("ever_down", move |m| m.get(down) as f64);
        let sequential = run_experiment(&sim, cfg, &mut [&mut v1, &mut v2]).unwrap();

        for threads in [1, 2, 4, 8] {
            for chunk_size in [1, 7, 32] {
                let rc = RunnerConfig {
                    threads,
                    chunk_size,
                };
                let parallel = run_experiment_parallel(&sim, cfg, &rc, &NullProgress, || {
                    vec![
                        Box::new(TimeAveraged::new("unavail", move |m| m.get(down) as f64))
                            as Box<dyn RewardVariable>,
                        Box::new(EverTrue::new("ever_down", move |m| m.get(down) as f64)),
                    ]
                })
                .unwrap();
                assert_eq!(parallel, sequential, "threads={threads} chunk={chunk_size}");
            }
        }
    }

    #[test]
    fn empty_variable_set_yields_no_estimates() {
        let sim = repairable();
        let cfg = ExperimentConfig {
            horizon: 2.0,
            replications: 10,
            ..Default::default()
        };
        let out =
            run_experiment_parallel(&sim, cfg, &RunnerConfig::default(), &NullProgress, Vec::new)
                .unwrap();
        assert!(out.is_empty());
    }
}

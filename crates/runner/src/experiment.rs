//! Parallel SAN experiments: the replication loop for raw SANs plus
//! reward variables, and its configuration ([`ExperimentConfig`]).
//!
//! This replaced the bespoke sequential loop that once lived in the
//! `itua-san` crate — a `threads = 1` [`RunnerConfig`] reproduces its
//! results bit for bit, so there is exactly one execution path (the
//! retired crate module is gone; its [`ExperimentConfig`] vocabulary
//! moved here, next to the loop that consumes it). Reward variables hold
//! per-run mutable state, so each replication gets a fresh set from a
//! caller-supplied factory, while the expensive simulator state (marking,
//! event queue, schedule table) is allocated once per worker thread and
//! reused via [`itua_san::simulator::SimScratch`]. The per-replication
//! observations (a few named `f64`s) are shipped back to the reducing
//! thread and recorded into one [`ReplicationEstimator`] in replication
//! order, so the estimates are bit-identical for every thread count.

use crate::engine::{replicate_with_scratch, RunnerConfig};
use crate::progress::Progress;
use itua_san::model::SanError;
use itua_san::reward::{Observation, RewardVariable};
use itua_san::simulator::{Observer, SanSimulator};
use itua_sim::rng::stream_seed;
use itua_stats::replication::{Estimate, ReplicationEstimator};

/// Configuration for a replication experiment, Möbius-study style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Simulation horizon per replication.
    pub horizon: f64,
    /// Number of replications.
    pub replications: u32,
    /// Base seed; replication `i` runs with the stream-derived seed
    /// [`stream_seed`]`(base_seed, i)`, so experiments with nearby base
    /// seeds never share replication seeds (the historical `base_seed + i`
    /// scheme overlapped whenever two bases differed by less than the
    /// replication count).
    pub base_seed: u64,
    /// Confidence level for reported intervals.
    pub confidence: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            horizon: 5.0,
            replications: 1000,
            base_seed: 1,
            confidence: 0.95,
        }
    }
}

impl ExperimentConfig {
    /// The seed replication `rep` runs with.
    pub fn seed_for(&self, rep: u32) -> u64 {
        stream_seed(self.base_seed, u64::from(rep))
    }
}

/// Runs a replication experiment across worker threads.
///
/// `make_variables` builds a fresh set of reward variables for one
/// replication; it is called once per replication, possibly concurrently
/// from several threads. Replication `i` is seeded with
/// `stream_seed(config.base_seed, i)` (see [`ExperimentConfig::seed_for`])
/// and estimates are reduced in replication order, so for any
/// [`RunnerConfig`] (1, 2, 4, … threads) this returns **bit-identical**
/// estimates.
///
/// # Errors
///
/// Propagates the simulator error of the lowest-indexed failing
/// replication (deterministic regardless of which worker hit it first).
///
/// # Example
///
/// ```
/// use itua_runner::engine::RunnerConfig;
/// use itua_runner::progress::NullProgress;
/// use itua_runner::experiment::{run_experiment_parallel, ExperimentConfig};
/// use itua_san::model::SanBuilder;
/// use itua_san::reward::{RewardVariable, TimeAveraged};
/// use itua_san::simulator::SanSimulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SanBuilder::new("m");
/// let up = b.place("up", 1);
/// let down = b.place("down", 0);
/// b.timed_activity("fail", 1.0).input_arc(up, 1).output_arc(down, 1).build()?;
/// b.timed_activity("fix", 4.0).input_arc(down, 1).output_arc(up, 1).build()?;
/// let sim = SanSimulator::new(b.finish()?);
/// let cfg = ExperimentConfig { horizon: 20.0, replications: 100, ..Default::default() };
///
/// let make = || vec![Box::new(TimeAveraged::new("unavail", move |m| m.get(down) as f64))
///     as Box<dyn RewardVariable>];
/// let parallel = run_experiment_parallel(&sim, cfg, &RunnerConfig::default(), &NullProgress, make)?;
/// let serial = run_experiment_parallel(&sim, cfg, &RunnerConfig::serial(), &NullProgress, make)?;
/// assert_eq!(parallel, serial); // bit-identical for any thread count
/// # Ok(())
/// # }
/// ```
pub fn run_experiment_parallel<F>(
    sim: &SanSimulator,
    config: ExperimentConfig,
    runner: &RunnerConfig,
    progress: &dyn Progress,
    make_variables: F,
) -> Result<Vec<Estimate>, SanError>
where
    F: Fn() -> Vec<Box<dyn RewardVariable>> + Sync,
{
    let per_rep: Vec<Result<Vec<Observation>, SanError>> = replicate_with_scratch(
        config.replications,
        runner,
        progress,
        || sim.scratch(),
        |rep, scratch| {
            let mut variables = make_variables();
            {
                let mut observers: Vec<&mut dyn Observer> = variables
                    .iter_mut()
                    .map(|v| v.as_mut() as &mut dyn Observer)
                    .collect();
                sim.run_with_scratch(
                    config.seed_for(rep),
                    config.horizon,
                    &mut observers,
                    scratch,
                )?;
            }
            Ok(variables.iter().flat_map(|v| v.observations()).collect())
        },
    );

    let mut est = ReplicationEstimator::new(config.confidence);
    for observations in per_rep {
        for o in observations? {
            est.record(&o.name, o.value);
        }
    }
    Ok(est.estimates())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullProgress;
    use itua_san::model::SanBuilder;
    use itua_san::reward::{EverTrue, TimeAveraged};

    #[test]
    fn replication_seeds_are_distinct_streams() {
        let cfg = ExperimentConfig::default();
        assert_ne!(cfg.seed_for(0), cfg.seed_for(1));
        // Nearby base seeds must not share replication seeds.
        let other = ExperimentConfig {
            base_seed: cfg.base_seed + 1,
            ..cfg
        };
        for i in 0..100 {
            for j in 0..100 {
                assert_ne!(cfg.seed_for(i), other.seed_for(j), "overlap at {i},{j}");
            }
        }
    }

    fn repairable() -> SanSimulator {
        let mut b = SanBuilder::new("m");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", 1.0)
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("fix", 9.0)
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        SanSimulator::new(b.finish().unwrap())
    }

    #[test]
    fn thread_and_chunk_choices_are_bit_identical() {
        let sim = repairable();
        let down = sim.san().place_id("down").unwrap();
        let cfg = ExperimentConfig {
            horizon: 25.0,
            replications: 120,
            base_seed: 77,
            confidence: 0.95,
        };
        let make = || {
            vec![
                Box::new(TimeAveraged::new("unavail", move |m| m.get(down) as f64))
                    as Box<dyn RewardVariable>,
                Box::new(EverTrue::new("ever_down", move |m| m.get(down) as f64)),
            ]
        };
        let reference =
            run_experiment_parallel(&sim, cfg, &RunnerConfig::serial(), &NullProgress, make)
                .unwrap();
        // Sanity: the estimates themselves are reasonable (steady ≈ 0.1).
        let unavail = reference.iter().find(|e| e.name == "unavail").unwrap();
        assert!((unavail.ci.mean - 0.1).abs() < 0.05, "{unavail:?}");

        for threads in [2, 4, 8] {
            for chunk_size in [1, 7, 32] {
                let rc = RunnerConfig {
                    threads,
                    chunk_size,
                    ..Default::default()
                };
                let parallel =
                    run_experiment_parallel(&sim, cfg, &rc, &NullProgress, make).unwrap();
                assert_eq!(parallel, reference, "threads={threads} chunk={chunk_size}");
            }
        }
    }

    #[test]
    fn reproducible_for_same_seed() {
        let sim = repairable();
        let down = sim.san().place_id("down").unwrap();
        let cfg = ExperimentConfig {
            horizon: 10.0,
            replications: 50,
            base_seed: 3,
            confidence: 0.9,
        };
        let make = || {
            vec![
                Box::new(TimeAveraged::new("u", move |m| m.get(down) as f64))
                    as Box<dyn RewardVariable>,
            ]
        };
        let a = run_experiment_parallel(&sim, cfg, &RunnerConfig::default(), &NullProgress, make)
            .unwrap();
        let b = run_experiment_parallel(&sim, cfg, &RunnerConfig::default(), &NullProgress, make)
            .unwrap();
        assert_eq!(a[0].ci.mean, b[0].ci.mean);
    }

    #[test]
    fn empty_variable_set_yields_no_estimates() {
        let sim = repairable();
        let cfg = ExperimentConfig {
            horizon: 2.0,
            replications: 10,
            ..Default::default()
        };
        let out =
            run_experiment_parallel(&sim, cfg, &RunnerConfig::default(), &NullProgress, Vec::new)
                .unwrap();
        assert!(out.is_empty());
    }
}

//! The importance-splitting replication loop: [`run_measures_split`] is
//! the rare-event counterpart of [`crate::backend::run_measures`].
//!
//! Each replication becomes one RESTART *tree* instead of one trajectory:
//! the backend starts a root branch ([`ItuaBackend::run_split_tree`]),
//! `itua-rare` forks it at upward crossings of the
//! [`CorruptDomainCount`] importance level and Russian-roulettes branches
//! that fall back below their spawn level, and every surviving leaf
//! contributes a weighted [`RunOutput`]. The per-tree weighted totals go
//! through [`MeasureSet::record_tree`], whose estimator treats trees —
//! not leaves — as the iid unit, so confidence intervals stay valid.
//!
//! Determinism matches the plain loop exactly: tree `i` derives from
//! `stream_seed(origin_seed, i)`, branch `b > 0` of that tree is reseeded
//! with `stream_seed(tree_seed, b)` (the third tier of the seed
//! hierarchy), and trees are reduced in replication order, so estimates
//! are bit-identical for every thread count, chunk size, and batch size.
//! With an empty [`SplitSpec`] the root branch is never reseeded and the
//! weighted estimator collapses bitwise to the unweighted one, so the
//! result equals the plain replication path bit for bit.

use crate::backend::{Backend, BackendError, ItuaBackend, ModelCheck};
use crate::engine::{replicate, RunnerConfig};
use crate::progress::Progress;
use itua_core::measures::{MeasureSet, RunOutput};
use itua_core::split::CorruptDomainCount;
use itua_rare::{run_tree, SplitSpec, TreeStats};
use itua_sim::rng::stream_seed;

/// Work totals accumulated across every tree of a splitting run; the
/// currency the rare-event benchmark compares against plain replication
/// ("simulated events per unit of CI width").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitTotals {
    /// Trees simulated (= replications).
    pub trees: u64,
    /// Simulated events (steps) across all branches of all trees.
    pub steps: u64,
    /// Branches started, including each tree's root.
    pub branches: u64,
    /// Branches that reached the horizon and contributed a leaf.
    pub leaves: u64,
    /// Branches killed by Russian roulette.
    pub killed: u64,
}

impl SplitTotals {
    fn absorb(&mut self, s: TreeStats) {
        self.trees += 1;
        self.steps += s.steps;
        self.branches += u64::from(s.branches);
        self.leaves += u64::from(s.leaves);
        self.killed += u64::from(s.killed);
    }
}

/// Result of [`run_measures_split`]: the estimates plus the work totals
/// behind them.
#[derive(Debug)]
pub struct SplitRun {
    /// The (weighted) measure estimates.
    pub measures: MeasureSet,
    /// Simulation work performed. Zero for an exact backend, which never
    /// simulates.
    pub totals: SplitTotals,
}

impl ItuaBackend {
    /// Runs one importance-splitting tree: root seeded `seed`, split
    /// according to `spec` on the [`CorruptDomainCount`] level, appending
    /// one `(weight, output)` pair per surviving leaf to `leaves`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] for the analytic backend (exact, nothing
    /// to simulate) or a SAN stabilization livelock.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive and finite.
    pub fn run_split_tree(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        spec: &SplitSpec,
        leaves: &mut Vec<(f64, RunOutput)>,
    ) -> Result<TreeStats, BackendError> {
        const LEVEL: CorruptDomainCount = CorruptDomainCount;
        match self {
            ItuaBackend::Des(b) => {
                let branch = b.split_branch(seed, horizon, sample_times, &LEVEL);
                match run_tree(branch, seed, spec, leaves) {
                    Ok(stats) => Ok(stats),
                    Err(infallible) => match infallible {},
                }
            }
            ItuaBackend::San(b) => {
                let branch = b.split_branch(seed, horizon, sample_times, &LEVEL)?;
                run_tree(branch, seed, spec, leaves).map_err(Into::into)
            }
            ItuaBackend::Analytic(_) => Err(BackendError::new(
                "analytic backend is exact and simulates nothing; importance \
                 splitting does not apply",
            )),
        }
    }
}

/// Runs `replications` independent splitting trees of `backend` and
/// reduces them into a weighted [`MeasureSet`].
///
/// Tree `i` is seeded `stream_seed(origin_seed, i)` and recorded in
/// replication order, so the result is bit-identical for every thread
/// count and chunk size. An exact backend short-circuits to its
/// zero-variance measures — `spec` steers only the simulation effort,
/// never the estimand, so the analytic solution remains the oracle for
/// any splitting configuration.
///
/// # Errors
///
/// Returns the self-check failure under [`ModelCheck::Quick`], or the
/// first (in replication order) [`BackendError`] any tree produced.
#[allow(clippy::too_many_arguments)]
pub fn run_measures_split(
    backend: &ItuaBackend,
    replications: u32,
    confidence: f64,
    origin_seed: u64,
    horizon: f64,
    sample_times: &[f64],
    spec: &SplitSpec,
    runner: &RunnerConfig,
    progress: &dyn Progress,
    check: ModelCheck,
) -> Result<SplitRun, BackendError> {
    if check == ModelCheck::Quick {
        backend.self_check()?;
    }
    if let Some(exact) = backend.exact_measures(horizon, sample_times, confidence) {
        let measures = exact?;
        progress.on_replications(replications, replications);
        return Ok(SplitRun {
            measures,
            totals: SplitTotals::default(),
        });
    }
    let trees = replicate(replications, runner, progress, |rep| {
        let mut leaves = Vec::new();
        let stats = backend.run_split_tree(
            stream_seed(origin_seed, u64::from(rep)),
            horizon,
            sample_times,
            spec,
            &mut leaves,
        )?;
        Ok::<_, BackendError>((stats, leaves))
    });
    let mut measures = MeasureSet::new_weighted(confidence);
    let mut totals = SplitTotals::default();
    for tree in trees {
        let (stats, leaves) = tree?;
        totals.absorb(stats);
        measures.record_tree(&leaves, horizon, sample_times);
    }
    Ok(SplitRun { measures, totals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{run_measures, BackendKind};
    use crate::progress::NullProgress;
    use itua_core::params::Params;

    fn small_params() -> Params {
        Params::default().with_domains(4, 2).with_applications(2, 3)
    }

    fn micro_params() -> Params {
        let mut p = Params::default().with_domains(1, 2).with_applications(1, 2);
        p.spread_rate_domain = 0.0;
        p.spread_rate_system = 0.0;
        p
    }

    #[test]
    fn empty_spec_is_bit_identical_to_plain_loop() {
        for kind in [BackendKind::Des, BackendKind::San] {
            let backend = ItuaBackend::for_params(kind, &small_params()).unwrap();
            let plain = run_measures(
                &backend,
                24,
                0.95,
                7,
                3.0,
                &[1.0, 3.0],
                &RunnerConfig::serial(),
                &NullProgress,
            )
            .unwrap();
            let split = run_measures_split(
                &backend,
                24,
                0.95,
                7,
                3.0,
                &[1.0, 3.0],
                &SplitSpec::none(),
                &RunnerConfig::serial(),
                &NullProgress,
                ModelCheck::Quick,
            )
            .unwrap();
            assert_eq!(split.measures.estimates(), plain.estimates(), "{kind}");
            assert_eq!(split.totals.trees, 24);
            assert_eq!(split.totals.branches, 24);
            assert_eq!(split.totals.killed, 0);
        }
    }

    #[test]
    fn split_estimates_are_thread_count_invariant() {
        let spec: SplitSpec = "1x4,2x4".parse().unwrap();
        for kind in [BackendKind::Des, BackendKind::San] {
            let backend = ItuaBackend::for_params(kind, &small_params()).unwrap();
            let run = |threads| {
                run_measures_split(
                    &backend,
                    32,
                    0.95,
                    11,
                    3.0,
                    &[3.0],
                    &spec,
                    &RunnerConfig::default().with_threads(threads),
                    &NullProgress,
                    ModelCheck::Off,
                )
                .unwrap()
            };
            let reference = run(1);
            for threads in [2, 8] {
                let got = run(threads);
                assert_eq!(
                    got.measures.estimates(),
                    reference.measures.estimates(),
                    "{kind} threads={threads}"
                );
                assert_eq!(got.totals, reference.totals, "{kind} threads={threads}");
            }
        }
    }

    #[test]
    fn splitting_actually_splits_on_the_small_config() {
        let backend = ItuaBackend::for_params(BackendKind::Des, &small_params()).unwrap();
        let spec: SplitSpec = "1x4".parse().unwrap();
        let run = run_measures_split(
            &backend,
            32,
            0.95,
            11,
            3.0,
            &[3.0],
            &spec,
            &RunnerConfig::serial(),
            &NullProgress,
            ModelCheck::Off,
        )
        .unwrap();
        assert!(run.totals.branches > run.totals.trees, "{:?}", run.totals);
        assert!(run
            .measures
            .mean(itua_core::measures::names::UNAVAILABILITY)
            .is_some());
    }

    #[test]
    fn analytic_backend_short_circuits_ignoring_spec() {
        let backend = ItuaBackend::for_params(BackendKind::Analytic, &micro_params()).unwrap();
        let spec: SplitSpec = "1x8".parse().unwrap();
        let run = run_measures_split(
            &backend,
            100,
            0.95,
            1,
            5.0,
            &[5.0],
            &spec,
            &RunnerConfig::serial(),
            &NullProgress,
            ModelCheck::Quick,
        )
        .unwrap();
        assert_eq!(run.totals, SplitTotals::default());
        for e in &run.measures.estimates() {
            assert_eq!(e.ci.half_width, 0.0, "{} not exact", e.name);
        }
    }

    #[test]
    fn run_split_tree_rejects_analytic() {
        let backend = ItuaBackend::for_params(BackendKind::Analytic, &micro_params()).unwrap();
        let mut leaves = Vec::new();
        assert!(backend
            .run_split_tree(1, 5.0, &[5.0], &SplitSpec::none(), &mut leaves)
            .is_err());
    }
}

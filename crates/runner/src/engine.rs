//! The replication engine: deterministic chunked fan-out over threads.
//!
//! Replications are partitioned into fixed-size chunks (independent of the
//! thread count), workers claim chunks from an atomic counter, and the
//! per-chunk results are reassembled in chunk order. Because each
//! replication's work depends only on its index — seeding uses
//! [`itua_sim::rng::stream_seed`], never shared mutable state — the
//! assembled result vector is identical for 1, 2, or N threads, which
//! makes every reduction downstream (estimators, measure sets) bit-stable
//! across thread counts.

use crate::progress::Progress;
use std::sync::atomic::{AtomicU32, Ordering};

/// How to spend the machine's cores on a replication workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Worker threads; `0` means "one per available core".
    pub threads: usize,
    /// Replications per work unit. Chunking is part of the deterministic
    /// contract (results are reassembled in chunk order), so this does not
    /// affect results, only scheduling granularity.
    pub chunk_size: u32,
    /// Replications handed to the backend per [`replicate_batched`] call
    /// within a chunk. Purely an amortisation knob: each replication's
    /// result must depend only on its index, so batching never affects
    /// results, and `batch_size` stays out of store fingerprints.
    pub batch_size: u32,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            threads: 0,
            chunk_size: 32,
            batch_size: 32,
        }
    }
}

impl RunnerConfig {
    /// A configuration that runs everything on the calling thread.
    pub fn serial() -> Self {
        RunnerConfig {
            threads: 1,
            ..Default::default()
        }
    }

    /// Sets an explicit thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the batch size (`0` is treated as 1).
    pub fn with_batch_size(mut self, batch_size: u32) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// The number of worker threads this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }
}

/// Runs `f(0), f(1), …, f(replications - 1)` across worker threads and
/// returns the results **in replication order**.
///
/// The work function sees only the replication index; derive all
/// randomness from it (e.g. `stream_seed(base, index)`) and the output is
/// independent of the thread count and of scheduling. Progress is reported
/// after every completed chunk via [`Progress::on_replications`].
///
/// Panics in `f` propagate to the caller once all workers have stopped.
///
/// # Example
///
/// ```
/// use itua_runner::engine::{replicate, RunnerConfig};
/// use itua_runner::progress::NullProgress;
///
/// let squares = replicate(5, &RunnerConfig::default(), &NullProgress, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn replicate<R, F>(
    replications: u32,
    config: &RunnerConfig,
    progress: &dyn Progress,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(u32) -> R + Sync,
{
    replicate_with_scratch(replications, config, progress, || (), |i, _scratch| f(i))
}

/// Like [`replicate`], but each worker thread owns a reusable scratch value
/// created once by `init` and threaded through every replication that worker
/// executes.
///
/// This is the allocation-amortising form: a simulation backend can build
/// its event queue, state vectors, and sample buffers once per thread and
/// reset them per replication instead of reallocating per replication. The
/// determinism contract is unchanged — `f(i, scratch)` must produce a result
/// that depends only on `i` (the scratch is an allocation cache, not a
/// communication channel), and results are reassembled in chunk order, so
/// the output is bit-identical for any thread count and chunk size.
///
/// # Example
///
/// ```
/// use itua_runner::engine::{replicate_with_scratch, RunnerConfig};
/// use itua_runner::progress::NullProgress;
///
/// // Scratch here is a reusable buffer; the result ignores its history.
/// let sums = replicate_with_scratch(
///     4,
///     &RunnerConfig::default(),
///     &NullProgress,
///     Vec::new,
///     |i, buf: &mut Vec<u32>| {
///         buf.clear();
///         buf.extend(0..=i);
///         buf.iter().sum::<u32>()
///     },
/// );
/// assert_eq!(sums, vec![0, 1, 3, 6]);
/// ```
pub fn replicate_with_scratch<R, S, I, F>(
    replications: u32,
    config: &RunnerConfig,
    progress: &dyn Progress,
    init: I,
    f: F,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(u32, &mut S) -> R + Sync,
{
    replicate_batched(
        replications,
        config,
        progress,
        init,
        |range, scratch, out| {
            for i in range {
                out.push(f(i, scratch));
            }
        },
    )
}

/// Like [`replicate_with_scratch`], but hands each worker a whole
/// half-open *range* of replication indices at a time, appending one
/// result per index (in ascending order) to the output buffer.
///
/// This is the batch-amortising form: a backend can perform per-run setup
/// that is identical across replications (sample-time schedules, buffer
/// sizing) once per batch instead of once per replication. Batches never
/// straddle chunk boundaries, and the determinism contract is unchanged —
/// each index's result must depend only on that index — so the output is
/// bit-identical for every thread count, chunk size, *and* batch size
/// ([`RunnerConfig::batch_size`]; `0` is treated as 1).
pub fn replicate_batched<R, S, I, F>(
    replications: u32,
    config: &RunnerConfig,
    progress: &dyn Progress,
    init: I,
    f: F,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(std::ops::Range<u32>, &mut S, &mut Vec<R>) + Sync,
{
    if replications == 0 {
        return Vec::new();
    }
    let chunk = config.chunk_size.max(1);
    let batch = config.batch_size.max(1);
    let num_chunks = replications.div_ceil(chunk);
    let threads = config.effective_threads().min(num_chunks as usize).max(1);

    // Runs one chunk: its replications in batch-sized ranges, results
    // appended to `out` in index order.
    let run_chunk = |c: u32, scratch: &mut S, out: &mut Vec<R>| -> u32 {
        let lo = c * chunk;
        let hi = (lo + chunk).min(replications);
        let before = out.len();
        let mut b = lo;
        while b < hi {
            let e = (b + batch).min(hi);
            f(b..e, scratch, out);
            b = e;
        }
        assert_eq!(
            out.len() - before,
            (hi - lo) as usize,
            "batch callback must append exactly one result per replication"
        );
        hi - lo
    };

    if threads == 1 {
        let mut scratch = init();
        let mut out = Vec::with_capacity(replications as usize);
        let mut total_done = 0;
        for c in 0..num_chunks {
            total_done += run_chunk(c, &mut scratch, &mut out);
            progress.on_replications(total_done, replications);
        }
        return out;
    }

    let next_chunk = AtomicU32::new(0);
    let done = AtomicU32::new(0);
    let mut per_worker: Vec<Vec<(u32, Vec<R>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut mine: Vec<(u32, Vec<R>)> = Vec::new();
                    loop {
                        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let mut results: Vec<R> = Vec::new();
                        let n = run_chunk(c, &mut scratch, &mut results);
                        let total_done = done.fetch_add(n, Ordering::Relaxed) + n;
                        progress.on_replications(total_done, replications);
                        mine.push((c, results));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replication worker panicked"))
            .collect()
    });

    // Deterministic reduction: reassemble chunks in index order, which
    // recovers exactly the sequential 0..replications ordering.
    let mut chunks: Vec<(u32, Vec<R>)> = per_worker.drain(..).flatten().collect();
    chunks.sort_unstable_by_key(|(c, _)| *c);
    debug_assert_eq!(chunks.len(), num_chunks as usize);
    let mut out = Vec::with_capacity(replications as usize);
    for (_, mut part) in chunks {
        out.append(&mut part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullProgress;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_replication_order() {
        for threads in [1, 2, 4, 8] {
            let cfg = RunnerConfig {
                threads,
                chunk_size: 3,
                ..Default::default()
            };
            let got = replicate(100, &cfg, &NullProgress, |i| i);
            assert_eq!(got, (0..100).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn identical_results_across_thread_and_chunk_choices() {
        let work = |i: u32| itua_sim::rng::stream_seed(42, i as u64);
        let reference = replicate(257, &RunnerConfig::serial(), &NullProgress, work);
        for threads in [2, 3, 8] {
            for chunk_size in [1, 7, 64, 1000] {
                let cfg = RunnerConfig {
                    threads,
                    chunk_size,
                    ..Default::default()
                };
                assert_eq!(
                    replicate(257, &cfg, &NullProgress, work),
                    reference,
                    "threads={threads} chunk={chunk_size}"
                );
            }
        }
    }

    #[test]
    fn zero_replications_is_empty() {
        let out: Vec<u32> = replicate(0, &RunnerConfig::default(), &NullProgress, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn runs_every_replication_exactly_once() {
        let calls = AtomicUsize::new(0);
        let cfg = RunnerConfig {
            threads: 4,
            chunk_size: 5,
            ..Default::default()
        };
        let out = replicate(83, &cfg, &NullProgress, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 83);
        assert_eq!(calls.load(Ordering::Relaxed), 83);
    }

    #[test]
    fn progress_reaches_total() {
        struct Last(AtomicU32);
        impl Progress for Last {
            fn on_replications(&self, done: u32, _total: u32) {
                self.0.fetch_max(done, Ordering::Relaxed);
            }
        }
        let last = Last(AtomicU32::new(0));
        let cfg = RunnerConfig {
            threads: 2,
            chunk_size: 10,
            ..Default::default()
        };
        replicate(45, &cfg, &last, |i| i);
        assert_eq!(last.0.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn scratch_reuse_does_not_change_results() {
        // A work function that abuses its scratch as a dirty buffer still
        // yields thread-count-invariant results as long as it resets first.
        let work = |i: u32, buf: &mut Vec<u64>| {
            buf.clear();
            buf.extend((0..4).map(|k| itua_sim::rng::stream_seed(i as u64, k)));
            buf.iter().fold(0u64, |a, b| a.wrapping_add(*b))
        };
        let reference =
            replicate_with_scratch(123, &RunnerConfig::serial(), &NullProgress, Vec::new, work);
        for threads in [2, 4, 8] {
            let cfg = RunnerConfig {
                threads,
                chunk_size: 7,
                ..Default::default()
            };
            assert_eq!(
                replicate_with_scratch(123, &cfg, &NullProgress, Vec::new, work),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scratch_is_created_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let cfg = RunnerConfig {
            threads: 3,
            chunk_size: 4,
            ..Default::default()
        };
        replicate_with_scratch(
            60,
            &cfg,
            &NullProgress,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |i, _| i,
        );
        // One scratch per spawned worker, never one per replication.
        assert_eq!(inits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn auto_threads_resolves_positive() {
        assert!(RunnerConfig::default().effective_threads() >= 1);
        assert_eq!(RunnerConfig::serial().effective_threads(), 1);
        assert_eq!(
            RunnerConfig::default().with_threads(3).effective_threads(),
            3
        );
    }
}

//! Progress observation for long experiment runs.
//!
//! The engine and the sweep orchestrator report through the [`Progress`]
//! trait; implementations decide what to show. [`ConsoleProgress`] prints
//! replications/second, an ETA extrapolated from the measured rate, and
//! each sweep point's estimates as they land — all on stderr, so stdout
//! stays clean for tables and CSV.

use crate::store::StoredEstimate;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Observer of a running experiment or sweep.
///
/// Implementations must be `Sync`: workers report concurrently. All
/// methods have empty defaults so implementations override only what they
/// display.
pub trait Progress: Sync {
    /// Called after each completed chunk of replications of the current
    /// work item (`done` of `total` replications finished).
    fn on_replications(&self, done: u32, total: u32) {
        let _ = (done, total);
    }

    /// Called when sweep point `index` of `total` starts.
    fn on_point_start(&self, index: usize, total: usize, label: &str) {
        let _ = (index, total, label);
    }

    /// Called when a sweep point finishes. `resumed` means the result was
    /// loaded from the result store instead of simulated.
    fn on_point_done(
        &self,
        index: usize,
        total: usize,
        label: &str,
        estimates: &[StoredEstimate],
        resumed: bool,
    ) {
        let _ = (index, total, label, estimates, resumed);
    }
}

/// Silent observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgress;

impl Progress for NullProgress {}

#[derive(Debug)]
struct ConsoleState {
    started: Instant,
    /// Replications simulated so far in *finished* points.
    reps_in_finished_points: u64,
    /// Points finished (simulated or resumed).
    points_done: usize,
    /// Points loaded from the store (excluded from the rate).
    points_resumed: usize,
    current_label: String,
    last_line: Instant,
}

/// Prints progress to stderr.
///
/// Designed for the figure binaries: point lines are always printed;
/// replication lines are throttled (at most ~5/s) and carry the measured
/// simulation rate and an ETA for the current point.
#[derive(Debug)]
pub struct ConsoleProgress {
    state: Mutex<ConsoleState>,
}

impl Default for ConsoleProgress {
    fn default() -> Self {
        Self::new()
    }
}

impl ConsoleProgress {
    /// Creates a console reporter; the clock starts now.
    pub fn new() -> Self {
        ConsoleProgress {
            state: Mutex::new(ConsoleState {
                started: Instant::now(),
                reps_in_finished_points: 0,
                points_done: 0,
                points_resumed: 0,
                current_label: String::new(),
                last_line: Instant::now() - Duration::from_secs(1),
            }),
        }
    }
}

impl Progress for ConsoleProgress {
    fn on_replications(&self, done: u32, total: u32) {
        let mut s = self.state.lock().expect("progress state poisoned");
        if s.last_line.elapsed() < Duration::from_millis(200) && done < total {
            return;
        }
        s.last_line = Instant::now();
        let elapsed = s.started.elapsed().as_secs_f64();
        let overall_done = s.reps_in_finished_points + done as u64;
        let rate = overall_done as f64 / elapsed.max(1e-9);
        let eta = (total - done) as f64 / rate.max(1e-9);
        eprintln!(
            "    {done}/{total} replications of {} ({rate:.0} reps/s, point ETA {})",
            s.current_label,
            fmt_secs(eta),
        );
        if done >= total {
            // The work item is complete; fold its replications into the
            // cumulative rate for later points.
            s.reps_in_finished_points += total as u64;
        }
    }

    fn on_point_start(&self, index: usize, total: usize, label: &str) {
        let mut s = self.state.lock().expect("progress state poisoned");
        s.current_label = label.to_owned();
        eprintln!("[{}/{total}] {label}", index + 1);
    }

    fn on_point_done(
        &self,
        index: usize,
        total: usize,
        label: &str,
        estimates: &[StoredEstimate],
        resumed: bool,
    ) {
        let mut s = self.state.lock().expect("progress state poisoned");
        s.points_done += 1;
        if resumed {
            s.points_resumed += 1;
            eprintln!("[{}/{total}] {label}: resumed from result store", index + 1);
        } else {
            let shown: Vec<String> = estimates
                .iter()
                .map(|e| format!("{}={:.4}±{:.4}", e.name, e.mean, e.half_width))
                .collect();
            eprintln!("[{}/{total}] {label}: {}", index + 1, shown.join("  "));
        }
        // Sweep-level ETA from the measured per-point pace (simulated
        // points only; resumed points are free).
        let simulated = s.points_done - s.points_resumed;
        if simulated > 0 && s.points_done < total {
            let per_point = s.started.elapsed().as_secs_f64() / simulated as f64;
            let remaining = (total - s.points_done) as f64 * per_point;
            eprintln!("    sweep ETA {}", fmt_secs(remaining));
        }
    }
}

fn fmt_secs(secs: f64) -> String {
    if !secs.is_finite() {
        return "?".to_owned();
    }
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_progress_accepts_everything() {
        let p = NullProgress;
        p.on_replications(1, 10);
        p.on_point_start(0, 3, "x");
        p.on_point_done(0, 3, "x", &[], false);
    }

    #[test]
    fn console_progress_is_sync_and_counts() {
        fn assert_sync<T: Sync>(_: &T) {}
        let p = ConsoleProgress::new();
        assert_sync(&p);
        p.on_point_start(0, 2, "point a");
        p.on_replications(5, 10);
        p.on_replications(10, 10);
        p.on_point_done(0, 2, "point a", &[], false);
        p.on_point_done(1, 2, "point b", &[], true);
        let s = p.state.lock().unwrap();
        assert_eq!(s.points_done, 2);
        assert_eq!(s.points_resumed, 1);
        assert_eq!(s.reps_in_finished_points, 10);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(5.2), "5s");
        assert_eq!(fmt_secs(125.0), "2m05s");
        assert_eq!(fmt_secs(7322.0), "2h02m");
        assert_eq!(fmt_secs(f64::INFINITY), "?");
    }
}

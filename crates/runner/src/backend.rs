//! The backend abstraction: one execution path for every encoding of the
//! ITUA process.
//!
//! A [`Backend`] turns `(seed, horizon, sample_times)` into a
//! [`RunOutput`] — the paper's per-replication measure record — using a
//! per-thread reusable [`Backend::Scratch`] so simulation state (event
//! queues, host/place vectors) is allocated once per worker thread, not
//! once per replication. Both simulation encodings implement it:
//!
//! * the direct DES ([`itua_core::des::ItuaDes`]), and
//! * the composed SAN ([`itua_core::san_exec::ItuaSanRunner`]).
//!
//! A third, non-simulation backend solves small configurations exactly
//! ([`itua_core::analytic::ItuaAnalytic`]): it reports its measures
//! through [`Backend::exact_measures`] instead of per-replication runs,
//! and [`run_measures`] short-circuits the replication loop for it.
//!
//! [`run_measures`] is the shared replication loop: it fans replications
//! out through [`replicate_batched`] (chunk-ordered deterministic
//! reduction, `stream_seed` seeding, batch-amortised per-run setup via
//! [`Backend::run_batch`]) and folds the outputs into a [`MeasureSet`]
//! in replication order, so results are bit-identical for every thread
//! count and batch size — for every backend (trivially so for the
//! analytic one, which never consults seed or thread).

use crate::engine::{replicate_batched, RunnerConfig};
use crate::progress::Progress;
use itua_core::analytic::{AnalyticError, AnalyticOptions, ItuaAnalytic};
use itua_core::des::{DesScratch, ItuaDes};
use itua_core::measures::{MeasureSet, RunOutput};
use itua_core::params::Params;
use itua_core::san_exec::{ItuaSanRunner, SanScratch};
use itua_sim::rng::stream_seed;

/// Error from a backend run (model construction or simulation failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    message: String,
}

impl BackendError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        BackendError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BackendError {}

impl From<itua_san::model::SanError> for BackendError {
    fn from(e: itua_san::model::SanError) -> Self {
        BackendError::new(format!("SAN simulation failed: {e}"))
    }
}

impl From<BackendError> for std::io::Error {
    fn from(e: BackendError) -> Self {
        std::io::Error::other(e)
    }
}

impl From<AnalyticError> for BackendError {
    fn from(e: AnalyticError) -> Self {
        // `TooLarge` already carries the full "use des/san" guidance.
        BackendError::new(e.to_string())
    }
}

/// A simulation encoding that can execute one replication of the ITUA
/// process.
///
/// Implementations must be deterministic functions of the arguments: given
/// the same `(seed, horizon, sample_times)`, `run` must return the same
/// [`RunOutput`] regardless of the scratch's history. That contract is what
/// lets [`run_measures`] reuse one scratch per worker thread while keeping
/// results bit-identical for every thread count.
pub trait Backend: Sync {
    /// Reusable per-thread simulation state.
    type Scratch: Send;

    /// Creates a scratch compatible with this backend.
    fn scratch(&self) -> Self::Scratch;

    /// Runs one replication until `horizon`, sampling instant-of-time
    /// measures at `sample_times`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if the underlying simulator fails (the DES
    /// is infallible; the SAN can report stabilization livelock).
    fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut Self::Scratch,
    ) -> Result<RunOutput, BackendError>;

    /// Runs the half-open replication range `reps`, appending one result
    /// per replication (in ascending index order) to `out`.
    ///
    /// Replication `rep` must be seeded `stream_seed(origin_seed, rep)`
    /// and produce exactly the output [`Backend::run`] would — the
    /// default does precisely that. Backends override this only to
    /// amortise per-replication setup that is identical across the batch
    /// (the SAN backend prepares its sample-time schedule once), never to
    /// change results: outputs must be bit-identical for every batch
    /// size.
    fn run_batch(
        &self,
        origin_seed: u64,
        reps: std::ops::Range<u32>,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut Self::Scratch,
        out: &mut Vec<Result<RunOutput, BackendError>>,
    ) {
        for rep in reps {
            out.push(self.run(
                stream_seed(origin_seed, u64::from(rep)),
                horizon,
                sample_times,
                scratch,
            ));
        }
    }

    /// For deterministic (exact) backends: the full measure set, computed
    /// without replication. `Some` short-circuits the replication loop in
    /// [`run_measures`]; the default `None` means "simulate".
    fn exact_measures(
        &self,
        _horizon: f64,
        _sample_times: &[f64],
        _confidence: f64,
    ) -> Option<Result<MeasureSet, BackendError>> {
        None
    }

    /// A cheap structural self-check of the model, run once before the
    /// replication loop when [`ModelCheck::Quick`] is in force. The
    /// default has nothing to verify. The SAN backend verifies its
    /// expected invariants and rate sanity at the initial marking
    /// ([`itua_core::analysis::quick_check`]).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] describing every violation found.
    fn self_check(&self) -> Result<(), BackendError> {
        Ok(())
    }

    /// An exhaustive model check: prove the structural properties over the
    /// *entire* reachable state space (quotiented by model symmetry) under
    /// a state budget, instead of probing a sample of markings. Opt-in via
    /// [`ModelCheck::Deep`] — exponentially more expensive than
    /// [`Backend::self_check`] and only feasible on micro configurations.
    /// The default falls back to the quick check. The SAN backend runs
    /// [`itua_core::analysis::deep_check`]: every conservation family over
    /// every reachable marking, livelock detection, and cross-validation
    /// of the explorer against the analytic backend's state-space builder.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] describing every violation found, or a
    /// budget-exceeded error when the space is larger than `max_states`.
    fn self_check_deep(&self, _max_states: usize) -> Result<(), BackendError> {
        self.self_check()
    }
}

/// Whether [`run_measures_checked`] verifies the model before simulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelCheck {
    /// Run [`Backend::self_check`] once before the replication loop and
    /// refuse to simulate a model that fails it. O(places + activities)
    /// for the SAN backend — cheap enough to be the default for every
    /// sweep point.
    #[default]
    Quick,
    /// Run [`Backend::self_check_deep`]: exhaustively verify the model
    /// over its full reachable state space (up to `max_states` quotient
    /// states) before simulating. Micro configurations only.
    Deep {
        /// State budget for the exhaustive exploration.
        max_states: usize,
    },
    /// Skip the check (`--no-check`).
    Off,
}

impl Backend for ItuaDes {
    type Scratch = DesScratch;

    fn scratch(&self) -> DesScratch {
        ItuaDes::scratch(self)
    }

    fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut DesScratch,
    ) -> Result<RunOutput, BackendError> {
        Ok(self.run_into(seed, horizon, sample_times, scratch))
    }
}

impl Backend for ItuaSanRunner {
    type Scratch = SanScratch;

    fn scratch(&self) -> SanScratch {
        ItuaSanRunner::scratch(self)
    }

    fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut SanScratch,
    ) -> Result<RunOutput, BackendError> {
        Ok(self.run_into(seed, horizon, sample_times, scratch)?)
    }

    fn run_batch(
        &self,
        origin_seed: u64,
        reps: std::ops::Range<u32>,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut SanScratch,
        out: &mut Vec<Result<RunOutput, BackendError>>,
    ) {
        self.run_batch_into(origin_seed, reps, horizon, sample_times, scratch, out);
    }

    fn self_check(&self) -> Result<(), BackendError> {
        itua_core::analysis::quick_check(self.model()).map_err(|e| {
            BackendError::new(format!(
                "SAN model failed its structural self-check (pass --no-check to \
                 simulate anyway):\n{e}"
            ))
        })
    }

    fn self_check_deep(&self, max_states: usize) -> Result<(), BackendError> {
        itua_core::analysis::deep_check(self.model(), max_states)
            .map_err(|e| BackendError::new(format!("SAN model failed its exhaustive check:\n{e}")))
    }
}

/// Which encoding of the ITUA process executes a study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Direct discrete-event simulation (fast; the sweep default).
    #[default]
    Des,
    /// Composed stochastic activity network (the faithful reproduction
    /// artifact; roughly an order of magnitude slower).
    San,
    /// Exact CTMC solution of the composed SAN (small configurations
    /// only; zero-variance estimates).
    Analytic,
}

impl BackendKind {
    /// All supported kinds.
    pub const ALL: [BackendKind; 3] = [BackendKind::Des, BackendKind::San, BackendKind::Analytic];

    /// Parses a CLI name (`des` / `san` / `analytic`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "des" => Some(BackendKind::Des),
            "san" => Some(BackendKind::San),
            "analytic" => Some(BackendKind::Analytic),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Des => "des",
            BackendKind::San => "san",
            BackendKind::Analytic => "analytic",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Options for backend construction that are not model parameters.
///
/// The state budget and thread count never influence results — only
/// whether a backend accepts a configuration and how fast it solves — so
/// they stay out of sweep fingerprints. [`BackendOptions::analytic_lump`]
/// selects the exact symmetry quotient: the measures are identical in
/// exact arithmetic but the chain differs, so the sweep fingerprint
/// records it (see `itua-studies`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendOptions {
    /// State-space bound for the analytic backend; `None` uses the
    /// per-mode default ([`ItuaAnalytic::DEFAULT_MAX_STATES_LUMPED`] when
    /// lumping, [`ItuaAnalytic::DEFAULT_MAX_STATES`] otherwise).
    pub analytic_max_states: Option<usize>,
    /// Solve the analytic backend on the symmetry-lumped chain (exact;
    /// the default).
    pub analytic_lump: bool,
    /// Worker threads for the analytic uniformization kernel (results
    /// are bit-identical at any count).
    pub analytic_threads: usize,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            analytic_max_states: None,
            analytic_lump: true,
            analytic_threads: 1,
        }
    }
}

impl BackendOptions {
    /// The [`AnalyticOptions`] these backend options select.
    pub fn analytic_options(&self) -> AnalyticOptions {
        AnalyticOptions {
            max_states: self.analytic_max_states.unwrap_or(if self.analytic_lump {
                ItuaAnalytic::DEFAULT_MAX_STATES_LUMPED
            } else {
                ItuaAnalytic::DEFAULT_MAX_STATES
            }),
            lump: self.analytic_lump,
            threads: self.analytic_threads.max(1),
        }
    }
}

/// A [`Backend`] chosen at runtime: any ITUA encoding behind one type.
pub enum ItuaBackend {
    /// Direct DES.
    Des(ItuaDes),
    /// Composed SAN.
    San(ItuaSanRunner),
    /// Exact CTMC solution.
    Analytic(ItuaAnalytic),
}

/// Scratch for [`ItuaBackend`]. The payloads are boxed: a scratch lives
/// for a whole worker thread, so one allocation per worker is free, and
/// boxing keeps the enum small. The analytic backend never runs
/// replications, so its scratch is empty.
pub enum ItuaScratch {
    /// Scratch for the DES backend.
    Des(Box<DesScratch>),
    /// Scratch for the SAN backend.
    San(Box<SanScratch>),
    /// Scratch for the analytic backend (stateless).
    Analytic,
}

impl ItuaBackend {
    /// Builds the chosen encoding for `params` with default
    /// [`BackendOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] for invalid parameters or model
    /// construction failures.
    pub fn for_params(kind: BackendKind, params: &Params) -> Result<Self, BackendError> {
        Self::for_params_with(kind, params, &BackendOptions::default())
    }

    /// Builds the chosen encoding for `params`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] for invalid parameters or model
    /// construction failures — including, for the analytic backend, a
    /// configuration whose state space exceeds
    /// [`BackendOptions::analytic_max_states`].
    pub fn for_params_with(
        kind: BackendKind,
        params: &Params,
        opts: &BackendOptions,
    ) -> Result<Self, BackendError> {
        match kind {
            BackendKind::Des => ItuaDes::new(params.clone())
                .map(ItuaBackend::Des)
                .map_err(|e| BackendError::new(format!("invalid parameters: {e}"))),
            BackendKind::San => ItuaSanRunner::new(params)
                .map(ItuaBackend::San)
                .map_err(|e| BackendError::new(format!("SAN build failed: {e}"))),
            BackendKind::Analytic => ItuaAnalytic::with_options(params, &opts.analytic_options())
                .map(ItuaBackend::Analytic)
                .map_err(Into::into),
        }
    }

    /// Which encoding this is.
    pub fn kind(&self) -> BackendKind {
        match self {
            ItuaBackend::Des(_) => BackendKind::Des,
            ItuaBackend::San(_) => BackendKind::San,
            ItuaBackend::Analytic(_) => BackendKind::Analytic,
        }
    }
}

impl Backend for ItuaAnalytic {
    type Scratch = ();

    fn scratch(&self) {}

    fn run(
        &self,
        _seed: u64,
        _horizon: f64,
        _sample_times: &[f64],
        _scratch: &mut (),
    ) -> Result<RunOutput, BackendError> {
        Err(BackendError::new(
            "analytic backend is exact and produces no per-replication output; \
             run_measures short-circuits through exact_measures",
        ))
    }

    fn exact_measures(
        &self,
        horizon: f64,
        sample_times: &[f64],
        confidence: f64,
    ) -> Option<Result<MeasureSet, BackendError>> {
        Some(
            self.solve(horizon, sample_times, confidence)
                .map_err(Into::into),
        )
    }
}

impl Backend for ItuaBackend {
    type Scratch = ItuaScratch;

    fn scratch(&self) -> ItuaScratch {
        match self {
            ItuaBackend::Des(b) => ItuaScratch::Des(Box::new(Backend::scratch(b))),
            ItuaBackend::San(b) => ItuaScratch::San(Box::new(Backend::scratch(b))),
            ItuaBackend::Analytic(_) => ItuaScratch::Analytic,
        }
    }

    fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut ItuaScratch,
    ) -> Result<RunOutput, BackendError> {
        match (self, scratch) {
            (ItuaBackend::Des(b), ItuaScratch::Des(s)) => {
                Backend::run(b, seed, horizon, sample_times, s)
            }
            (ItuaBackend::San(b), ItuaScratch::San(s)) => {
                Backend::run(b, seed, horizon, sample_times, s)
            }
            (ItuaBackend::Analytic(b), ItuaScratch::Analytic) => {
                Backend::run(b, seed, horizon, sample_times, &mut ())
            }
            _ => panic!("scratch kind does not match backend kind"),
        }
    }

    fn run_batch(
        &self,
        origin_seed: u64,
        reps: std::ops::Range<u32>,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut ItuaScratch,
        out: &mut Vec<Result<RunOutput, BackendError>>,
    ) {
        match (self, scratch) {
            (ItuaBackend::Des(b), ItuaScratch::Des(s)) => {
                Backend::run_batch(b, origin_seed, reps, horizon, sample_times, s, out);
            }
            (ItuaBackend::San(b), ItuaScratch::San(s)) => {
                Backend::run_batch(b, origin_seed, reps, horizon, sample_times, s, out);
            }
            (ItuaBackend::Analytic(b), ItuaScratch::Analytic) => {
                Backend::run_batch(b, origin_seed, reps, horizon, sample_times, &mut (), out);
            }
            _ => panic!("scratch kind does not match backend kind"),
        }
    }

    fn exact_measures(
        &self,
        horizon: f64,
        sample_times: &[f64],
        confidence: f64,
    ) -> Option<Result<MeasureSet, BackendError>> {
        match self {
            ItuaBackend::Des(_) | ItuaBackend::San(_) => None,
            ItuaBackend::Analytic(b) => b.exact_measures(horizon, sample_times, confidence),
        }
    }

    fn self_check(&self) -> Result<(), BackendError> {
        match self {
            ItuaBackend::Des(_) | ItuaBackend::Analytic(_) => Ok(()),
            ItuaBackend::San(b) => b.self_check(),
        }
    }

    fn self_check_deep(&self, max_states: usize) -> Result<(), BackendError> {
        match self {
            ItuaBackend::Des(_) | ItuaBackend::Analytic(_) => Ok(()),
            ItuaBackend::San(b) => b.self_check_deep(max_states),
        }
    }
}

/// Runs `replications` independent replications of `backend` and reduces
/// them into a [`MeasureSet`] at the given confidence level.
///
/// Replication `i` is seeded with `stream_seed(origin_seed, i)`; outputs
/// are recorded in replication order on the calling thread, so the result
/// is bit-identical for every thread count and chunk size in `runner`.
/// Each worker thread allocates one scratch and reuses it for all its
/// replications.
///
/// An exact backend (one whose [`Backend::exact_measures`] returns `Some`)
/// skips the replication loop entirely: its zero-variance measure set is
/// returned as one deterministic "replication", independent of
/// `replications`, `origin_seed`, and thread count.
///
/// # Errors
///
/// Returns the first (in replication order) [`BackendError`] any
/// replication produced.
///
/// # Example
///
/// ```
/// use itua_core::params::Params;
/// use itua_runner::backend::{run_measures, BackendKind, ItuaBackend};
/// use itua_runner::engine::RunnerConfig;
/// use itua_runner::progress::NullProgress;
///
/// let params = Params::default().with_domains(4, 2).with_applications(2, 3);
/// let backend = ItuaBackend::for_params(BackendKind::Des, &params).unwrap();
/// let ms = run_measures(
///     &backend,
///     50,
///     0.95,
///     42,
///     5.0,
///     &[5.0],
///     &RunnerConfig::default(),
///     &NullProgress,
/// )
/// .unwrap();
/// assert!(ms.mean(itua_core::measures::names::UNAVAILABILITY).is_some());
/// ```
#[allow(clippy::too_many_arguments)]
pub fn run_measures<B: Backend>(
    backend: &B,
    replications: u32,
    confidence: f64,
    origin_seed: u64,
    horizon: f64,
    sample_times: &[f64],
    runner: &RunnerConfig,
    progress: &dyn Progress,
) -> Result<MeasureSet, BackendError> {
    run_measures_checked(
        backend,
        replications,
        confidence,
        origin_seed,
        horizon,
        sample_times,
        runner,
        progress,
        ModelCheck::Quick,
    )
}

/// [`run_measures`] with an explicit [`ModelCheck`] policy: under
/// [`ModelCheck::Quick`] (the [`run_measures`] default) the backend's
/// [`Backend::self_check`] runs once up front and a failing model is
/// refused instead of simulated.
///
/// # Errors
///
/// Returns the self-check failure, or the first (in replication order)
/// [`BackendError`] any replication produced.
#[allow(clippy::too_many_arguments)]
pub fn run_measures_checked<B: Backend>(
    backend: &B,
    replications: u32,
    confidence: f64,
    origin_seed: u64,
    horizon: f64,
    sample_times: &[f64],
    runner: &RunnerConfig,
    progress: &dyn Progress,
    check: ModelCheck,
) -> Result<MeasureSet, BackendError> {
    match check {
        ModelCheck::Quick => backend.self_check()?,
        ModelCheck::Deep { max_states } => backend.self_check_deep(max_states)?,
        ModelCheck::Off => {}
    }
    if let Some(exact) = backend.exact_measures(horizon, sample_times, confidence) {
        let measures = exact?;
        progress.on_replications(replications, replications);
        return Ok(measures);
    }
    let outputs = replicate_batched(
        replications,
        runner,
        progress,
        || backend.scratch(),
        |reps, scratch, out| {
            backend.run_batch(origin_seed, reps, horizon, sample_times, scratch, out);
        },
    );
    let mut measures = MeasureSet::new(confidence);
    for out in outputs {
        measures.record(&out?);
    }
    Ok(measures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullProgress;

    fn small_params() -> Params {
        Params::default().with_domains(4, 2).with_applications(2, 3)
    }

    /// A configuration small enough for the analytic backend even in
    /// debug builds (spread disabled keeps the state space tiny).
    fn micro_params() -> Params {
        let mut p = Params::default().with_domains(1, 2).with_applications(1, 2);
        p.spread_rate_domain = 0.0;
        p.spread_rate_system = 0.0;
        p
    }

    #[test]
    fn kind_parses_and_prints() {
        assert_eq!(BackendKind::parse("des"), Some(BackendKind::Des));
        assert_eq!(BackendKind::parse("SAN"), Some(BackendKind::San));
        assert_eq!(BackendKind::parse("Analytic"), Some(BackendKind::Analytic));
        assert_eq!(BackendKind::parse("ctmc"), None);
        assert_eq!(BackendKind::Des.to_string(), "des");
        assert_eq!(BackendKind::San.to_string(), "san");
        assert_eq!(BackendKind::Analytic.to_string(), "analytic");
        assert_eq!(BackendKind::default(), BackendKind::Des);
    }

    #[test]
    fn des_measures_are_thread_count_invariant() {
        let backend = ItuaBackend::for_params(BackendKind::Des, &small_params()).unwrap();
        let reference = run_measures(
            &backend,
            64,
            0.95,
            7,
            5.0,
            &[5.0],
            &RunnerConfig::serial(),
            &NullProgress,
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let got = run_measures(
                &backend,
                64,
                0.95,
                7,
                5.0,
                &[5.0],
                &RunnerConfig::default().with_threads(threads),
                &NullProgress,
            )
            .unwrap();
            assert_eq!(got.estimates(), reference.estimates(), "threads={threads}");
        }
    }

    #[test]
    fn san_measures_are_thread_count_invariant() {
        let backend = ItuaBackend::for_params(BackendKind::San, &small_params()).unwrap();
        let reference = run_measures(
            &backend,
            16,
            0.95,
            7,
            3.0,
            &[3.0],
            &RunnerConfig::serial(),
            &NullProgress,
        )
        .unwrap();
        let got = run_measures(
            &backend,
            16,
            0.95,
            7,
            3.0,
            &[3.0],
            &RunnerConfig::default().with_threads(4),
            &NullProgress,
        )
        .unwrap();
        assert_eq!(got.estimates(), reference.estimates());
    }

    #[test]
    fn san_measures_are_batch_size_invariant() {
        // Batching is purely an amortisation knob: for any batch size
        // (and any batch × thread combination) the estimates are
        // bit-identical to the unbatched serial run.
        let backend = ItuaBackend::for_params(BackendKind::San, &small_params()).unwrap();
        let run = |rc: &RunnerConfig| {
            run_measures(&backend, 24, 0.95, 7, 3.0, &[3.0], rc, &NullProgress)
                .unwrap()
                .estimates()
        };
        let reference = run(&RunnerConfig::serial().with_batch_size(1));
        for batch in [1, 4, 32] {
            for threads in [1, 4] {
                let rc = RunnerConfig::default()
                    .with_threads(threads)
                    .with_batch_size(batch);
                assert_eq!(run(&rc), reference, "batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn both_simulation_backends_estimate_the_same_measures() {
        let params = small_params();
        // Only the simulation backends: this configuration's state space
        // is far beyond what the analytic backend accepts (by design —
        // see analytic_rejects_large_configs_gracefully).
        for kind in [BackendKind::Des, BackendKind::San] {
            let backend = ItuaBackend::for_params(kind, &params).unwrap();
            assert_eq!(backend.kind(), kind);
            let ms = run_measures(
                &backend,
                8,
                0.95,
                1,
                2.0,
                &[2.0],
                &RunnerConfig::serial(),
                &NullProgress,
            )
            .unwrap();
            assert!(
                ms.mean(itua_core::measures::names::UNAVAILABILITY)
                    .is_some(),
                "{kind}"
            );
        }
    }

    #[test]
    fn analytic_short_circuits_with_exact_estimates() {
        let backend = ItuaBackend::for_params(BackendKind::Analytic, &micro_params()).unwrap();
        assert_eq!(backend.kind(), BackendKind::Analytic);
        let ms = run_measures(
            &backend,
            1000, // ignored: one exact solve, not a thousand replications
            0.95,
            1,
            5.0,
            &[5.0],
            &RunnerConfig::serial(),
            &NullProgress,
        )
        .unwrap();
        let estimates = ms.estimates();
        assert!(!estimates.is_empty());
        for e in &estimates {
            assert_eq!(e.ci.half_width, 0.0, "{} is not exact", e.name);
        }
    }

    #[test]
    fn analytic_measures_are_invariant_in_threads_seed_and_replications() {
        let backend = ItuaBackend::for_params(BackendKind::Analytic, &micro_params()).unwrap();
        let run = |reps, seed, cfg: &RunnerConfig| {
            run_measures(&backend, reps, 0.95, seed, 5.0, &[5.0], cfg, &NullProgress)
                .unwrap()
                .estimates()
        };
        let reference = run(16, 7, &RunnerConfig::serial());
        assert_eq!(
            run(16, 7, &RunnerConfig::default().with_threads(8)),
            reference
        );
        assert_eq!(run(500, 99, &RunnerConfig::serial()), reference);
    }

    #[test]
    fn analytic_rejects_large_configs_gracefully() {
        // Figure-4 scale: 4 domains × 3 hosts with default spread rates is
        // far past any reasonable state bound. A small cap makes the
        // rejection fast without changing its nature.
        let params = Params::default().with_domains(4, 3).with_applications(4, 7);
        let opts = BackendOptions {
            analytic_max_states: Some(2_000),
            analytic_lump: false,
            analytic_threads: 1,
        };
        let Err(err) = ItuaBackend::for_params_with(BackendKind::Analytic, &params, &opts) else {
            panic!("figure-4-scale config must be rejected")
        };
        let msg = err.to_string();
        assert!(
            msg.contains("analytic backend supports ≤2000 states"),
            "{msg}"
        );
        assert!(msg.contains("use des/san"), "{msg}");
    }

    #[test]
    fn lumped_and_unlumped_backends_agree_on_micro_config() {
        let lumped = BackendOptions::default();
        assert!(lumped.analytic_lump);
        let unlumped = BackendOptions {
            analytic_lump: false,
            ..lumped
        };
        let run = |opts: &BackendOptions| {
            let backend =
                ItuaBackend::for_params_with(BackendKind::Analytic, &micro_params(), opts).unwrap();
            run_measures(
                &backend,
                1,
                0.95,
                0,
                5.0,
                &[2.5, 5.0],
                &RunnerConfig::serial(),
                &NullProgress,
            )
            .unwrap()
        };
        let a = run(&lumped);
        let b = run(&unlumped);
        let ea = a.estimates();
        let eb = b.estimates();
        assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(&eb) {
            assert_eq!(x.name, y.name);
            let denom = x.ci.mean.abs().max(1e-12);
            assert!(
                ((x.ci.mean - y.ci.mean) / denom).abs() < 1e-9,
                "{}: lumped {} vs unlumped {}",
                x.name,
                x.ci.mean,
                y.ci.mean
            );
        }
    }

    #[test]
    fn san_self_check_passes_and_check_modes_agree() {
        let backend = ItuaBackend::for_params(BackendKind::San, &small_params()).unwrap();
        backend.self_check().unwrap();
        let run = |check| {
            run_measures_checked(
                &backend,
                4,
                0.95,
                1,
                2.0,
                &[2.0],
                &RunnerConfig::serial(),
                &NullProgress,
                check,
            )
            .unwrap()
            .estimates()
        };
        // The check only gates; it must not influence the estimates.
        assert_eq!(run(ModelCheck::Quick), run(ModelCheck::Off));
    }

    #[test]
    fn san_deep_check_gates_like_quick_on_micro() {
        // micro_params zeroes spread, so use the spread-enabled micro
        // config the core analysis tests use; the deep check is an
        // exhaustive proof, not a probe, and must still only gate.
        let params = Params::default().with_domains(1, 2).with_applications(1, 2);
        let backend = ItuaBackend::for_params(BackendKind::San, &params).unwrap();
        backend.self_check_deep(200_000).unwrap();
        let run = |check| {
            run_measures_checked(
                &backend,
                4,
                0.95,
                1,
                2.0,
                &[2.0],
                &RunnerConfig::serial(),
                &NullProgress,
                check,
            )
            .unwrap()
            .estimates()
        };
        assert_eq!(
            run(ModelCheck::Deep {
                max_states: 200_000
            }),
            run(ModelCheck::Off)
        );
        // Too small a budget is a structured refusal, not a hang.
        let err = backend.self_check_deep(3).unwrap_err().to_string();
        assert!(err.contains("state budget"), "{err}");
    }

    #[test]
    fn des_and_analytic_self_checks_are_trivially_ok() {
        let des = ItuaBackend::for_params(BackendKind::Des, &small_params()).unwrap();
        let analytic = ItuaBackend::for_params(BackendKind::Analytic, &micro_params()).unwrap();
        assert!(des.self_check().is_ok());
        assert!(analytic.self_check().is_ok());
    }

    #[test]
    fn invalid_params_surface_as_backend_error() {
        let bad = Params::default().with_domains(0, 1);
        for kind in BackendKind::ALL {
            assert!(ItuaBackend::for_params(kind, &bad).is_err(), "{kind}");
        }
    }
}

//! The backend abstraction: one execution path for every encoding of the
//! ITUA process.
//!
//! A [`Backend`] turns `(seed, horizon, sample_times)` into a
//! [`RunOutput`] — the paper's per-replication measure record — using a
//! per-thread reusable [`Backend::Scratch`] so simulation state (event
//! queues, host/place vectors) is allocated once per worker thread, not
//! once per replication. Both encodings implement it:
//!
//! * the direct DES ([`itua_core::des::ItuaDes`]), and
//! * the composed SAN ([`itua_core::san_exec::ItuaSanRunner`]).
//!
//! [`run_measures`] is the shared replication loop: it fans replications
//! out through [`replicate_with_scratch`] (chunk-ordered deterministic
//! reduction, `stream_seed` seeding) and folds the outputs into a
//! [`MeasureSet`] in replication order, so results are bit-identical for
//! every thread count — for either backend.

use crate::engine::{replicate_with_scratch, RunnerConfig};
use crate::progress::Progress;
use itua_core::des::{DesScratch, ItuaDes};
use itua_core::measures::{MeasureSet, RunOutput};
use itua_core::params::Params;
use itua_core::san_exec::{ItuaSanRunner, SanScratch};
use itua_sim::rng::stream_seed;

/// Error from a backend run (model construction or simulation failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    message: String,
}

impl BackendError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        BackendError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BackendError {}

impl From<itua_san::model::SanError> for BackendError {
    fn from(e: itua_san::model::SanError) -> Self {
        BackendError::new(format!("SAN simulation failed: {e}"))
    }
}

impl From<BackendError> for std::io::Error {
    fn from(e: BackendError) -> Self {
        std::io::Error::other(e)
    }
}

/// A simulation encoding that can execute one replication of the ITUA
/// process.
///
/// Implementations must be deterministic functions of the arguments: given
/// the same `(seed, horizon, sample_times)`, `run` must return the same
/// [`RunOutput`] regardless of the scratch's history. That contract is what
/// lets [`run_measures`] reuse one scratch per worker thread while keeping
/// results bit-identical for every thread count.
pub trait Backend: Sync {
    /// Reusable per-thread simulation state.
    type Scratch: Send;

    /// Creates a scratch compatible with this backend.
    fn scratch(&self) -> Self::Scratch;

    /// Runs one replication until `horizon`, sampling instant-of-time
    /// measures at `sample_times`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if the underlying simulator fails (the DES
    /// is infallible; the SAN can report stabilization livelock).
    fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut Self::Scratch,
    ) -> Result<RunOutput, BackendError>;
}

impl Backend for ItuaDes {
    type Scratch = DesScratch;

    fn scratch(&self) -> DesScratch {
        ItuaDes::scratch(self)
    }

    fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut DesScratch,
    ) -> Result<RunOutput, BackendError> {
        Ok(self.run_into(seed, horizon, sample_times, scratch))
    }
}

impl Backend for ItuaSanRunner {
    type Scratch = SanScratch;

    fn scratch(&self) -> SanScratch {
        ItuaSanRunner::scratch(self)
    }

    fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut SanScratch,
    ) -> Result<RunOutput, BackendError> {
        Ok(self.run_into(seed, horizon, sample_times, scratch)?)
    }
}

/// Which encoding of the ITUA process executes a study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Direct discrete-event simulation (fast; the sweep default).
    #[default]
    Des,
    /// Composed stochastic activity network (the faithful reproduction
    /// artifact; roughly an order of magnitude slower).
    San,
}

impl BackendKind {
    /// All supported kinds.
    pub const ALL: [BackendKind; 2] = [BackendKind::Des, BackendKind::San];

    /// Parses a CLI name (`des` / `san`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "des" => Some(BackendKind::Des),
            "san" => Some(BackendKind::San),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Des => "des",
            BackendKind::San => "san",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A [`Backend`] chosen at runtime: either ITUA encoding behind one type.
pub enum ItuaBackend {
    /// Direct DES.
    Des(ItuaDes),
    /// Composed SAN.
    San(ItuaSanRunner),
}

/// Scratch for [`ItuaBackend`]. The payloads are boxed: a scratch lives
/// for a whole worker thread, so one allocation per worker is free, and
/// boxing keeps the enum small.
pub enum ItuaScratch {
    /// Scratch for the DES backend.
    Des(Box<DesScratch>),
    /// Scratch for the SAN backend.
    San(Box<SanScratch>),
}

impl ItuaBackend {
    /// Builds the chosen encoding for `params`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] for invalid parameters or model
    /// construction failures.
    pub fn for_params(kind: BackendKind, params: &Params) -> Result<Self, BackendError> {
        match kind {
            BackendKind::Des => ItuaDes::new(params.clone())
                .map(ItuaBackend::Des)
                .map_err(|e| BackendError::new(format!("invalid parameters: {e}"))),
            BackendKind::San => ItuaSanRunner::new(params)
                .map(ItuaBackend::San)
                .map_err(|e| BackendError::new(format!("SAN build failed: {e}"))),
        }
    }

    /// Which encoding this is.
    pub fn kind(&self) -> BackendKind {
        match self {
            ItuaBackend::Des(_) => BackendKind::Des,
            ItuaBackend::San(_) => BackendKind::San,
        }
    }
}

impl Backend for ItuaBackend {
    type Scratch = ItuaScratch;

    fn scratch(&self) -> ItuaScratch {
        match self {
            ItuaBackend::Des(b) => ItuaScratch::Des(Box::new(Backend::scratch(b))),
            ItuaBackend::San(b) => ItuaScratch::San(Box::new(Backend::scratch(b))),
        }
    }

    fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut ItuaScratch,
    ) -> Result<RunOutput, BackendError> {
        match (self, scratch) {
            (ItuaBackend::Des(b), ItuaScratch::Des(s)) => {
                Backend::run(b, seed, horizon, sample_times, s)
            }
            (ItuaBackend::San(b), ItuaScratch::San(s)) => {
                Backend::run(b, seed, horizon, sample_times, s)
            }
            _ => panic!("scratch kind does not match backend kind"),
        }
    }
}

/// Runs `replications` independent replications of `backend` and reduces
/// them into a [`MeasureSet`] at the given confidence level.
///
/// Replication `i` is seeded with `stream_seed(origin_seed, i)`; outputs
/// are recorded in replication order on the calling thread, so the result
/// is bit-identical for every thread count and chunk size in `runner`.
/// Each worker thread allocates one scratch and reuses it for all its
/// replications.
///
/// # Errors
///
/// Returns the first (in replication order) [`BackendError`] any
/// replication produced.
///
/// # Example
///
/// ```
/// use itua_core::params::Params;
/// use itua_runner::backend::{run_measures, BackendKind, ItuaBackend};
/// use itua_runner::engine::RunnerConfig;
/// use itua_runner::progress::NullProgress;
///
/// let params = Params::default().with_domains(4, 2).with_applications(2, 3);
/// let backend = ItuaBackend::for_params(BackendKind::Des, &params).unwrap();
/// let ms = run_measures(
///     &backend,
///     50,
///     0.95,
///     42,
///     5.0,
///     &[5.0],
///     &RunnerConfig::default(),
///     &NullProgress,
/// )
/// .unwrap();
/// assert!(ms.mean(itua_core::measures::names::UNAVAILABILITY).is_some());
/// ```
#[allow(clippy::too_many_arguments)]
pub fn run_measures<B: Backend>(
    backend: &B,
    replications: u32,
    confidence: f64,
    origin_seed: u64,
    horizon: f64,
    sample_times: &[f64],
    runner: &RunnerConfig,
    progress: &dyn Progress,
) -> Result<MeasureSet, BackendError> {
    let outputs = replicate_with_scratch(
        replications,
        runner,
        progress,
        || backend.scratch(),
        |rep, scratch| {
            backend.run(
                stream_seed(origin_seed, rep as u64),
                horizon,
                sample_times,
                scratch,
            )
        },
    );
    let mut measures = MeasureSet::new(confidence);
    for out in outputs {
        measures.record(&out?);
    }
    Ok(measures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullProgress;

    fn small_params() -> Params {
        Params::default().with_domains(4, 2).with_applications(2, 3)
    }

    #[test]
    fn kind_parses_and_prints() {
        assert_eq!(BackendKind::parse("des"), Some(BackendKind::Des));
        assert_eq!(BackendKind::parse("SAN"), Some(BackendKind::San));
        assert_eq!(BackendKind::parse("ctmc"), None);
        assert_eq!(BackendKind::Des.to_string(), "des");
        assert_eq!(BackendKind::San.to_string(), "san");
        assert_eq!(BackendKind::default(), BackendKind::Des);
    }

    #[test]
    fn des_measures_are_thread_count_invariant() {
        let backend = ItuaBackend::for_params(BackendKind::Des, &small_params()).unwrap();
        let reference = run_measures(
            &backend,
            64,
            0.95,
            7,
            5.0,
            &[5.0],
            &RunnerConfig::serial(),
            &NullProgress,
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let got = run_measures(
                &backend,
                64,
                0.95,
                7,
                5.0,
                &[5.0],
                &RunnerConfig::default().with_threads(threads),
                &NullProgress,
            )
            .unwrap();
            assert_eq!(got.estimates(), reference.estimates(), "threads={threads}");
        }
    }

    #[test]
    fn san_measures_are_thread_count_invariant() {
        let backend = ItuaBackend::for_params(BackendKind::San, &small_params()).unwrap();
        let reference = run_measures(
            &backend,
            16,
            0.95,
            7,
            3.0,
            &[3.0],
            &RunnerConfig::serial(),
            &NullProgress,
        )
        .unwrap();
        let got = run_measures(
            &backend,
            16,
            0.95,
            7,
            3.0,
            &[3.0],
            &RunnerConfig::default().with_threads(4),
            &NullProgress,
        )
        .unwrap();
        assert_eq!(got.estimates(), reference.estimates());
    }

    #[test]
    fn both_backends_estimate_the_same_measures() {
        let params = small_params();
        for kind in BackendKind::ALL {
            let backend = ItuaBackend::for_params(kind, &params).unwrap();
            assert_eq!(backend.kind(), kind);
            let ms = run_measures(
                &backend,
                8,
                0.95,
                1,
                2.0,
                &[2.0],
                &RunnerConfig::serial(),
                &NullProgress,
            )
            .unwrap();
            assert!(
                ms.mean(itua_core::measures::names::UNAVAILABILITY)
                    .is_some(),
                "{kind}"
            );
        }
    }

    #[test]
    fn invalid_params_surface_as_backend_error() {
        let bad = Params::default().with_domains(0, 1);
        for kind in BackendKind::ALL {
            assert!(ItuaBackend::for_params(kind, &bad).is_err(), "{kind}");
        }
    }
}

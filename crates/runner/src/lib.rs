//! Parallel experiment-execution engine for the ITUA reproduction.
//!
//! The paper's Möbius studies run thousands of independent replications per
//! sweep point — an embarrassingly parallel workload that the original
//! single-threaded `run_experiment` / `run_sweep` loops left on one core.
//! This crate is the execution layer that fixes that, as a subsystem the
//! rest of the stack (`itua-san` experiments, `itua-studies` sweeps, the
//! figure binaries) plugs into:
//!
//! * [`engine`] — shards replications across scoped worker threads in
//!   fixed-size chunks claimed from a shared counter. Replication `i` is
//!   seeded by `stream_seed(base, i)` regardless of which worker runs it,
//!   and results are reassembled in replication order before reduction, so
//!   **estimates are bit-identical for every thread count** (including the
//!   sequential path).
//! * [`backend`] — the [`backend::Backend`] trait: one execution path for
//!   both encodings of the ITUA process (direct DES and composed SAN),
//!   with per-thread reusable scratch state.
//! * [`experiment`] — the parallel replication loop for raw SANs plus
//!   reward variables, and its [`experiment::ExperimentConfig`] (the
//!   only experiment path; the old sequential loop in `itua-san` was
//!   retired in its favor and the config type moved here).
//! * [`split`] — the RESTART importance-splitting replication loop
//!   ([`split::run_measures_split`]): one splitting tree per replication,
//!   weighted leaves reduced tree-by-tree, bit-identical across thread
//!   counts and collapsing to the plain loop when no thresholds are set.
//! * [`progress`] — observer interface plus a console implementation
//!   reporting replications/second, ETA, and per-point estimates as they
//!   land.
//! * [`store`] + [`json`] — a dependency-free JSON result store under
//!   `results/`; an interrupted sweep resumes at the first incomplete
//!   point.
//! * [`sweep`] — the orchestration layer ([`sweep::SweepRunner`]) tying
//!   engine, progress, and store together for whole figure sweeps.
//!
//! See `DESIGN.md` § "Runner subsystem" for the threading and determinism
//! rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod experiment;
pub mod json;
pub mod progress;
pub mod split;
pub mod store;
pub mod sweep;

pub use backend::{
    run_measures, Backend, BackendError, BackendKind, BackendOptions, ItuaBackend, ItuaScratch,
};
pub use engine::{replicate, replicate_batched, replicate_with_scratch, RunnerConfig};
pub use experiment::{run_experiment_parallel, ExperimentConfig};
pub use progress::{ConsoleProgress, NullProgress, Progress};
pub use split::{run_measures_split, SplitRun, SplitTotals};
pub use store::{fingerprint, fingerprint_iter, ResultStore, StoredEstimate, StoredPoint};
pub use sweep::{PointSpec, SweepRunner};

//! Resumable JSON result store.
//!
//! One sweep persists to one file, `<dir>/<sweep_id>.json`, holding the
//! sweep's configuration fingerprint and every completed point. The file
//! is rewritten atomically (temp file + rename) after each point, so an
//! interrupted run loses at most the point in flight and
//! [`ResultStore::completed`] lets the orchestrator restart at the first
//! incomplete point. A fingerprint mismatch (different replication count,
//! seed, point set, …) discards the stale file rather than mixing results
//! from different configurations.
//!
//! Format (versioned):
//!
//! ```json
//! {
//!   "format": 1,
//!   "sweep": "figure3",
//!   "fingerprint": "9f3a…",
//!   "points": [
//!     {"key": "0|2 applications|x=1", "x": 1.0, "series": "2 applications",
//!      "estimates": [{"name": "unavailability", "mean": 0.01,
//!                     "half_width": 0.002, "n": 2000,
//!                     "min": 0.0, "max": 0.4}]}
//!   ]
//! }
//! ```

use crate::json::Json;
use itua_stats::replication::Estimate;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One measure's stored estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEstimate {
    /// Measure name (possibly with an `@t` suffix).
    pub name: String,
    /// Point estimate.
    pub mean: f64,
    /// Confidence half-width.
    pub half_width: f64,
    /// Observations behind the estimate.
    pub n: u64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl From<&Estimate> for StoredEstimate {
    fn from(e: &Estimate) -> Self {
        StoredEstimate {
            name: e.name.clone(),
            mean: e.ci.mean,
            half_width: e.ci.half_width,
            n: e.ci.n,
            min: e.min,
            max: e.max,
        }
    }
}

/// One completed sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPoint {
    /// Stable identifier of the point within its sweep.
    pub key: String,
    /// X-axis value.
    pub x: f64,
    /// Series label.
    pub series: String,
    /// Every estimate the point produced.
    pub estimates: Vec<StoredEstimate>,
}

impl StoredPoint {
    /// The stored estimate for `measure`, if present.
    pub fn estimate(&self, measure: &str) -> Option<&StoredEstimate> {
        self.estimates.iter().find(|e| e.name == measure)
    }
}

/// An on-disk store of completed sweep points.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    sweep_id: String,
    fingerprint: String,
    points: Vec<StoredPoint>,
}

const FORMAT: f64 = 1.0;

impl ResultStore {
    /// Opens (or creates) the store for `sweep_id` under `dir`.
    ///
    /// An existing file with the same fingerprint is loaded for resume; a
    /// file with a different fingerprint (or an unreadable one) is
    /// discarded and the store starts empty.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, file reads).
    pub fn open(dir: &Path, sweep_id: &str, fingerprint: &str) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{sweep_id}.json"));
        let mut store = ResultStore {
            path: path.clone(),
            sweep_id: sweep_id.to_owned(),
            fingerprint: fingerprint.to_owned(),
            points: Vec::new(),
        };
        match fs::read_to_string(&path) {
            Ok(text) => {
                if let Some(points) = decode(&text, sweep_id, fingerprint) {
                    store.points = points;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(store)
    }

    /// The completed point with this key, if any.
    pub fn completed(&self, key: &str) -> Option<&StoredPoint> {
        self.points.iter().find(|p| p.key == key)
    }

    /// Number of completed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has completed yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The file this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records a completed point and rewrites the file atomically.
    ///
    /// A point with the same key replaces the previous entry.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the previous file version survives a
    /// failed write (temp file + rename).
    pub fn record(&mut self, point: StoredPoint) -> io::Result<()> {
        match self.points.iter_mut().find(|p| p.key == point.key) {
            Some(existing) => *existing = point,
            None => self.points.push(point),
        }
        let tmp = self.path.with_extension("json.tmp");
        fs::write(&tmp, self.encode().to_string())?;
        fs::rename(&tmp, &self.path)
    }

    fn encode(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::Num(FORMAT)),
            ("sweep".into(), Json::Str(self.sweep_id.clone())),
            ("fingerprint".into(), Json::Str(self.fingerprint.clone())),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("key".into(), Json::Str(p.key.clone())),
                                ("x".into(), Json::Num(p.x)),
                                ("series".into(), Json::Str(p.series.clone())),
                                (
                                    "estimates".into(),
                                    Json::Arr(
                                        p.estimates
                                            .iter()
                                            .map(|e| {
                                                Json::Obj(vec![
                                                    ("name".into(), Json::Str(e.name.clone())),
                                                    ("mean".into(), Json::Num(e.mean)),
                                                    ("half_width".into(), Json::Num(e.half_width)),
                                                    ("n".into(), Json::Num(e.n as f64)),
                                                    ("min".into(), Json::Num(e.min)),
                                                    ("max".into(), Json::Num(e.max)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn decode(text: &str, sweep_id: &str, fingerprint: &str) -> Option<Vec<StoredPoint>> {
    let doc = Json::parse(text).ok()?;
    if doc.get("format")?.as_f64()? != FORMAT
        || doc.get("sweep")?.as_str()? != sweep_id
        || doc.get("fingerprint")?.as_str()? != fingerprint
    {
        return None;
    }
    let mut points = Vec::new();
    for p in doc.get("points")?.as_arr()? {
        let mut estimates = Vec::new();
        for e in p.get("estimates")?.as_arr()? {
            estimates.push(StoredEstimate {
                name: e.get("name")?.as_str()?.to_owned(),
                mean: e.get("mean")?.as_f64()?,
                half_width: e.get("half_width")?.as_f64()?,
                n: e.get("n")?.as_u64()?,
                min: e.get("min")?.as_f64()?,
                max: e.get("max")?.as_f64()?,
            });
        }
        points.push(StoredPoint {
            key: p.get("key")?.as_str()?.to_owned(),
            x: p.get("x")?.as_f64()?,
            series: p.get("series")?.as_str()?.to_owned(),
            estimates,
        });
    }
    Some(points)
}

/// Fingerprints a sweep configuration (FNV-1a over the parts, hex).
///
/// Stable across runs and platforms; any changed part (replications,
/// seed, point keys, measure list, …) yields a different fingerprint so
/// stale stores are never resumed.
pub fn fingerprint(parts: &[&str]) -> String {
    fingerprint_iter(parts.iter().copied())
}

/// [`fingerprint`] over any iterator of parts, so callers composing a
/// fingerprint from heterogeneous sources (sweep configuration plus
/// scenario-identity parts — see `itua_studies::sweep::RunOpts::
/// fingerprint_extra`) need not collect into one slice first. Appending
/// zero extra parts yields exactly the same fingerprint as the base
/// sequence: the hash is over the parts actually yielded.
pub fn fingerprint_iter<'a, I: IntoIterator<Item = &'a str>>(parts: I) -> String {
    let mut hash = 0xcbf29ce484222325u64;
    for part in parts {
        for b in part.bytes() {
            hash = (hash ^ b as u64).wrapping_mul(0x100000001b3);
        }
        // Separator so ["ab", "c"] != ["a", "bc"].
        hash = (hash ^ 0x1f).wrapping_mul(0x100000001b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(key: &str, x: f64) -> StoredPoint {
        StoredPoint {
            key: key.to_owned(),
            x,
            series: "s".to_owned(),
            estimates: vec![StoredEstimate {
                name: "unavailability".to_owned(),
                mean: 0.125,
                half_width: 0.01,
                n: 2000,
                min: 0.0,
                max: 1.0,
            }],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("itua-runner-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_and_resume() {
        let dir = tmp_dir("resume");
        let mut store = ResultStore::open(&dir, "fig", "fp1").unwrap();
        assert!(store.is_empty());
        store.record(point("a", 1.0)).unwrap();
        store.record(point("b", 2.0)).unwrap();
        drop(store);

        let store = ResultStore::open(&dir, "fig", "fp1").unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.completed("a").unwrap().x, 1.0);
        assert_eq!(store.completed("b").unwrap().estimates[0].n, 2000);
        assert!(store.completed("c").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_discards() {
        let dir = tmp_dir("mismatch");
        let mut store = ResultStore::open(&dir, "fig", "fp1").unwrap();
        store.record(point("a", 1.0)).unwrap();
        drop(store);

        let store = ResultStore::open(&dir, "fig", "fp2").unwrap();
        assert!(store.is_empty(), "stale results must not be resumed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rerecording_a_key_replaces() {
        let dir = tmp_dir("replace");
        let mut store = ResultStore::open(&dir, "fig", "fp").unwrap();
        store.record(point("a", 1.0)).unwrap();
        store.record(point("a", 5.0)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.completed("a").unwrap().x, 5.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_starts_empty() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("fig.json"), "{ not json").unwrap();
        let store = ResultStore::open(&dir, "fig", "fp").unwrap();
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn estimates_round_trip_exactly() {
        let dir = tmp_dir("exact");
        let mut p = point("a", 0.1);
        p.estimates[0].mean = 1.0 / 3.0;
        p.estimates[0].half_width = 2f64.powi(-45);
        let mut store = ResultStore::open(&dir, "fig", "fp").unwrap();
        store.record(p.clone()).unwrap();
        drop(store);
        let store = ResultStore::open(&dir, "fig", "fp").unwrap();
        assert_eq!(store.completed("a").unwrap(), &p);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint(&["a", "b"]), fingerprint(&["a", "b"]));
        assert_ne!(fingerprint(&["a", "b"]), fingerprint(&["ab"]));
        assert_ne!(fingerprint(&["a"]), fingerprint(&["b"]));
        assert_eq!(fingerprint(&[]).len(), 16);
    }

    #[test]
    fn fingerprint_iter_matches_slice_form() {
        let owned: Vec<String> = vec!["a".into(), "b".into()];
        assert_eq!(
            fingerprint_iter(owned.iter().map(String::as_str)),
            fingerprint(&["a", "b"])
        );
        // Appending no extra parts is the identity on the fingerprint.
        let extra: Vec<String> = Vec::new();
        assert_eq!(
            fingerprint_iter(
                ["a", "b"]
                    .into_iter()
                    .chain(extra.iter().map(String::as_str))
            ),
            fingerprint(&["a", "b"])
        );
        // A non-empty extra part changes it.
        assert_ne!(
            fingerprint_iter(["a", "b", "scn=123"].into_iter()),
            fingerprint(&["a", "b"])
        );
    }
}

//! Sweep orchestration: run figure sweeps point by point with progress
//! reporting and optional checkpoint/resume through a [`ResultStore`].
//!
//! A sweep is a flat list of [`PointSpec`]s (one per series × x-value).
//! [`SweepRunner::run`] walks them in order; for each point it either
//! loads a completed result from the store (resume) or invokes the
//! caller's simulation closure, records the result, and reports it. The
//! store is rewritten after every point, so an interrupted run restarts
//! at the first incomplete point.

use crate::progress::Progress;
use crate::store::{ResultStore, StoredEstimate, StoredPoint};
use std::io;

/// One point of a sweep, before it has been run.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Stable identifier within the sweep; resume matches on this, so it
    /// must encode everything that distinguishes the point (index, series,
    /// x-value).
    pub key: String,
    /// Human-readable label for progress lines.
    pub label: String,
    /// X-axis value.
    pub x: f64,
    /// Series the point belongs to.
    pub series: String,
}

impl PointSpec {
    /// Builds a spec with the conventional key `"{index}|{series}|x={x}"`
    /// and the label `"{series}, x = {x}"`.
    pub fn new(index: usize, series: &str, x: f64) -> Self {
        PointSpec {
            key: format!("{index}|{series}|x={x}"),
            label: format!("{series}, x = {x}"),
            x,
            series: series.to_owned(),
        }
    }
}

/// Executes sweep points in order, with resume and progress reporting.
pub struct SweepRunner<'a> {
    progress: &'a dyn Progress,
    store: Option<ResultStore>,
}

impl<'a> SweepRunner<'a> {
    /// A runner without persistence: every point is simulated.
    pub fn new(progress: &'a dyn Progress) -> Self {
        SweepRunner {
            progress,
            store: None,
        }
    }

    /// A runner that records into (and resumes from) `store`.
    pub fn with_store(progress: &'a dyn Progress, store: ResultStore) -> Self {
        SweepRunner {
            progress,
            store: Some(store),
        }
    }

    /// Runs the sweep. `simulate` is called for each point not already in
    /// the store and returns the point's estimates; completed points are
    /// returned in the order of `points`.
    ///
    /// # Errors
    ///
    /// Propagates result-store write failures and simulation errors (the
    /// sweep stops at the failing point; everything recorded so far stays
    /// in the store, so a rerun resumes there).
    pub fn run<F>(&mut self, points: &[PointSpec], mut simulate: F) -> io::Result<Vec<StoredPoint>>
    where
        F: FnMut(&PointSpec, usize) -> io::Result<Vec<StoredEstimate>>,
    {
        let total = points.len();
        let mut out = Vec::with_capacity(total);
        for (i, spec) in points.iter().enumerate() {
            if let Some(store) = &self.store {
                if let Some(done) = store.completed(&spec.key) {
                    let done = done.clone();
                    self.progress
                        .on_point_done(i, total, &spec.label, &done.estimates, true);
                    out.push(done);
                    continue;
                }
            }
            self.progress.on_point_start(i, total, &spec.label);
            let estimates = simulate(spec, i)?;
            let point = StoredPoint {
                key: spec.key.clone(),
                x: spec.x,
                series: spec.series.clone(),
                estimates,
            };
            if let Some(store) = &mut self.store {
                store.record(point.clone())?;
            }
            self.progress
                .on_point_done(i, total, &spec.label, &point.estimates, false);
            out.push(point);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullProgress;
    use crate::store::fingerprint;
    use std::path::PathBuf;

    fn est(mean: f64) -> StoredEstimate {
        StoredEstimate {
            name: "m".to_owned(),
            mean,
            half_width: 0.0,
            n: 1,
            min: mean,
            max: mean,
        }
    }

    fn specs() -> Vec<PointSpec> {
        vec![
            PointSpec::new(0, "s", 1.0),
            PointSpec::new(1, "s", 2.0),
            PointSpec::new(2, "t", 1.0),
        ]
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("itua-runner-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn point_spec_key_distinguishes_points() {
        let keys: Vec<String> = specs().into_iter().map(|p| p.key).collect();
        assert_eq!(keys.len(), 3);
        assert!(keys
            .iter()
            .all(|k| keys.iter().filter(|o| *o == k).count() == 1));
    }

    #[test]
    fn runs_all_points_without_store() {
        let mut runner = SweepRunner::new(&NullProgress);
        let points = runner
            .run(&specs(), |spec, i| {
                assert_eq!(spec, &specs()[i]);
                Ok(vec![est(spec.x * 10.0)])
            })
            .unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[1].estimates[0].mean, 20.0);
        assert_eq!(points[2].series, "t");
    }

    #[test]
    fn resumes_completed_points_from_store() {
        let dir = tmp_dir("resume");
        let fp = fingerprint(&["test"]);

        let store = ResultStore::open(&dir, "sweep", &fp).unwrap();
        let mut runner = SweepRunner::with_store(&NullProgress, store);
        let mut calls = 0;
        let first = runner
            .run(&specs(), |spec, _| {
                calls += 1;
                Ok(vec![est(spec.x)])
            })
            .unwrap();
        assert_eq!(calls, 3);

        // Second run: everything comes from the store, nothing simulates.
        let store = ResultStore::open(&dir, "sweep", &fp).unwrap();
        assert_eq!(store.len(), 3);
        let mut runner = SweepRunner::with_store(&NullProgress, store);
        let mut calls = 0;
        let second = runner
            .run(&specs(), |spec, _| {
                calls += 1;
                Ok(vec![est(spec.x)])
            })
            .unwrap();
        assert_eq!(calls, 0, "completed points must not re-simulate");
        assert_eq!(second, first);

        // Changed fingerprint: the store is discarded and all points rerun.
        let store = ResultStore::open(&dir, "sweep", &fingerprint(&["other"])).unwrap();
        assert!(store.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_store_restarts_at_first_incomplete_point() {
        let dir = tmp_dir("partial");
        let fp = fingerprint(&["test"]);

        // Simulate an interrupted run: only the first point completed.
        let store = ResultStore::open(&dir, "sweep", &fp).unwrap();
        let mut runner = SweepRunner::with_store(&NullProgress, store);
        let all = specs();
        runner
            .run(&all[..1], |spec, _| Ok(vec![est(spec.x)]))
            .unwrap();

        let store = ResultStore::open(&dir, "sweep", &fp).unwrap();
        let mut runner = SweepRunner::with_store(&NullProgress, store);
        let mut simulated = Vec::new();
        let points = runner
            .run(&all, |spec, _| {
                simulated.push(spec.key.clone());
                Ok(vec![est(spec.x)])
            })
            .unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(simulated, vec![all[1].key.clone(), all[2].key.clone()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Dependency-free JSON reading and writing for the result store.
//!
//! The build environment has no access to serde, and the store's needs
//! are modest: a tree value type, a writer that round-trips `f64`s
//! losslessly (Rust's shortest-representation `{:?}` formatting), and a
//! strict recursive-descent parser. Non-finite numbers serialize as
//! `null`, matching `JSON.stringify`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing characters after document",
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest round-trip representation.
                    let s = format!("{x:?}");
                    f.write_str(&s)
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, message: &'static str) -> JsonError {
    JsonError {
        offset: pos,
        message,
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by the store's own
                        // output; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "unsupported \\u escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| err(*pos, "bad UTF-8"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| err(*pos, "unterminated string"))?;
                if (c as u32) < 0x20 {
                    return Err(err(*pos, "raw control character in string"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("fig \"3\"\n".into())),
            ("x".into(), Json::Num(0.1)),
            ("n".into(), Json::Num(12345678901.0)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(-1.5e-9), Json::Str("µ".into())]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_round_trip_is_lossless() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e308,
            -0.0,
            2f64.powi(-40),
        ] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"s\":\"x\",\"n\":3,\"b\":false}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn escape_sequences_parse() {
        let v = Json::parse(r#""a\\b\"c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\\b\"c\nd\u{41}"));
    }
}

//! Property tests: for arbitrary small SAN models and experiment
//! configurations, the engine must produce the same estimates — bit for
//! bit — for every thread count and chunk size, with scratch state reused
//! across replications on each worker.

use itua_runner::engine::RunnerConfig;
use itua_runner::experiment::run_experiment_parallel;
use itua_runner::experiment::ExperimentConfig;
use itua_runner::progress::NullProgress;
use itua_san::model::SanBuilder;
use itua_san::reward::{EverTrue, RewardVariable, TimeAveraged};
use itua_san::simulator::SanSimulator;
use proptest::prelude::*;

/// Builds a tandem chain of `stages + 1` places where tokens flow forward
/// at the given rates and flow back from the last stage to the first, so
/// the model never deadlocks and every run exercises the full horizon.
fn tandem_chain(stages: usize, rates: &[f64], tokens: i32) -> SanSimulator {
    let mut b = SanBuilder::new("tandem");
    let places: Vec<_> = (0..=stages)
        .map(|i| b.place(format!("p{i}"), if i == 0 { tokens } else { 0 }))
        .collect();
    for i in 0..stages {
        b.timed_activity(format!("fwd{i}"), rates[i % rates.len()])
            .input_arc(places[i], 1)
            .output_arc(places[i + 1], 1)
            .build()
            .unwrap();
    }
    b.timed_activity("back", rates[stages % rates.len()])
        .input_arc(places[stages], 1)
        .output_arc(places[0], 1)
        .build()
        .unwrap();
    SanSimulator::new(b.finish().unwrap())
}

proptest! {
    #[test]
    fn parallel_experiment_is_thread_count_invariant(
        stages in 1usize..4,
        rate_a in 0.2f64..8.0,
        rate_b in 0.2f64..8.0,
        tokens in 1i32..3,
        replications in 1u32..40,
        horizon in 1.0f64..12.0,
        base_seed in proptest::prelude::any::<u64>(),
        chunk_size in 1u32..9,
    ) {
        let sim = tandem_chain(stages, &[rate_a, rate_b], tokens);
        let last = sim.san().place_id(&format!("p{stages}")).unwrap();
        let cfg = ExperimentConfig {
            horizon,
            replications,
            base_seed,
            confidence: 0.95,
        };
        let make = || {
            vec![
                Box::new(TimeAveraged::new("occupancy", move |m| m.get(last) as f64))
                    as Box<dyn RewardVariable>,
                Box::new(EverTrue::new("reached", move |m| m.get(last) as f64)),
            ]
        };

        let reference =
            run_experiment_parallel(&sim, cfg, &RunnerConfig::serial(), &NullProgress, make)
                .unwrap();

        for threads in [1usize, 2, 4, 8] {
            let rc = RunnerConfig { threads, chunk_size, ..Default::default() };
            let parallel =
                run_experiment_parallel(&sim, cfg, &rc, &NullProgress, make).unwrap();
            prop_assert_eq!(
                &parallel,
                &reference,
                "threads={} chunk_size={}",
                threads,
                chunk_size
            );
        }
    }
}

//! Figure 3 (§4.1): different distributions of 12 hosts into domains.
//!
//! 12 hosts are split into 12, 6, 4, 3, 2, or 1 domains (x-axis: hosts per
//! domain = 1, 2, 3, 4, 6, 12) for 2, 4, 6, and 8 applications of 7
//! replicas each. Four panels over the first 5 hours:
//!
//! * (a) unavailability,
//! * (b) unreliability,
//! * (c) fraction of corrupt hosts in an excluded domain,
//! * (d) fraction of domains excluded at t = 5.

use crate::study::Study;
use crate::sweep::{FigureResult, Panel, RunOpts, Series, SweepConfig, SweepPoint};
use itua_core::measures::names;
use itua_core::params::Params;
use std::io;

/// Total hosts in the study.
pub const TOTAL_HOSTS: usize = 12;
/// Hosts-per-domain values on the x-axis.
pub const HOSTS_PER_DOMAIN: [usize; 6] = [1, 2, 3, 4, 6, 12];
/// Application counts (one series each).
pub const APP_COUNTS: [usize; 4] = [2, 4, 6, 8];
/// Replicas per application.
pub const REPS_PER_APP: usize = 7;
/// Study horizon (hours).
pub const HORIZON: f64 = 5.0;

/// The sweep points of the study.
pub fn points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for &apps in &APP_COUNTS {
        for &hpd in &HOSTS_PER_DOMAIN {
            let domains = TOTAL_HOSTS / hpd;
            pts.push(SweepPoint {
                x: hpd as f64,
                series: format!("{apps} applications"),
                params: Params::default()
                    .with_domains(domains, hpd)
                    .with_applications(apps, REPS_PER_APP),
                horizon: HORIZON,
                sample_times: vec![HORIZON],
            });
        }
    }
    pts
}

/// Total hosts in the analytic (exact CTMC) variant of the study.
pub const MICRO_TOTAL_HOSTS: usize = 2;

/// The sweep points of the exact-solution variant: 2 hosts split into 2
/// or 1 domains, for 1 application of 2 replicas and 2 applications of 1
/// replica. Figure-3-shaped in every way — same measures, same horizon,
/// same x-axis meaning — but small enough for the analytic backend to
/// flatten into a tangible CTMC (tens of thousands of states) and solve
/// exactly. The full 12-host study is far beyond any exact solver; that
/// is what the simulation backends are for.
pub fn micro_points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for (apps, reps) in [(1, 2), (2, 1)] {
        for hpd in [1, 2] {
            let domains = MICRO_TOTAL_HOSTS / hpd;
            pts.push(SweepPoint {
                x: hpd as f64,
                series: format!("{apps} application{}", if apps == 1 { "" } else { "s" }),
                params: Params::default()
                    .with_domains(domains, hpd)
                    .with_applications(apps, reps),
                horizon: HORIZON,
                sample_times: vec![HORIZON],
            });
        }
    }
    pts
}

/// The declarative descriptor of this study; the scenario registry and
/// the `figure3` binary both run through it.
pub const STUDY: Study = Study {
    id: "figure3",
    description: "Figure 3 (§4.1): distributions of 12 hosts into domains",
    points,
    micro_points: Some(micro_points),
    measures,
    render,
};

/// The measure keys the study extracts.
pub fn measures() -> Vec<String> {
    vec![
        names::UNAVAILABILITY.to_owned(),
        names::UNRELIABILITY.to_owned(),
        names::FRAC_CORRUPT_AT_EXCLUSION.to_owned(),
        format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, HORIZON),
    ]
}

/// Runs the full study.
pub fn run(cfg: &SweepConfig) -> FigureResult {
    STUDY.run(cfg)
}

/// Runs the study with explicit execution options (threads, progress,
/// resumable result store under sweep id `"figure3"`).
///
/// The simulation backends run the paper's 12-host [`points`]; the
/// analytic backend runs the exact-solvable [`micro_points`] instead
/// (its store id is `figure3-analytic`, so the two never mix).
///
/// # Errors
///
/// Propagates backend failures and result-store write errors.
pub fn run_with(cfg: &SweepConfig, opts: &RunOpts<'_>) -> io::Result<FigureResult> {
    STUDY.run_with(cfg, opts)
}

/// Renders the extracted series as the figure's four panels.
pub fn render(all: &[Series]) -> FigureResult {
    let excluded_at_5 = format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, HORIZON);
    let take = |measure: &str| -> Vec<Series> {
        all.iter()
            .filter(|s| s.measure == measure)
            .cloned()
            .collect()
    };
    FigureResult {
        id: "Figure 3".into(),
        title: "Variations in measures for different distributions of 12 hosts (first 5 hours)"
            .into(),
        x_label: "Hosts per domain".into(),
        panels: vec![
            Panel {
                id: "3a".into(),
                title: "Unavailability for first 5 time units".into(),
                series: take(names::UNAVAILABILITY),
            },
            Panel {
                id: "3b".into(),
                title: "Unreliability for first 5 time units".into(),
                series: take(names::UNRELIABILITY),
            },
            Panel {
                id: "3c".into(),
                title: "Fraction of corrupt hosts in an excluded domain".into(),
                series: take(names::FRAC_CORRUPT_AT_EXCLUSION),
            },
            Panel {
                id: "3d".into(),
                title: "Fraction of domains excluded at 5 time units".into(),
                series: take(&excluded_at_5),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_has_24_points() {
        let pts = points();
        assert_eq!(pts.len(), 24);
        for p in &pts {
            // Constant total hosts.
            assert_eq!(p.params.total_hosts(), TOTAL_HOSTS);
            p.params.validate().unwrap();
        }
    }

    #[test]
    fn micro_study_has_4_points() {
        let pts = micro_points();
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert_eq!(p.params.total_hosts(), MICRO_TOTAL_HOSTS);
            p.params.validate().unwrap();
        }
        let series: Vec<&str> = pts.iter().map(|p| p.series.as_str()).collect();
        assert!(series.contains(&"1 application"));
        assert!(series.contains(&"2 applications"));
    }

    #[test]
    fn x_axis_is_hosts_per_domain() {
        let xs: Vec<f64> = points()
            .iter()
            .filter(|p| p.series == "2 applications")
            .map(|p| p.x)
            .collect();
        assert_eq!(xs, vec![1.0, 2.0, 3.0, 4.0, 6.0, 12.0]);
    }

    #[test]
    fn small_run_produces_all_panels() {
        let cfg = SweepConfig {
            replications: 5,
            ..Default::default()
        };
        let fig = run(&cfg);
        assert_eq!(fig.panels.len(), 4);
        // Panels (a), (b), (d) have one series per app count; (c) may drop
        // series that never observed an exclusion with so few reps.
        assert_eq!(fig.panels[0].series.len(), APP_COUNTS.len());
        assert_eq!(fig.panels[1].series.len(), APP_COUNTS.len());
        assert_eq!(fig.panels[3].series.len(), APP_COUNTS.len());
    }
}

//! Generic sweep machinery: run the ITUA model over a list of parameter
//! points and aggregate measures with confidence intervals.

use itua_core::des::ItuaDes;
use itua_core::measures::MeasureSet;
use itua_core::params::Params;
use serde::{Deserialize, Serialize};

/// How much simulation to spend per sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Independent replications per point.
    pub replications: u32,
    /// Base seed; replication `i` of point `j` uses
    /// `base_seed + j * 1_000_003 + i`.
    pub base_seed: u64,
    /// Confidence level for the reported intervals.
    pub confidence: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            replications: 2000,
            base_seed: 20030622, // DSN 2003 😉 — any constant works
            confidence: 0.95,
        }
    }
}

/// One point of a sweep: an x-coordinate and the parameters to run there.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// X-axis value (e.g. hosts per domain, spread rate).
    pub x: f64,
    /// Which series this point belongs to (e.g. "4 applications").
    pub series: String,
    /// Model parameters for this point.
    pub params: Params,
    /// Simulation horizon.
    pub horizon: f64,
    /// Instant-of-time sample points.
    pub sample_times: Vec<f64>,
}

/// A single estimated value with its confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueCi {
    /// Point estimate.
    pub mean: f64,
    /// Confidence half-width (0 when degenerate).
    pub half_width: f64,
}

/// A named series of `(x, value)` points, one per sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label, e.g. `"4 applications"` or `"Host exclusion"`.
    pub name: String,
    /// Measure this series reports (a key from
    /// [`itua_core::measures::names`], possibly with an `@t` suffix).
    pub measure: String,
    /// `(x, estimate)` pairs in x order.
    pub points: Vec<(f64, ValueCi)>,
}

/// All the series of one figure panel (or one whole figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Figure identifier, e.g. `"Figure 3"`.
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Panels: `(panel id, panel title, series)`.
    pub panels: Vec<Panel>,
}

/// One panel (subfigure) of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    /// Panel id, e.g. `"3a"`.
    pub id: String,
    /// Panel title, e.g. `"Unavailability for first 5 hours"`.
    pub title: String,
    /// The series plotted in this panel.
    pub series: Vec<Series>,
}

/// Runs the model at one sweep point and returns the aggregated measures.
pub fn run_point(point: &SweepPoint, cfg: &SweepConfig, point_index: usize) -> MeasureSet {
    let des = ItuaDes::new(point.params.clone()).expect("sweep point parameters are valid");
    let mut ms = MeasureSet::new(cfg.confidence);
    for rep in 0..cfg.replications {
        let seed = cfg
            .base_seed
            .wrapping_add(point_index as u64 * 1_000_003)
            .wrapping_add(rep as u64);
        let out = des.run(seed, point.horizon, &point.sample_times);
        ms.record(&out);
    }
    ms
}

/// Runs every sweep point and extracts, per `(series, measure)` pair, the
/// x-ordered estimates. `measures` lists the measure keys to extract.
pub fn run_sweep(
    points: &[SweepPoint],
    cfg: &SweepConfig,
    measures: &[&str],
) -> Vec<Series> {
    let mut series: Vec<Series> = Vec::new();
    for (j, point) in points.iter().enumerate() {
        let ms = run_point(point, cfg, j);
        for &measure in measures {
            let value = ms.mean(measure).map(|mean| {
                let hw = ms
                    .estimates()
                    .into_iter()
                    .find(|e| e.name == measure)
                    .map(|e| e.ci.half_width)
                    .unwrap_or(0.0);
                ValueCi {
                    mean,
                    half_width: hw,
                }
            });
            let Some(value) = value else { continue };
            match series
                .iter_mut()
                .find(|s| s.name == point.series && s.measure == measure)
            {
                Some(s) => s.points.push((point.x, value)),
                None => series.push(Series {
                    name: point.series.clone(),
                    measure: measure.to_owned(),
                    points: vec![(point.x, value)],
                }),
            }
        }
    }
    for s in &mut series {
        s.points
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("x values are not NaN"));
    }
    series
}

/// Selects the series of one measure out of a mixed collection.
pub fn series_for<'a>(all: &'a [Series], measure: &str) -> Vec<&'a Series> {
    all.iter().filter(|s| s.measure == measure).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use itua_core::measures::names;

    fn tiny_point(x: f64, series: &str) -> SweepPoint {
        SweepPoint {
            x,
            series: series.to_owned(),
            params: Params::default().with_domains(3, 1).with_applications(1, 3),
            horizon: 2.0,
            sample_times: vec![2.0],
        }
    }

    #[test]
    fn run_point_produces_measures() {
        let cfg = SweepConfig {
            replications: 20,
            ..Default::default()
        };
        let ms = run_point(&tiny_point(1.0, "s"), &cfg, 0);
        assert!(ms.mean(names::UNAVAILABILITY).is_some());
        assert!(ms.mean(names::UNRELIABILITY).is_some());
    }

    #[test]
    fn run_sweep_collects_ordered_series() {
        let cfg = SweepConfig {
            replications: 10,
            ..Default::default()
        };
        let points = vec![tiny_point(2.0, "a"), tiny_point(1.0, "a"), tiny_point(1.0, "b")];
        let series = run_sweep(&points, &cfg, &[names::UNAVAILABILITY]);
        assert_eq!(series.len(), 2);
        let a = series.iter().find(|s| s.name == "a").unwrap();
        assert_eq!(a.points.len(), 2);
        assert!(a.points[0].0 < a.points[1].0, "points must be x-sorted");
    }

    #[test]
    fn sweep_is_reproducible() {
        let cfg = SweepConfig {
            replications: 15,
            ..Default::default()
        };
        let points = vec![tiny_point(1.0, "a")];
        let s1 = run_sweep(&points, &cfg, &[names::UNAVAILABILITY]);
        let s2 = run_sweep(&points, &cfg, &[names::UNAVAILABILITY]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn series_for_filters_by_measure() {
        let all = vec![
            Series {
                name: "a".into(),
                measure: "m1".into(),
                points: vec![],
            },
            Series {
                name: "a".into(),
                measure: "m2".into(),
                points: vec![],
            },
        ];
        assert_eq!(series_for(&all, "m1").len(), 1);
        assert_eq!(series_for(&all, "nope").len(), 0);
    }
}

//! Generic sweep machinery: run the ITUA model over a list of parameter
//! points and aggregate measures with confidence intervals.
//!
//! Execution goes through [`itua_runner`]: each point builds an
//! [`ItuaBackend`] (DES or composed SAN — see [`RunOpts::backend`]) and
//! hands it to [`itua_runner::run_measures`], which spreads the
//! replications over the [`RunnerConfig`]'s worker threads with one
//! reusable scratch state per thread (bit-identical results for every
//! thread count). [`run_sweep_stored`] adds progress reporting plus
//! checkpoint/resume through a JSON result store.

use itua_core::measures::MeasureSet;
use itua_core::params::Params;
use itua_rare::SplitSpec;
use itua_runner::backend::{
    run_measures_checked, BackendError, BackendKind, BackendOptions, ItuaBackend, ModelCheck,
};
use itua_runner::engine::RunnerConfig;
use itua_runner::progress::{NullProgress, Progress};
use itua_runner::split::run_measures_split;
use itua_runner::store::{fingerprint_iter, ResultStore, StoredEstimate, StoredPoint};
use itua_runner::sweep::{PointSpec, SweepRunner};
use itua_sim::rng::stream_seed;
use std::io;
use std::path::PathBuf;

/// How much simulation to spend per sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Independent replications per point.
    pub replications: u32,
    /// Base seed. Point `j` gets its own stream origin
    /// `stream_seed(base_seed, j)`, and replication `i` of that point runs
    /// with `stream_seed(origin, i)` — so no two (point, replication)
    /// pairs share a seed, and nearby base seeds yield disjoint streams
    /// (the pre-runner `base_seed + j·1_000_003 + i` scheme overlapped).
    pub base_seed: u64,
    /// Confidence level for the reported intervals.
    pub confidence: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            replications: 2000,
            base_seed: 20030622, // DSN 2003 😉 — any constant works
            confidence: 0.95,
        }
    }
}

/// One point of a sweep: an x-coordinate and the parameters to run there.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// X-axis value (e.g. hosts per domain, spread rate).
    pub x: f64,
    /// Which series this point belongs to (e.g. "4 applications").
    pub series: String,
    /// Model parameters for this point.
    pub params: Params,
    /// Simulation horizon.
    pub horizon: f64,
    /// Instant-of-time sample points.
    pub sample_times: Vec<f64>,
}

/// A single estimated value with its confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueCi {
    /// Point estimate.
    pub mean: f64,
    /// Confidence half-width (0 when degenerate).
    pub half_width: f64,
}

/// A named series of `(x, value)` points, one per sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label, e.g. `"4 applications"` or `"Host exclusion"`.
    pub name: String,
    /// Measure this series reports (a key from
    /// [`itua_core::measures::names`], possibly with an `@t` suffix).
    pub measure: String,
    /// `(x, estimate)` pairs in x order.
    pub points: Vec<(f64, ValueCi)>,
}

/// All the series of one figure panel (or one whole figure).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Figure identifier, e.g. `"Figure 3"`.
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Panels: `(panel id, panel title, series)`.
    pub panels: Vec<Panel>,
}

/// One panel (subfigure) of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Panel id, e.g. `"3a"`.
    pub id: String,
    /// Panel title, e.g. `"Unavailability for first 5 hours"`.
    pub title: String,
    /// The series plotted in this panel.
    pub series: Vec<Series>,
}

/// Execution options for a sweep: backend, threading, progress,
/// persistence.
pub struct RunOpts<'a> {
    /// Which encoding of the ITUA process runs each point: the direct
    /// discrete-event simulator ([`BackendKind::Des`], the default), the
    /// composed stochastic activity network ([`BackendKind::San`]), or
    /// the exact CTMC solver ([`BackendKind::Analytic`], small
    /// configurations only). All run through the same pipeline and
    /// report the same stored shape (the analytic backend omits the
    /// event-conditioned measures and reports zero half-widths).
    pub backend: BackendKind,
    /// Construction options for the backend. The analytic state bound
    /// and thread count stay out of the sweep fingerprint (they never
    /// change results, only whether a configuration is accepted and how
    /// fast it solves); `analytic_lump` *is* fingerprinted — the exact
    /// symmetry quotient is a different chain, so lumped and unlumped
    /// analytic runs checkpoint separately, and unlumped stores stay
    /// byte-identical to the pre-lumping scheme.
    pub backend_opts: BackendOptions,
    /// How to spread replications over worker threads. The default (auto
    /// thread count) produces exactly the same estimates as
    /// [`RunnerConfig::serial`].
    pub runner: RunnerConfig,
    /// Progress observer (e.g. [`itua_runner::ConsoleProgress`]).
    pub progress: &'a dyn Progress,
    /// Directory for the JSON result store. `Some(dir)` makes the sweep
    /// resumable: completed points are loaded from
    /// `dir/<store id>.json` instead of re-run (the store id is
    /// `<sweep_id>` for the DES backend and `<sweep_id>-san` /
    /// `<sweep_id>-analytic` for the others, so backends never clobber
    /// each other). `None` disables persistence.
    pub results_dir: Option<PathBuf>,
    /// Whether each point's model is structurally verified before
    /// simulation ([`ModelCheck::Quick`], the default) or not
    /// (`--no-check`). The check only gates: it never changes estimates.
    pub check: ModelCheck,
    /// RESTART importance-splitting thresholds (`--split-levels`). `Some`
    /// routes every point through
    /// [`itua_runner::split::run_measures_split`] instead of the plain
    /// replication loop, checkpoints into a separate `-split` store, and
    /// enters the sweep fingerprint (the splitting configuration changes
    /// the sampling scheme, though never the estimand). The analytic
    /// backend ignores the spec — it stays the exact oracle.
    pub split: Option<SplitSpec>,
    /// Extra identity parts folded into the store fingerprint *after* the
    /// configuration and point parts. The scenario layer uses this to key
    /// `results/` stores by scenario identity: a user-authored `.scn`
    /// scenario contributes its normalized content hash, so editing the
    /// file invalidates the store instead of silently resuming stale
    /// points. Empty (the default, and what every built-in study passes)
    /// leaves the fingerprint bit-identical to the pre-scenario scheme.
    pub fingerprint_extra: Vec<String>,
}

impl Default for RunOpts<'static> {
    fn default() -> Self {
        RunOpts {
            backend: BackendKind::Des,
            backend_opts: BackendOptions::default(),
            runner: RunnerConfig::default(),
            progress: &NullProgress,
            results_dir: None,
            check: ModelCheck::default(),
            split: None,
            fingerprint_extra: Vec::new(),
        }
    }
}

/// Runs the chosen backend at one sweep point and returns the aggregated
/// measures.
///
/// Replication `i` uses `stream_seed(stream_seed(cfg.base_seed,
/// point_index), i)`; replications are spread over the runner's threads
/// (one reusable scratch state per thread) and recorded in replication
/// order, so the result does not depend on the thread count.
///
/// # Errors
///
/// Fails when the backend cannot be built for the point's parameters or
/// a replication errors (SAN simulation errors surface here; the DES
/// cannot fail at run time).
#[allow(clippy::too_many_arguments)]
pub fn run_point_backend(
    point: &SweepPoint,
    cfg: &SweepConfig,
    point_index: usize,
    backend: BackendKind,
    backend_opts: &BackendOptions,
    runner: &RunnerConfig,
    progress: &dyn Progress,
    check: ModelCheck,
) -> Result<MeasureSet, BackendError> {
    run_point_backend_split(
        point,
        cfg,
        point_index,
        backend,
        backend_opts,
        runner,
        progress,
        check,
        None,
    )
}

/// [`run_point_backend`] with an optional RESTART splitting
/// specification: `Some(spec)` runs one importance-splitting tree per
/// replication (see [`itua_runner::split::run_measures_split`]) instead
/// of one plain trajectory. `None` — and `Some` of an empty spec, bit
/// for bit — reproduces the plain path.
///
/// # Errors
///
/// As [`run_point_backend`].
#[allow(clippy::too_many_arguments)]
pub fn run_point_backend_split(
    point: &SweepPoint,
    cfg: &SweepConfig,
    point_index: usize,
    backend: BackendKind,
    backend_opts: &BackendOptions,
    runner: &RunnerConfig,
    progress: &dyn Progress,
    check: ModelCheck,
    split: Option<&SplitSpec>,
) -> Result<MeasureSet, BackendError> {
    let backend = ItuaBackend::for_params_with(backend, &point.params, backend_opts)?;
    let origin = stream_seed(cfg.base_seed, point_index as u64);
    match split {
        Some(spec) => run_measures_split(
            &backend,
            cfg.replications,
            cfg.confidence,
            origin,
            point.horizon,
            &point.sample_times,
            spec,
            runner,
            progress,
            check,
        )
        .map(|run| run.measures),
        None => run_measures_checked(
            &backend,
            cfg.replications,
            cfg.confidence,
            origin,
            point.horizon,
            &point.sample_times,
            runner,
            progress,
            check,
        ),
    }
}

/// [`run_point_backend`] with the DES backend, which cannot fail for
/// valid parameters.
pub fn run_point_with(
    point: &SweepPoint,
    cfg: &SweepConfig,
    point_index: usize,
    runner: &RunnerConfig,
    progress: &dyn Progress,
) -> MeasureSet {
    run_point_backend(
        point,
        cfg,
        point_index,
        BackendKind::Des,
        &BackendOptions::default(),
        runner,
        progress,
        ModelCheck::Quick,
    )
    .expect("sweep point parameters are valid")
}

/// [`run_point_with`] on auto-configured threads, without progress output.
pub fn run_point(point: &SweepPoint, cfg: &SweepConfig, point_index: usize) -> MeasureSet {
    run_point_with(
        point,
        cfg,
        point_index,
        &RunnerConfig::default(),
        &NullProgress,
    )
}

/// Runs every sweep point and extracts, per `(series, measure)` pair, the
/// x-ordered estimates. `measures` lists the measure keys to extract.
pub fn run_sweep(points: &[SweepPoint], cfg: &SweepConfig, measures: &[&str]) -> Vec<Series> {
    run_sweep_stored("adhoc", points, cfg, measures, &RunOpts::default())
        .expect("storeless DES sweep cannot fail")
}

/// Like [`run_sweep`], but with explicit execution options and — when
/// `opts.results_dir` is set — checkpoint/resume: after every point the
/// store `<results_dir>/<store id>.json` is rewritten, and a rerun with
/// the same configuration restarts at the first incomplete point. A
/// changed configuration (backend, replications, seed, confidence, or
/// any point) invalidates the store via its fingerprint.
///
/// An unusable results directory is not fatal: the sweep warns on
/// stderr and runs without checkpoint/resume.
///
/// # Errors
///
/// Propagates backend failures and result-store write errors from the
/// runner layer; points completed before the failure stay in the store,
/// so a rerun resumes after them.
pub fn run_sweep_stored(
    sweep_id: &str,
    points: &[SweepPoint],
    cfg: &SweepConfig,
    measures: &[&str],
    opts: &RunOpts<'_>,
) -> io::Result<Vec<Series>> {
    let specs: Vec<PointSpec> = points
        .iter()
        .enumerate()
        .map(|(i, p)| PointSpec::new(i, &p.series, p.x))
        .collect();
    let store_id = store_id(sweep_id, opts.backend, opts.split.as_ref());
    let store = opts.results_dir.as_ref().and_then(|dir| {
        match ResultStore::open(
            dir,
            &store_id,
            &sweep_fingerprint(
                points,
                cfg,
                opts.backend,
                opts.split.as_ref(),
                opts.backend == BackendKind::Analytic && opts.backend_opts.analytic_lump,
                &opts.fingerprint_extra,
            ),
        ) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!(
                    "warning: result store {} in {} is unavailable ({e}); \
                     running without checkpoint/resume",
                    store_id,
                    dir.display()
                );
                None
            }
        }
    });
    let mut runner = match store {
        Some(store) => SweepRunner::with_store(opts.progress, store),
        None => SweepRunner::new(opts.progress),
    };
    let stored = runner.run(&specs, |_, i| {
        let ms = run_point_backend_split(
            &points[i],
            cfg,
            i,
            opts.backend,
            &opts.backend_opts,
            &opts.runner,
            opts.progress,
            opts.check,
            opts.split.as_ref(),
        )
        .map_err(io::Error::from)?;
        Ok(ms.estimates().iter().map(StoredEstimate::from).collect())
    })?;
    Ok(series_from(&stored, measures))
}

/// The result-store id for a sweep run with a given backend: DES keeps
/// the bare `sweep_id`, the others get a `-<backend>` suffix
/// (`-san` / `-analytic`), so backends checkpoint into separate files
/// and never clobber each other. A splitting run appends `-split` for
/// the same reason: its estimates come from a different sampling scheme
/// than the plain run's.
fn store_id(sweep_id: &str, backend: BackendKind, split: Option<&SplitSpec>) -> String {
    let base = match backend {
        BackendKind::Des => sweep_id.to_owned(),
        BackendKind::San | BackendKind::Analytic => format!("{sweep_id}-{backend}"),
    };
    match split {
        Some(_) => format!("{base}-split"),
        None => base,
    }
}

/// Fingerprints a sweep configuration for store invalidation. The
/// splitting spec and analytic lumping are part of the fingerprint (one
/// changes the sampling scheme, the other the chain being solved); the
/// thread/batch configuration is not (it never changes results). The
/// `lump=on` part is pushed only for lumped analytic runs, so every
/// pre-lumping store fingerprint is reproduced bit for bit.
/// Scenario-identity parts ([`RunOpts::fingerprint_extra`]) are appended
/// last, so an empty extra list reproduces the pre-scenario fingerprint
/// bit for bit.
fn sweep_fingerprint(
    points: &[SweepPoint],
    cfg: &SweepConfig,
    backend: BackendKind,
    split: Option<&SplitSpec>,
    lump: bool,
    extra: &[String],
) -> String {
    let mut parts: Vec<String> = vec![
        format!("backend={backend}"),
        format!("reps={}", cfg.replications),
        format!("seed={}", cfg.base_seed),
        format!("conf={}", cfg.confidence),
    ];
    if let Some(spec) = split {
        parts.push(format!("split={spec}"));
    }
    if lump {
        parts.push("lump=on".to_owned());
    }
    for p in points {
        parts.push(format!(
            "{}|x={}|h={}|t={:?}|{:?}",
            p.series, p.x, p.horizon, p.sample_times, p.params
        ));
    }
    fingerprint_iter(
        parts
            .iter()
            .map(String::as_str)
            .chain(extra.iter().map(String::as_str)),
    )
}

/// Extracts x-ordered per-`(series, measure)` estimates from stored points.
fn series_from(stored: &[StoredPoint], measures: &[&str]) -> Vec<Series> {
    let mut series: Vec<Series> = Vec::new();
    for point in stored {
        for &measure in measures {
            let Some(e) = point.estimate(measure) else {
                continue;
            };
            let value = ValueCi {
                mean: e.mean,
                half_width: e.half_width,
            };
            match series
                .iter_mut()
                .find(|s| s.name == point.series && s.measure == measure)
            {
                Some(s) => s.points.push((point.x, value)),
                None => series.push(Series {
                    name: point.series.clone(),
                    measure: measure.to_owned(),
                    points: vec![(point.x, value)],
                }),
            }
        }
    }
    for s in &mut series {
        s.points
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("x values are not NaN"));
    }
    series
}

/// Selects the series of one measure out of a mixed collection.
pub fn series_for<'a>(all: &'a [Series], measure: &str) -> Vec<&'a Series> {
    all.iter().filter(|s| s.measure == measure).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use itua_core::measures::names;

    fn tiny_point(x: f64, series: &str) -> SweepPoint {
        SweepPoint {
            x,
            series: series.to_owned(),
            params: Params::default().with_domains(3, 1).with_applications(1, 3),
            horizon: 2.0,
            sample_times: vec![2.0],
        }
    }

    #[test]
    fn fingerprint_records_lumping_without_disturbing_unlumped_ids() {
        let cfg = SweepConfig::default();
        let points = vec![tiny_point(1.0, "a")];
        let fp = |backend, lump| sweep_fingerprint(&points, &cfg, backend, None, lump, &[]);
        // The unlumped analytic fingerprint carries no lump part, so it
        // is byte-identical to the pre-lumping scheme; lumping changes
        // the chain and therefore the fingerprint.
        assert_ne!(
            fp(BackendKind::Analytic, false),
            fp(BackendKind::Analytic, true)
        );
        // Simulation backends never lump.
        assert_eq!(fp(BackendKind::Des, false), fp(BackendKind::Des, false));
    }

    #[test]
    fn run_point_produces_measures() {
        let cfg = SweepConfig {
            replications: 20,
            ..Default::default()
        };
        let ms = run_point(&tiny_point(1.0, "s"), &cfg, 0);
        assert!(ms.mean(names::UNAVAILABILITY).is_some());
        assert!(ms.mean(names::UNRELIABILITY).is_some());
    }

    #[test]
    fn run_sweep_collects_ordered_series() {
        let cfg = SweepConfig {
            replications: 10,
            ..Default::default()
        };
        let points = vec![
            tiny_point(2.0, "a"),
            tiny_point(1.0, "a"),
            tiny_point(1.0, "b"),
        ];
        let series = run_sweep(&points, &cfg, &[names::UNAVAILABILITY]);
        assert_eq!(series.len(), 2);
        let a = series.iter().find(|s| s.name == "a").unwrap();
        assert_eq!(a.points.len(), 2);
        assert!(a.points[0].0 < a.points[1].0, "points must be x-sorted");
    }

    #[test]
    fn sweep_is_reproducible() {
        let cfg = SweepConfig {
            replications: 15,
            ..Default::default()
        };
        let points = vec![tiny_point(1.0, "a")];
        let s1 = run_sweep(&points, &cfg, &[names::UNAVAILABILITY]);
        let s2 = run_sweep(&points, &cfg, &[names::UNAVAILABILITY]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn run_point_is_thread_count_invariant() {
        let cfg = SweepConfig {
            replications: 24,
            ..Default::default()
        };
        let point = tiny_point(1.0, "s");
        let serial =
            run_point_with(&point, &cfg, 3, &RunnerConfig::serial(), &NullProgress).estimates();
        for threads in [2, 4, 8] {
            let rc = RunnerConfig::default().with_threads(threads);
            let parallel = run_point_with(&point, &cfg, 3, &rc, &NullProgress).estimates();
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn stored_sweep_resumes_without_resimulating() {
        let cfg = SweepConfig {
            replications: 8,
            ..Default::default()
        };
        let dir =
            std::env::temp_dir().join(format!("itua-studies-sweep-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOpts {
            results_dir: Some(dir.clone()),
            ..Default::default()
        };
        let points = vec![tiny_point(1.0, "a"), tiny_point(2.0, "a")];
        let measures = [names::UNAVAILABILITY];

        let first = run_sweep_stored("t", &points, &cfg, &measures, &opts).unwrap();
        // Resumed run reads both points back from the store.
        let second = run_sweep_stored("t", &points, &cfg, &measures, &opts).unwrap();
        assert_eq!(second, first);
        // And matches the storeless path bit for bit.
        assert_eq!(run_sweep(&points, &cfg, &measures), first);

        // A changed configuration must not resume from the stale store.
        let cfg2 = SweepConfig {
            base_seed: cfg.base_seed + 1,
            ..cfg
        };
        let third = run_sweep_stored("t", &points, &cfg2, &measures, &opts).unwrap();
        assert_ne!(third, first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Records the `resumed` flag of every finished point.
    struct ResumeTracker(std::sync::Mutex<Vec<bool>>);

    impl Progress for ResumeTracker {
        fn on_point_done(
            &self,
            _index: usize,
            _total: usize,
            _label: &str,
            _estimates: &[itua_runner::store::StoredEstimate],
            resumed: bool,
        ) {
            self.0.lock().unwrap().push(resumed);
        }
    }

    #[test]
    fn store_resume_is_batch_size_invariant() {
        // The batch size is an amortisation knob, not part of the sweep
        // fingerprint: a store written at one batch size must be resumed
        // (not recomputed) at another, with identical results.
        let cfg = SweepConfig {
            replications: 8,
            ..Default::default()
        };
        let dir =
            std::env::temp_dir().join(format!("itua-studies-sweep-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let points = vec![tiny_point(1.0, "a"), tiny_point(2.0, "a")];
        let measures = [names::UNAVAILABILITY];

        let opts_batch4 = RunOpts {
            backend: BackendKind::San,
            runner: RunnerConfig::default().with_batch_size(4),
            results_dir: Some(dir.clone()),
            ..Default::default()
        };
        let first = run_sweep_stored("t", &points, &cfg, &measures, &opts_batch4).unwrap();

        let tracker = ResumeTracker(std::sync::Mutex::new(Vec::new()));
        let opts_batch32 = RunOpts {
            backend: BackendKind::San,
            runner: RunnerConfig::default().with_batch_size(32),
            progress: &tracker,
            results_dir: Some(dir.clone()),
            ..Default::default()
        };
        let second = run_sweep_stored("t", &points, &cfg, &measures, &opts_batch32).unwrap();
        assert_eq!(second, first);
        assert_eq!(
            *tracker.0.lock().unwrap(),
            vec![true, true],
            "a different batch size must resume every point from the store"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_extra_keys_the_store_by_scenario_identity() {
        let cfg = SweepConfig {
            replications: 6,
            ..Default::default()
        };
        let dir =
            std::env::temp_dir().join(format!("itua-studies-sweep-extra-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let points = vec![tiny_point(1.0, "a")];
        let measures = [names::UNAVAILABILITY];

        let opts_v1 = RunOpts {
            results_dir: Some(dir.clone()),
            fingerprint_extra: vec!["scn=v1".into()],
            ..Default::default()
        };
        let first = run_sweep_stored("t", &points, &cfg, &measures, &opts_v1).unwrap();

        // Same identity: the store resumes.
        let tracker = ResumeTracker(std::sync::Mutex::new(Vec::new()));
        let opts_same = RunOpts {
            results_dir: Some(dir.clone()),
            progress: &tracker,
            fingerprint_extra: vec!["scn=v1".into()],
            ..Default::default()
        };
        let second = run_sweep_stored("t", &points, &cfg, &measures, &opts_same).unwrap();
        assert_eq!(second, first);
        assert_eq!(*tracker.0.lock().unwrap(), vec![true]);

        // An edited scenario (different identity hash) must not resume
        // the stale store, even though the points are unchanged.
        let tracker = ResumeTracker(std::sync::Mutex::new(Vec::new()));
        let opts_v2 = RunOpts {
            results_dir: Some(dir.clone()),
            progress: &tracker,
            fingerprint_extra: vec!["scn=v2".into()],
            ..Default::default()
        };
        let third = run_sweep_stored("t", &points, &cfg, &measures, &opts_v2).unwrap();
        assert_eq!(third, first, "same points and seeds, same estimates");
        assert_eq!(
            *tracker.0.lock().unwrap(),
            vec![false],
            "a changed scenario hash must re-run the point"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn split_sweep_uses_its_own_store_and_empty_spec_matches_plain() {
        let cfg = SweepConfig {
            replications: 10,
            ..Default::default()
        };
        let dir =
            std::env::temp_dir().join(format!("itua-studies-sweep-split-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let points = vec![tiny_point(1.0, "a")];
        let measures = [names::UNAVAILABILITY, names::UNRELIABILITY];

        let plain_opts = RunOpts {
            results_dir: Some(dir.clone()),
            ..Default::default()
        };
        let plain = run_sweep_stored("fig", &points, &cfg, &measures, &plain_opts).unwrap();

        // An empty spec through the splitting path is bit-identical to
        // the plain loop but still checkpoints separately (different
        // sampling machinery, separate resume lineage).
        let empty_opts = RunOpts {
            results_dir: Some(dir.clone()),
            split: Some(SplitSpec::none()),
            ..Default::default()
        };
        let empty = run_sweep_stored("fig", &points, &cfg, &measures, &empty_opts).unwrap();
        assert_eq!(empty, plain);
        assert!(dir.join("fig.json").is_file());
        assert!(dir.join("fig-split.json").is_file());

        // A real spec changes the sampling scheme; the fingerprint keeps
        // it from resuming the empty-spec store.
        let split_opts = RunOpts {
            results_dir: Some(dir.clone()),
            split: Some("1x4".parse().unwrap()),
            ..Default::default()
        };
        let split = run_sweep_stored("fig", &points, &cfg, &measures, &split_opts).unwrap();
        assert_eq!(split.len(), plain.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn san_backend_runs_through_the_same_pipeline() {
        let cfg = SweepConfig {
            replications: 12,
            ..Default::default()
        };
        let opts = RunOpts {
            backend: BackendKind::San,
            ..Default::default()
        };
        let points = vec![tiny_point(1.0, "a")];
        let series = run_sweep_stored("t", &points, &cfg, &[names::UNAVAILABILITY], &opts).unwrap();
        assert_eq!(series.len(), 1);
        let (_, v) = series[0].points[0];
        assert!((0.0..=1.0).contains(&v.mean));
        // Same seeds, different encoding: the SAN result is a genuine
        // second opinion, not a relabeled DES run.
        let des = run_sweep(&points, &cfg, &[names::UNAVAILABILITY]);
        assert_eq!(des.len(), 1);
    }

    /// A point small enough for the analytic backend even in debug
    /// builds: one domain, two hosts, attack spread disabled.
    fn micro_analytic_point(x: f64, series: &str) -> SweepPoint {
        let mut params = Params::default().with_domains(1, 2).with_applications(1, 2);
        params.spread_rate_domain = 0.0;
        params.spread_rate_system = 0.0;
        SweepPoint {
            x,
            series: series.to_owned(),
            params,
            horizon: 2.0,
            sample_times: vec![2.0],
        }
    }

    #[test]
    fn analytic_backend_runs_through_the_same_pipeline() {
        let cfg = SweepConfig {
            replications: 12,
            ..Default::default()
        };
        let opts = RunOpts {
            backend: BackendKind::Analytic,
            ..Default::default()
        };
        let points = vec![micro_analytic_point(1.0, "a")];
        let measures = [names::UNAVAILABILITY, names::UNRELIABILITY];
        let series = run_sweep_stored("t", &points, &cfg, &measures, &opts).unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            let (_, v) = s.points[0];
            assert!((0.0..=1.0).contains(&v.mean), "{}: {v:?}", s.measure);
            assert_eq!(v.half_width, 0.0, "{} must be exact", s.measure);
        }
    }

    #[test]
    fn backends_checkpoint_into_separate_stores() {
        let cfg = SweepConfig {
            replications: 6,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join(format!(
            "itua-studies-sweep-backends-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for backend in [BackendKind::Des, BackendKind::San, BackendKind::Analytic] {
            // The analytic backend needs a state-space-tractable point;
            // the simulators are happy with it too, but keeping their
            // own point shows stores separate by backend, not by point.
            let points = vec![match backend {
                BackendKind::Analytic => micro_analytic_point(1.0, "a"),
                _ => tiny_point(1.0, "a"),
            }];
            let opts = RunOpts {
                backend,
                results_dir: Some(dir.clone()),
                ..Default::default()
            };
            run_sweep_stored("fig", &points, &cfg, &[names::UNAVAILABILITY], &opts).unwrap();
        }
        assert!(dir.join("fig.json").is_file());
        assert!(dir.join("fig-san.json").is_file());
        assert!(dir.join("fig-analytic.json").is_file());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unusable_results_dir_degrades_to_storeless_run() {
        let cfg = SweepConfig {
            replications: 6,
            ..Default::default()
        };
        // A file where the directory should be: the store cannot open.
        let bogus =
            std::env::temp_dir().join(format!("itua-studies-sweep-bogus-{}", std::process::id()));
        std::fs::write(&bogus, b"not a directory").unwrap();
        let opts = RunOpts {
            results_dir: Some(bogus.clone()),
            ..Default::default()
        };
        let points = vec![tiny_point(1.0, "a")];
        let series = run_sweep_stored("t", &points, &cfg, &[names::UNAVAILABILITY], &opts).unwrap();
        // The run completes and matches the storeless path exactly.
        assert_eq!(run_sweep(&points, &cfg, &[names::UNAVAILABILITY]), series);
        std::fs::remove_file(&bogus).unwrap();
    }

    #[test]
    fn series_for_filters_by_measure() {
        let all = vec![
            Series {
                name: "a".into(),
                measure: "m1".into(),
                points: vec![],
            },
            Series {
                name: "a".into(),
                measure: "m2".into(),
                points: vec![],
            },
        ];
        assert_eq!(series_for(&all, "m1").len(), 1);
        assert_eq!(series_for(&all, "nope").len(), 0);
    }
}

//! Figure 4 (§4.2): different numbers of hosts in a constant 10 domains.
//!
//! 10 domains with 1–4 hosts each, 4 applications × 7 replicas. Panels:
//!
//! * (a) unavailability for `[0,5]` and `[0,10]`,
//! * (b) unreliability for `[0,5]` and `[0,10]`,
//! * (c) fraction of corrupt hosts in an excluded domain (long-run),
//! * (d) fraction of domains excluded at t = 5 and t = 10.

use crate::study::Study;
use crate::sweep::{FigureResult, Panel, RunOpts, Series, SweepConfig, SweepPoint};
use itua_core::measures::names;
use itua_core::params::Params;
use std::io;

/// Number of security domains.
pub const NUM_DOMAINS: usize = 10;
/// Hosts-per-domain values on the x-axis.
pub const HOSTS_PER_DOMAIN: [usize; 4] = [1, 2, 3, 4];
/// Applications in the study.
pub const NUM_APPS: usize = 4;
/// Replicas per application.
pub const REPS_PER_APP: usize = 7;
/// The two intervals compared (hours). The long horizon also serves as the
/// "steady state" proxy for panel (c).
pub const HORIZONS: [f64; 2] = [5.0, 10.0];
/// Horizon used for the long-run (steady-state proxy) panel (c).
pub const LONG_HORIZON: f64 = 30.0;

/// Sweep points: one per (hosts-per-domain, horizon), plus a long-horizon
/// point per hosts-per-domain for panel (c).
pub fn points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for &hpd in &HOSTS_PER_DOMAIN {
        let params = Params::default()
            .with_domains(NUM_DOMAINS, hpd)
            .with_applications(NUM_APPS, REPS_PER_APP);
        for &h in &HORIZONS {
            pts.push(SweepPoint {
                x: hpd as f64,
                series: format!("for interval [0, {h:.0}]"),
                params: params.clone(),
                horizon: h,
                sample_times: vec![h],
            });
        }
        pts.push(SweepPoint {
            x: hpd as f64,
            series: "steady state".into(),
            params,
            horizon: LONG_HORIZON,
            sample_times: vec![],
        });
    }
    pts
}

/// Domains in the exact/exhaustive micro variant.
pub const MICRO_NUM_DOMAINS: usize = 1;
/// Hosts-per-domain values in the micro variant.
pub const MICRO_HOSTS_PER_DOMAIN: [usize; 2] = [1, 2];

/// Figure-4-shaped micro variant: 1–2 hosts in a constant single domain
/// with one application of two replicas. Same x-axis meaning, horizons,
/// and measures as the full study, but small enough for the analytic
/// backend to solve exactly and for the exhaustive reachability checker
/// to prove properties over every reachable marking (two hosts in two
/// domains is already past a million states).
pub fn micro_points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for &hpd in &MICRO_HOSTS_PER_DOMAIN {
        let params = Params::default()
            .with_domains(MICRO_NUM_DOMAINS, hpd)
            .with_applications(1, 2);
        for &h in &HORIZONS {
            pts.push(SweepPoint {
                x: hpd as f64,
                series: format!("for interval [0, {h:.0}]"),
                params: params.clone(),
                horizon: h,
                sample_times: vec![h],
            });
        }
        pts.push(SweepPoint {
            x: hpd as f64,
            series: "steady state".into(),
            params,
            horizon: LONG_HORIZON,
            sample_times: vec![],
        });
    }
    pts
}

/// The declarative descriptor of this study; the scenario registry and
/// the `figure4` binary both run through it.
pub const STUDY: Study = Study {
    id: "figure4",
    description: "Figure 4 (§4.2): 1–4 hosts in a constant 10 domains",
    points,
    micro_points: Some(micro_points),
    measures,
    render,
};

/// The measure keys the study extracts.
pub fn measures() -> Vec<String> {
    vec![
        names::UNAVAILABILITY.to_owned(),
        names::UNRELIABILITY.to_owned(),
        names::FRAC_CORRUPT_AT_EXCLUSION.to_owned(),
        format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, HORIZONS[0]),
        format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, HORIZONS[1]),
    ]
}

/// Runs the full study.
pub fn run(cfg: &SweepConfig) -> FigureResult {
    STUDY.run(cfg)
}

/// Runs the full study with explicit execution options (threads,
/// progress, resumable result store under sweep id `"figure4"`).
///
/// # Errors
///
/// Propagates backend failures and result-store write errors.
pub fn run_with(cfg: &SweepConfig, opts: &RunOpts<'_>) -> io::Result<FigureResult> {
    STUDY.run_with(cfg, opts)
}

/// Renders the extracted series as the figure's four panels.
pub fn render(all: &[Series]) -> FigureResult {
    let excl5 = format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, HORIZONS[0]);
    let excl10 = format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, HORIZONS[1]);

    let take = |measure: &str, series_filter: &dyn Fn(&str) -> bool| -> Vec<Series> {
        all.iter()
            .filter(|s| s.measure == measure && series_filter(&s.name))
            .cloned()
            .collect()
    };
    let intervals = |name: &str| name.starts_with("for interval");

    // Panel (d): each interval series samples at its own horizon, so the
    // t = 5 samples live in the [0,5] runs and t = 10 in the [0,10] runs.
    let mut excluded_series = take(&excl5, &intervals);
    excluded_series.extend(take(&excl10, &intervals));
    for s in &mut excluded_series {
        s.name = if s.measure.ends_with("@5") {
            "at time 5".into()
        } else {
            "at time 10".into()
        };
    }

    FigureResult {
        id: "Figure 4".into(),
        title: "Variations in measures for different numbers of hosts in 10 domains".into(),
        x_label: "Number of hosts per domain".into(),
        panels: vec![
            Panel {
                id: "4a".into(),
                title: "Unavailability".into(),
                series: take(names::UNAVAILABILITY, &intervals),
            },
            Panel {
                id: "4b".into(),
                title: "Unreliability".into(),
                series: take(names::UNRELIABILITY, &intervals),
            },
            Panel {
                id: "4c".into(),
                title: "Fraction of hosts corrupt in excluded domains (steady state)".into(),
                series: take(names::FRAC_CORRUPT_AT_EXCLUSION, &|n| n == "steady state"),
            },
            Panel {
                id: "4d".into(),
                title: "Fraction of domains excluded".into(),
                series: excluded_series,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itua_runner::backend::BackendKind;

    #[test]
    fn study_covers_grid() {
        let pts = points();
        // 4 hosts-per-domain × (2 horizons + 1 long run).
        assert_eq!(pts.len(), 12);
        for p in &pts {
            assert_eq!(p.params.num_domains, NUM_DOMAINS);
            p.params.validate().unwrap();
        }
    }

    #[test]
    fn total_hosts_varies_with_x() {
        let pts = points();
        let hosts: Vec<usize> = pts
            .iter()
            .filter(|p| p.series == "steady state")
            .map(|p| p.params.total_hosts())
            .collect();
        assert_eq!(hosts, vec![10, 20, 30, 40]);
    }

    #[test]
    fn micro_variant_is_figure_shaped_and_tiny() {
        let pts = micro_points();
        // 2 hosts-per-domain values × (2 horizons + 1 long run).
        assert_eq!(pts.len(), 6);
        for p in &pts {
            assert_eq!(p.params.num_domains, MICRO_NUM_DOMAINS);
            assert!(p.params.total_hosts() <= 2);
            p.params.validate().unwrap();
        }
        assert_eq!(STUDY.points_for(BackendKind::Analytic).len(), 6);
        assert_eq!(STUDY.points_for(BackendKind::Des).len(), 12);
    }

    #[test]
    fn small_run_produces_panels() {
        let cfg = SweepConfig {
            replications: 5,
            ..Default::default()
        };
        let fig = run(&cfg);
        assert_eq!(fig.panels.len(), 4);
        assert_eq!(fig.panels[0].series.len(), 2); // [0,5] and [0,10]
        assert_eq!(fig.panels[3].series.len(), 2); // t=5 and t=10
        for s in &fig.panels[3].series {
            assert!(s.name == "at time 5" || s.name == "at time 10");
        }
    }
}

//! Parameter-sensitivity study.
//!
//! Section 4 of the paper notes: "In the following studies, we have also
//! tried to explore the system's sensitivity to variations in these
//! parameters." This module makes that exploration a first-class study:
//! one-at-a-time sweeps of the main defense parameters around the paper's
//! baseline, reporting unavailability and unreliability at the 5-hour
//! horizon.
//!
//! Swept parameters:
//!
//! * IDS replica detection probability (paper baseline 0.80),
//! * IDS host detection probabilities (scaled jointly; baseline
//!   0.90/0.75/0.40),
//! * IDS detection latency rate (this repository's calibrated 0.15/h),
//! * misbehavior (group-conviction) rate (baseline 2/h),
//! * false-alarm rate (baseline 2/h cumulative).

use crate::study::Study;
use crate::sweep::{FigureResult, Panel, RunOpts, Series, SweepConfig, SweepPoint};
use itua_core::measures::names;
use itua_core::params::Params;
use std::io;

/// Baseline configuration of the study (the paper's §4 defaults).
pub fn baseline() -> Params {
    Params::default()
        .with_domains(10, 3)
        .with_applications(4, 7)
}

/// Horizon of the study (hours).
pub const HORIZON: f64 = 5.0;

/// Relative scale factors applied to each swept parameter.
pub const SCALES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

fn clamp_prob(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

/// The sweep points: each series varies one parameter by the scale on the
/// x-axis, all else at baseline.
pub fn points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for &scale in &SCALES {
        // Replica detection probability.
        let mut p = baseline();
        p.detect_replica = clamp_prob(p.detect_replica * scale);
        pts.push(point(scale, "replica detection prob", p));

        // Host detection probabilities (all three categories jointly).
        let mut p = baseline();
        p.attack_mix.detect_script = clamp_prob(p.attack_mix.detect_script * scale);
        p.attack_mix.detect_exploratory = clamp_prob(p.attack_mix.detect_exploratory * scale);
        p.attack_mix.detect_innovative = clamp_prob(p.attack_mix.detect_innovative * scale);
        pts.push(point(scale, "host detection probs", p));

        // IDS latency rate.
        let mut p = baseline();
        p.ids_rate *= scale;
        pts.push(point(scale, "IDS detection rate", p));

        // Group-conviction (misbehavior) rate.
        let mut p = baseline();
        p.misbehave_rate *= scale;
        pts.push(point(scale, "misbehavior rate", p));

        // False-alarm rate.
        let mut p = baseline();
        p.false_alarm_rate *= scale;
        pts.push(point(scale, "false-alarm rate", p));
    }
    pts
}

fn point(scale: f64, series: &str, params: Params) -> SweepPoint {
    SweepPoint {
        x: scale,
        series: series.to_owned(),
        params,
        horizon: HORIZON,
        sample_times: vec![],
    }
}

/// The declarative descriptor of this study; the scenario registry and
/// the `sensitivity` binary both run through it.
pub const STUDY: Study = Study {
    id: "sensitivity",
    description: "One-at-a-time sensitivity of the §4 baseline parameters",
    points,
    micro_points: None,
    measures,
    render,
};

/// The measure keys the study extracts.
pub fn measures() -> Vec<String> {
    vec![
        names::UNAVAILABILITY.to_owned(),
        names::UNRELIABILITY.to_owned(),
    ]
}

/// Runs the sensitivity study.
pub fn run(cfg: &SweepConfig) -> FigureResult {
    STUDY.run(cfg)
}

/// Runs the sensitivity study with explicit execution options (threads,
/// progress, resumable result store under sweep id `"sensitivity"`).
///
/// # Errors
///
/// Propagates backend failures and result-store write errors.
pub fn run_with(cfg: &SweepConfig, opts: &RunOpts<'_>) -> io::Result<FigureResult> {
    STUDY.run_with(cfg, opts)
}

/// Renders the extracted series as the study's two panels.
pub fn render(all: &[Series]) -> FigureResult {
    let take = |measure: &str| -> Vec<Series> {
        all.iter()
            .filter(|s| s.measure == measure)
            .cloned()
            .collect()
    };
    FigureResult {
        id: "Sensitivity".into(),
        title: "One-at-a-time sensitivity of the §4 baseline (first 5 hours)".into(),
        x_label: "Parameter scale (×baseline)".into(),
        panels: vec![
            Panel {
                id: "S-a".into(),
                title: "Unavailability".into(),
                series: take(names::UNAVAILABILITY),
            },
            Panel {
                id: "S-b".into(),
                title: "Unreliability".into(),
                series: take(names::UNRELIABILITY),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_five_parameters() {
        let pts = points();
        assert_eq!(pts.len(), SCALES.len() * 5);
        for p in &pts {
            p.params.validate().unwrap();
        }
        let series: std::collections::BTreeSet<_> = pts.iter().map(|p| p.series.clone()).collect();
        assert_eq!(series.len(), 5);
    }

    #[test]
    fn probabilities_stay_clamped() {
        for p in points() {
            assert!(p.params.detect_replica <= 1.0);
            assert!(p.params.attack_mix.detect_script <= 1.0);
        }
    }

    #[test]
    fn small_run_has_two_panels() {
        let cfg = SweepConfig {
            replications: 5,
            ..Default::default()
        };
        let fig = run(&cfg);
        assert_eq!(fig.panels.len(), 2);
        assert_eq!(fig.panels[0].series.len(), 5);
    }

    #[test]
    fn baseline_scale_is_identical_across_series() {
        // At scale 1.0 every series uses the same parameters, so the
        // (seeded) estimates of a given measure must agree across series.
        let cfg = SweepConfig {
            replications: 40,
            ..Default::default()
        };
        let pts: Vec<_> = points().into_iter().filter(|p| p.x == 1.0).collect();
        let series = crate::sweep::run_sweep(&pts, &cfg, &["unavailability"]);
        // Different series are run with different point indices (seeds),
        // so we only check they are close, not identical.
        let means: Vec<f64> = series.iter().map(|s| s.points[0].1.mean).collect();
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi - lo < 0.05,
            "baseline estimates spread too far: {means:?}"
        );
    }
}

//! Plain-text rendering of figure results.
//!
//! Produces the "same rows the paper plots": one table per panel with the
//! x-axis in the first column and one `mean ± hw` column per series.

use crate::sweep::{FigureResult, Panel};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders a whole figure as aligned text tables.
pub fn render(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", fig.id, fig.title);
    for panel in &fig.panels {
        let _ = writeln!(out, "\n-- {} : {} --", panel.id, panel.title);
        out.push_str(&render_panel(panel, &fig.x_label));
    }
    out
}

/// Renders one panel as an aligned table.
pub fn render_panel(panel: &Panel, x_label: &str) -> String {
    // Collect the union of x values.
    let xs: BTreeSet<u64> = panel
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x.to_bits()))
        .collect();
    let xs: Vec<f64> = xs.into_iter().map(f64::from_bits).collect();

    let mut header: Vec<String> = vec![x_label.to_owned()];
    header.extend(panel.series.iter().map(|s| s.name.clone()));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for &x in &xs {
        let mut row = vec![format_num(x)];
        for s in &panel.series {
            match s.points.iter().find(|&&(px, _)| px == x) {
                Some(&(_, v)) => row.push(format!("{:.5} ±{:.5}", v.mean, v.half_width)),
                None => row.push("-".to_owned()),
            }
        }
        rows.push(row);
    }
    align(&header, &rows)
}

/// Renders rows of a CSV file for machine consumption.
pub fn to_csv(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "panel,series,measure,x,mean,half_width");
    for panel in &fig.panels {
        for s in &panel.series {
            for &(x, v) in &s.points {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{}",
                    panel.id, s.name, s.measure, x, v.mean, v.half_width
                );
            }
        }
    }
    out
}

fn format_num(x: f64) -> String {
    if x == x.trunc() {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn align(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let _ = write!(line, "{:<width$}", cell, width = widths[i]);
        }
        line.trim_end().to_owned()
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Series, ValueCi};

    fn sample_fig() -> FigureResult {
        FigureResult {
            id: "Figure X".into(),
            title: "Test".into(),
            x_label: "x".into(),
            panels: vec![Panel {
                id: "Xa".into(),
                title: "Panel A".into(),
                series: vec![
                    Series {
                        name: "alpha".into(),
                        measure: "m".into(),
                        points: vec![
                            (
                                1.0,
                                ValueCi {
                                    mean: 0.5,
                                    half_width: 0.01,
                                },
                            ),
                            (
                                2.0,
                                ValueCi {
                                    mean: 0.25,
                                    half_width: 0.02,
                                },
                            ),
                        ],
                    },
                    Series {
                        name: "beta".into(),
                        measure: "m".into(),
                        points: vec![(
                            1.0,
                            ValueCi {
                                mean: 0.75,
                                half_width: 0.0,
                            },
                        )],
                    },
                ],
            }],
        }
    }

    #[test]
    fn render_contains_all_series_and_points() {
        let text = render(&sample_fig());
        assert!(text.contains("Figure X"));
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("0.50000"));
        assert!(text.contains("0.75000"));
        // Missing point shows a dash.
        assert!(text.lines().any(|l| l.starts_with('2') && l.contains('-')));
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let csv = to_csv(&sample_fig());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 3); // header + 3 points
        assert!(lines[0].starts_with("panel,"));
        assert!(lines[1].starts_with("Xa,alpha,m,1,"));
    }

    #[test]
    fn integer_x_rendered_without_decimals() {
        assert_eq!(format_num(4.0), "4");
        assert_eq!(format_num(2.5), "2.5");
    }
}

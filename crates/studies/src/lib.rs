//! The paper's validation studies (Figures 3, 4, and 5).
//!
//! Each figure is a parameter sweep over the ITUA model with the measures
//! of Section 4. The modules here define the exact sweeps, run them with
//! replication-based estimation, and render the resulting series as text
//! tables (the same rows the paper plots).
//!
//! * [`figure3`] — 12 hosts distributed into 1–12 domains, for 2/4/6/8
//!   applications (§4.1).
//! * [`figure4`] — 10 domains with 1–4 hosts each (§4.2).
//! * [`figure5`] — domain- vs host-exclusion under attack-spread rates
//!   0–10 (§4.3).
//! * [`sensitivity`] — one-at-a-time sensitivity of the baseline to the
//!   defense parameters (the exploration §4 mentions).
//! * [`study`] — declarative [`study::Study`] descriptors: every shipped
//!   figure reduced to (id, points, measures, renderer), the single run
//!   path behind both the legacy figure binaries and the `itua` CLI's
//!   scenario registry.
//! * [`sweep`] — the generic sweep/estimation machinery.
//! * [`table`] — plain-text rendering of figure series.
//!
//! # Example
//!
//! ```no_run
//! use itua_studies::figure3;
//! use itua_studies::sweep::SweepConfig;
//!
//! let cfg = SweepConfig { replications: 2000, ..SweepConfig::default() };
//! let result = figure3::run(&cfg);
//! println!("{}", itua_studies::table::render(&result));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod sensitivity;
pub mod study;
pub mod sweep;
pub mod table;

pub use study::Study;
pub use sweep::{FigureResult, RunOpts, Series, SweepConfig};

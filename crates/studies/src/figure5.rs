//! Figure 5 (§4.3): domain-exclusion vs host-exclusion management under
//! varying within-domain attack-spread rates.
//!
//! 10 domains × 3 hosts, 4 applications × 7 replicas, host corruption
//! multiplies replica/manager attack rates fivefold. The within-domain
//! spread rate sweeps 0–10. Panels:
//!
//! * (a) unavailability for the first 5 hours,
//! * (b) unavailability for the first 10 hours,
//! * (c) unreliability for the first 5 hours,
//! * (d) unreliability for the first 10 hours,
//!
//! each comparing the two exclusion schemes.

use crate::study::Study;
use crate::sweep::{FigureResult, Panel, RunOpts, Series, SweepConfig, SweepPoint};
use itua_core::measures::names;
use itua_core::params::{ManagementScheme, Params};
use std::io;

/// Number of security domains.
pub const NUM_DOMAINS: usize = 10;
/// Hosts per domain.
pub const HOSTS_PER_DOMAIN: usize = 3;
/// Applications × replicas.
pub const NUM_APPS: usize = 4;
/// Replicas per application.
pub const REPS_PER_APP: usize = 7;
/// Host-corruption multiplier for this study (paper: fivefold).
pub const CORRUPTION_MULTIPLIER: f64 = 5.0;
/// Attack-spread rates on the x-axis.
pub const SPREAD_RATES: [f64; 6] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
/// The two horizons (hours).
pub const HORIZONS: [f64; 2] = [5.0, 10.0];

/// Sweep points: scheme × spread × horizon.
pub fn points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for &scheme in &[
        ManagementScheme::HostExclusion,
        ManagementScheme::DomainExclusion,
    ] {
        for &spread in &SPREAD_RATES {
            let params = Params::default()
                .with_domains(NUM_DOMAINS, HOSTS_PER_DOMAIN)
                .with_applications(NUM_APPS, REPS_PER_APP)
                .with_scheme(scheme)
                .with_host_corruption_multiplier(CORRUPTION_MULTIPLIER)
                .with_spread_rate(spread);
            for &h in &HORIZONS {
                pts.push(SweepPoint {
                    x: spread,
                    series: format!(
                        "{} [0,{h:.0}]",
                        match scheme {
                            ManagementScheme::HostExclusion => "Host exclusion",
                            ManagementScheme::DomainExclusion => "Domain exclusion",
                        }
                    ),
                    params: params.clone(),
                    horizon: h,
                    sample_times: vec![],
                });
            }
        }
    }
    pts
}

/// Attack-spread rates in the exact/exhaustive micro variant.
pub const MICRO_SPREAD_RATES: [f64; 2] = [0.0, 4.0];

/// Figure-5-shaped micro variant: both exclusion schemes under zero and
/// nonzero within-domain spread on 1 domain × 2 hosts with one
/// application of two replicas, keeping the study's fivefold
/// host-corruption multiplier. Same series structure and measures as
/// the full study, small enough for exact solution and for the
/// exhaustive reachability checker.
pub fn micro_points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for &scheme in &[
        ManagementScheme::HostExclusion,
        ManagementScheme::DomainExclusion,
    ] {
        for &spread in &MICRO_SPREAD_RATES {
            let params = Params::default()
                .with_domains(1, 2)
                .with_applications(1, 2)
                .with_scheme(scheme)
                .with_host_corruption_multiplier(CORRUPTION_MULTIPLIER)
                .with_spread_rate(spread);
            for &h in &HORIZONS {
                pts.push(SweepPoint {
                    x: spread,
                    series: format!(
                        "{} [0,{h:.0}]",
                        match scheme {
                            ManagementScheme::HostExclusion => "Host exclusion",
                            ManagementScheme::DomainExclusion => "Domain exclusion",
                        }
                    ),
                    params: params.clone(),
                    horizon: h,
                    sample_times: vec![],
                });
            }
        }
    }
    pts
}

/// The declarative descriptor of this study; the scenario registry and
/// the `figure5` binary both run through it.
pub const STUDY: Study = Study {
    id: "figure5",
    description: "Figure 5 (§4.3): domain- vs host-exclusion under attack spread",
    points,
    micro_points: Some(micro_points),
    measures,
    render,
};

/// The measure keys the study extracts.
pub fn measures() -> Vec<String> {
    vec![
        names::UNAVAILABILITY.to_owned(),
        names::UNRELIABILITY.to_owned(),
    ]
}

/// Runs the full study.
pub fn run(cfg: &SweepConfig) -> FigureResult {
    STUDY.run(cfg)
}

/// Runs the full study with explicit execution options (threads,
/// progress, resumable result store under sweep id `"figure5"`).
///
/// # Errors
///
/// Propagates backend failures and result-store write errors.
pub fn run_with(cfg: &SweepConfig, opts: &RunOpts<'_>) -> io::Result<FigureResult> {
    STUDY.run_with(cfg, opts)
}

/// Renders the extracted series as the figure's four panels.
pub fn render(all: &[Series]) -> FigureResult {
    let take = |measure: &str, horizon_tag: &str| -> Vec<Series> {
        all.iter()
            .filter(|s| s.measure == measure && s.name.ends_with(horizon_tag))
            .cloned()
            .map(|mut s| {
                s.name = s.name.trim_end_matches(horizon_tag).trim().to_owned();
                s
            })
            .collect()
    };
    FigureResult {
        id: "Figure 5".into(),
        title: "Unavailability and unreliability for different exclusion algorithms".into(),
        x_label: "Rate of attack spread".into(),
        panels: vec![
            Panel {
                id: "5a".into(),
                title: "Unavailability for the first 5 hours".into(),
                series: take(names::UNAVAILABILITY, "[0,5]"),
            },
            Panel {
                id: "5b".into(),
                title: "Unavailability for the first 10 hours".into(),
                series: take(names::UNAVAILABILITY, "[0,10]"),
            },
            Panel {
                id: "5c".into(),
                title: "Unreliability for the first 5 hours".into(),
                series: take(names::UNRELIABILITY, "[0,5]"),
            },
            Panel {
                id: "5d".into(),
                title: "Unreliability for the first 10 hours".into(),
                series: take(names::UNRELIABILITY, "[0,10]"),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_covers_grid() {
        let pts = points();
        // 2 schemes × 6 spreads × 2 horizons.
        assert_eq!(pts.len(), 24);
        for p in &pts {
            assert_eq!(p.params.host_corruption_multiplier, CORRUPTION_MULTIPLIER);
            p.params.validate().unwrap();
        }
    }

    #[test]
    fn both_schemes_present() {
        let pts = points();
        assert!(pts.iter().any(|p| p.series.starts_with("Host exclusion")));
        assert!(pts.iter().any(|p| p.series.starts_with("Domain exclusion")));
    }

    #[test]
    fn micro_variant_is_figure_shaped_and_tiny() {
        use itua_runner::backend::BackendKind;
        let pts = micro_points();
        // 2 schemes × 2 spreads × 2 horizons.
        assert_eq!(pts.len(), 8);
        for p in &pts {
            assert_eq!(p.params.host_corruption_multiplier, CORRUPTION_MULTIPLIER);
            assert_eq!(p.params.total_hosts(), 2);
            p.params.validate().unwrap();
        }
        assert_eq!(STUDY.points_for(BackendKind::Analytic).len(), 8);
        assert_eq!(STUDY.points_for(BackendKind::Des).len(), 24);
    }

    #[test]
    fn small_run_produces_two_series_per_panel() {
        let cfg = SweepConfig {
            replications: 5,
            ..Default::default()
        };
        let fig = run(&cfg);
        assert_eq!(fig.panels.len(), 4);
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 2, "panel {}", panel.id);
            for s in &panel.series {
                assert_eq!(s.points.len(), SPREAD_RATES.len());
                assert!(s.name == "Host exclusion" || s.name == "Domain exclusion");
            }
        }
    }
}

//! Declarative study descriptors: one [`Study`] per shipped figure.
//!
//! Before the scenario layer, every figure module carried its own
//! `run()` / `run_with()` pair — `run` being nothing but `run_with` with
//! default options — and each figure binary re-derived which points to
//! analyze for `--check` (the analytic backend substitutes an
//! exact-solvable micro variant in Figure 3). A [`Study`] captures all
//! of that declaratively: the sweep id, the point constructors (with the
//! optional micro substitution), the measure list, and the renderer that
//! turns extracted series into a [`FigureResult`]. The figure modules
//! now expose a `STUDY` constant and delegate their `run`/`run_with`
//! functions to the single [`Study::run_with`] path, and the scenario
//! registry (`itua-scenario`) wraps the same constants as built-in
//! scenarios — so `itua run figure3` and the legacy `figure3` binary are
//! the same code and produce byte-identical result stores.

use crate::sweep::{run_sweep_stored, FigureResult, RunOpts, Series, SweepConfig, SweepPoint};
use itua_runner::backend::BackendKind;
use std::io;

/// A declarative descriptor of one shipped study.
///
/// All behavior is carried by plain function pointers so descriptors can
/// be `const` and the registry can hold them in a static table.
#[derive(Clone, Copy)]
pub struct Study {
    /// Sweep/store identifier (e.g. `"figure3"`); the result store file
    /// is `<id>.json` with the backend/split suffixes of
    /// [`run_sweep_stored`].
    pub id: &'static str,
    /// One-line description (shown by `itua list`).
    pub description: &'static str,
    /// Constructor of the full sweep points.
    pub points: fn() -> Vec<SweepPoint>,
    /// Exact-solvable micro variant substituted for the analytic
    /// backend, if the full study is beyond exact solution but a
    /// figure-shaped micro study exists (Figure 3). `None` runs the full
    /// points on every backend.
    pub micro_points: Option<fn() -> Vec<SweepPoint>>,
    /// Measure keys to extract from the sweep (possibly `@t`-suffixed).
    pub measures: fn() -> Vec<String>,
    /// Renderer from extracted series to the figure's panels.
    pub render: fn(&[Series]) -> FigureResult,
}

impl Study {
    /// The points this study runs on `backend` (the analytic backend
    /// gets the micro variant when one exists).
    pub fn points_for(&self, backend: BackendKind) -> Vec<SweepPoint> {
        match (backend, self.micro_points) {
            (BackendKind::Analytic, Some(micro)) => micro(),
            _ => (self.points)(),
        }
    }

    /// Runs the study with explicit execution options (threads,
    /// progress, resumable result store under [`Study::id`]).
    ///
    /// # Errors
    ///
    /// Propagates backend failures and result-store write errors from
    /// the sweep layer.
    pub fn run_with(&self, cfg: &SweepConfig, opts: &RunOpts<'_>) -> io::Result<FigureResult> {
        let points = self.points_for(opts.backend);
        let measures = (self.measures)();
        let refs: Vec<&str> = measures.iter().map(String::as_str).collect();
        let all = run_sweep_stored(self.id, &points, cfg, &refs, opts)?;
        Ok((self.render)(&all))
    }

    /// Runs the study with default options (DES backend, auto threads,
    /// no result store).
    pub fn run(&self, cfg: &SweepConfig) -> FigureResult {
        self.run_with(cfg, &RunOpts::default())
            .expect("default DES run with no store cannot fail")
    }
}

impl std::fmt::Debug for Study {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Study")
            .field("id", &self.id)
            .field("description", &self.description)
            .field("has_micro", &self.micro_points.is_some())
            .finish()
    }
}

/// Every shipped study, in presentation order. The scenario registry
/// builds its built-in entries from this table; the figure binaries are
/// shims over the same descriptors.
pub fn all() -> &'static [Study] {
    &[
        crate::figure3::STUDY,
        crate::figure4::STUDY,
        crate::figure5::STUDY,
        crate::sensitivity::STUDY,
    ]
}

/// The shipped study with this sweep id, if any.
pub fn by_id(id: &str) -> Option<&'static Study> {
    all().iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_studies_are_registered_with_unique_ids() {
        let ids: Vec<&str> = all().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec!["figure3", "figure4", "figure5", "sensitivity"]);
        for s in all() {
            assert!(!s.description.is_empty(), "{}: needs a description", s.id);
            assert!(!(s.points)().is_empty(), "{}: no points", s.id);
            assert!(!(s.measures)().is_empty(), "{}: no measures", s.id);
        }
        assert!(by_id("figure3").is_some());
        assert!(by_id("figure9").is_none());
    }

    #[test]
    fn analytic_backend_substitutes_micro_variant_only_where_defined() {
        // All three figure studies carry an exact-solvable micro variant
        // (also the exhaustive checker's target); every micro point stays
        // within two hosts.
        for id in ["figure3", "figure4", "figure5"] {
            let study = by_id(id).unwrap();
            let full = study.points_for(BackendKind::Des);
            let micro = study.points_for(BackendKind::Analytic);
            assert_ne!(full.len(), micro.len(), "{id}");
            assert!(micro.iter().all(|p| p.params.total_hosts() <= 2), "{id}");
        }

        let sens = by_id("sensitivity").unwrap();
        assert_eq!(
            sens.points_for(BackendKind::Des).len(),
            sens.points_for(BackendKind::Analytic).len()
        );
    }

    #[test]
    fn study_run_matches_module_run() {
        let cfg = SweepConfig {
            replications: 5,
            ..Default::default()
        };
        let via_study = by_id("sensitivity").unwrap().run(&cfg);
        let via_module = crate::sensitivity::run(&cfg);
        assert_eq!(via_study, via_module);
    }
}

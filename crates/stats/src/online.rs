//! Numerically stable streaming moments (Welford's algorithm).

/// Streaming mean/variance/min/max accumulator.
///
/// Uses Welford's online algorithm, which is numerically stable for long
/// streams of nearly equal values (unlike the naive sum-of-squares method).
///
/// # Example
///
/// ```
/// use itua_stats::online::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance().unwrap() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN observation silently poisons every later
    /// statistic, so it is rejected loudly).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; `None` with fewer than two observations.
    pub fn sample_variance(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some(self.m2 / (self.count - 1) as f64)
        }
    }

    /// Population (biased) variance; `None` when empty.
    pub fn population_variance(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.m2 / self.count as f64)
        }
    }

    /// Sample standard deviation; `None` with fewer than two observations.
    pub fn sample_std_dev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Standard error of the mean; `None` with fewer than two observations.
    pub fn std_error(&self) -> Option<f64> {
        self.sample_variance()
            .map(|v| (v / self.count as f64).sqrt())
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// pushed all observations into a single accumulator.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for OnlineStats {
    fn default() -> Self {
        // Careful: a derived Default would set min/max to 0.0 rather than
        // the identity elements of min/max.
        OnlineStats::new()
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let s: OnlineStats = [3.5].into_iter().collect();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.population_variance(), Some(0.0));
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() + 10.0).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance().unwrap() - var).abs() < 1e-12);
    }

    #[test]
    fn stable_for_large_offset() {
        // Classic catastrophic-cancellation case for naive algorithms.
        let offset = 1e9;
        let s: OnlineStats = [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]
            .into_iter()
            .collect();
        assert!((s.sample_variance().unwrap() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let (a_xs, b_xs) = xs.split_at(123);
        let mut a: OnlineStats = a_xs.iter().copied().collect();
        let b: OnlineStats = b_xs.iter().copied().collect();
        a.merge(&b);
        let all: OnlineStats = xs.iter().copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance().unwrap() - all.sample_variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let mut s = OnlineStats::new();
        for i in 0..100 {
            s.push((i % 2) as f64);
        }
        let se100 = s.std_error().unwrap();
        for i in 0..900 {
            s.push((i % 2) as f64);
        }
        let se1000 = s.std_error().unwrap();
        assert!(se1000 < se100);
    }
}

//! Time-weighted statistics over piecewise-constant sample paths.
//!
//! Interval-of-time reward variables ("fraction of time the service was
//! improper in `[0, T]`") are integrals of an indicator or level process.
//! [`TimeWeighted`] accumulates such an integral online as the simulation
//! reports level changes.

/// Accumulates the time integral of a piecewise-constant signal.
///
/// # Example
///
/// ```
/// use itua_stats::timeweighted::TimeWeighted;
///
/// let mut tw = TimeWeighted::new(0.0, 0.0); // value 0 from t = 0
/// tw.set(2.0, 1.0);                          // value 1 from t = 2
/// tw.set(3.0, 0.0);                          // value 0 from t = 3
/// assert_eq!(tw.integral_until(5.0), 1.0);   // one unit-time at level 1
/// assert_eq!(tw.mean_until(5.0), 0.2);       // 20 % of [0, 5]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    start_time: f64,
    last_time: f64,
    current: f64,
    integral: f64,
    /// Max level observed (useful for load measures).
    max_level: f64,
}

impl TimeWeighted {
    /// Creates an accumulator starting at `time` with initial `value`.
    ///
    /// # Panics
    ///
    /// Panics if `time` or `value` is NaN.
    pub fn new(time: f64, value: f64) -> Self {
        assert!(!time.is_nan() && !value.is_nan());
        TimeWeighted {
            start_time: time,
            last_time: time,
            current: value,
            integral: 0.0,
            max_level: value,
        }
    }

    /// Reports that the signal changed to `value` at time `time`.
    ///
    /// Idempotent for repeated sets at the same time; the last write wins
    /// (zero elapsed time accumulates nothing).
    ///
    /// # Panics
    ///
    /// Panics if `time` moves backwards or is NaN, or `value` is NaN.
    pub fn set(&mut self, time: f64, value: f64) {
        assert!(!time.is_nan() && !value.is_nan());
        assert!(
            time >= self.last_time,
            "time went backwards: {time} < {}",
            self.last_time
        );
        self.integral += self.current * (time - self.last_time);
        self.last_time = time;
        self.current = value;
        self.max_level = self.max_level.max(value);
    }

    /// The current signal value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The largest value the signal has taken.
    pub fn max_level(&self) -> f64 {
        self.max_level
    }

    /// Integral of the signal from the start time to `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last reported change.
    pub fn integral_until(&self, time: f64) -> f64 {
        assert!(time >= self.last_time, "query before last update");
        self.integral + self.current * (time - self.last_time)
    }

    /// Appends another accumulator's sample path after this one's.
    ///
    /// `other` must describe a later, non-overlapping stretch of the same
    /// signal: its start time must not precede this accumulator's last
    /// update. The gap `[self.last_time, other.start_time]`, if any, is
    /// integrated at this accumulator's current level (the signal is
    /// piecewise constant, so it holds its value until the next change).
    /// After the merge, `self` behaves exactly as if every `set` call of
    /// `other` had been applied to it directly.
    ///
    /// # Panics
    ///
    /// Panics if `other.start_time` precedes `self`'s last update (the
    /// paths overlap and their concatenation is ambiguous).
    pub fn merge(&mut self, other: &TimeWeighted) {
        assert!(
            other.start_time >= self.last_time,
            "cannot merge overlapping sample paths: other starts at {} before last update {}",
            other.start_time,
            self.last_time
        );
        self.integral += self.current * (other.start_time - self.last_time);
        self.integral += other.integral;
        self.last_time = other.last_time;
        self.current = other.current;
        self.max_level = self.max_level.max(other.max_level);
    }

    /// Time-averaged value over `[start, time]`; 0 for an empty interval.
    pub fn mean_until(&self, time: f64) -> f64 {
        let span = time - self.start_time;
        if span <= 0.0 {
            0.0
        } else {
            self.integral_until(time) / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let tw = TimeWeighted::new(0.0, 3.0);
        assert_eq!(tw.integral_until(4.0), 12.0);
        assert_eq!(tw.mean_until(4.0), 3.0);
    }

    #[test]
    fn step_signal() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(1.0, 2.0);
        tw.set(2.5, 0.5);
        // [0,1): 0, [1,2.5): 2 → 3.0, [2.5,4]: 0.5 → 0.75
        assert!((tw.integral_until(4.0) - 3.75).abs() < 1e-12);
        assert!((tw.mean_until(4.0) - 3.75 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_start_time() {
        let mut tw = TimeWeighted::new(10.0, 1.0);
        tw.set(12.0, 0.0);
        assert_eq!(tw.integral_until(14.0), 2.0);
        assert_eq!(tw.mean_until(14.0), 0.5);
    }

    #[test]
    fn repeated_set_at_same_time_last_wins() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(1.0, 5.0);
        tw.set(1.0, 1.0);
        assert_eq!(tw.integral_until(2.0), 1.0);
    }

    #[test]
    fn max_level_tracked() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.set(1.0, 7.0);
        tw.set(2.0, 3.0);
        assert_eq!(tw.max_level(), 7.0);
    }

    #[test]
    fn empty_interval_mean_is_zero() {
        let tw = TimeWeighted::new(5.0, 2.0);
        assert_eq!(tw.mean_until(5.0), 0.0);
    }

    #[test]
    fn merge_equals_single_path() {
        // Build one path in a single accumulator...
        let mut whole = TimeWeighted::new(0.0, 1.0);
        whole.set(1.0, 3.0);
        whole.set(2.0, 0.5);
        whole.set(4.0, 2.0);
        // ...and the same path split at t = 2 across two accumulators.
        let mut left = TimeWeighted::new(0.0, 1.0);
        left.set(1.0, 3.0);
        let mut right = TimeWeighted::new(2.0, 0.5);
        right.set(4.0, 2.0);
        left.merge(&right);
        assert_eq!(left.integral_until(5.0), whole.integral_until(5.0));
        assert_eq!(left.mean_until(5.0), whole.mean_until(5.0));
        assert_eq!(left.current(), whole.current());
        assert_eq!(left.max_level(), whole.max_level());
    }

    #[test]
    fn merge_integrates_gap_at_current_level() {
        let mut a = TimeWeighted::new(0.0, 2.0); // level 2 from t = 0
        let b = TimeWeighted::new(3.0, 0.0); // level 0 from t = 3
        a.merge(&b);
        // [0,3) at level 2 → 6, [3,…) at level 0.
        assert_eq!(a.integral_until(10.0), 6.0);
    }

    #[test]
    #[should_panic]
    fn merge_overlapping_paths_panics() {
        let mut a = TimeWeighted::new(0.0, 1.0);
        a.set(5.0, 2.0);
        let b = TimeWeighted::new(3.0, 0.0);
        a.merge(&b);
    }

    #[test]
    #[should_panic]
    fn backwards_time_panics() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(2.0, 1.0);
        tw.set(1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn query_before_last_update_panics() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(2.0, 1.0);
        let _ = tw.integral_until(1.0);
    }
}

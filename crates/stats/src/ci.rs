//! Confidence intervals over replicate observations.

use crate::online::OnlineStats;
use crate::tdist::t_quantile;
use crate::weighted::WeightedStats;
use std::fmt;

/// Error returned when a confidence interval cannot be formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CiError {
    /// Fewer than two observations.
    TooFewObservations,
    /// Confidence level outside (0, 1).
    BadLevel,
}

impl fmt::Display for CiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CiError::TooFewObservations => write!(f, "need at least two observations"),
            CiError::BadLevel => write!(f, "confidence level must be in (0, 1)"),
        }
    }
}

impl std::error::Error for CiError {}

/// A Student-t confidence interval for a mean.
///
/// # Example
///
/// ```
/// use itua_stats::ci::ConfidenceInterval;
/// let ci = ConfidenceInterval::from_observations(&[1.0, 2.0, 3.0], 0.95).unwrap();
/// assert_eq!(ci.mean, 2.0);
/// assert!(ci.contains(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval at the requested level.
    pub half_width: f64,
    /// Number of observations.
    pub n: u64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Builds an interval from raw observations.
    ///
    /// # Errors
    ///
    /// Returns [`CiError::TooFewObservations`] with fewer than two
    /// observations and [`CiError::BadLevel`] for a level outside `(0, 1)`.
    pub fn from_observations(obs: &[f64], level: f64) -> Result<Self, CiError> {
        let stats: OnlineStats = obs.iter().copied().collect();
        Self::from_stats(&stats, level)
    }

    /// Builds an interval from an accumulated [`OnlineStats`].
    ///
    /// # Errors
    ///
    /// Same as [`ConfidenceInterval::from_observations`].
    pub fn from_stats(stats: &OnlineStats, level: f64) -> Result<Self, CiError> {
        if !(0.0..1.0).contains(&level) || level <= 0.0 {
            return Err(CiError::BadLevel);
        }
        let n = stats.count();
        if n < 2 {
            return Err(CiError::TooFewObservations);
        }
        let se = stats.std_error().expect("n >= 2");
        let df = (n - 1) as f64;
        let t = t_quantile(0.5 + level / 2.0, df);
        Ok(ConfidenceInterval {
            mean: stats.mean(),
            half_width: t * se,
            n,
            level,
        })
    }

    /// Builds an interval from an accumulated [`WeightedStats`], using the
    /// effective sample size `n_eff = (Σw)² / Σw²` for the t-distribution's
    /// degrees of freedom (clamped to at least 1). `n` reports the raw
    /// observation count. When every weight is exactly `1.0` this is
    /// bit-identical to [`ConfidenceInterval::from_stats`]: `n_eff` equals
    /// the count exactly for integer-representable counts, so `df` and `t`
    /// match, and the clamp is inactive since `df >= 1` at `n >= 2`.
    ///
    /// # Errors
    ///
    /// Same as [`ConfidenceInterval::from_observations`].
    pub fn from_weighted_stats(stats: &WeightedStats, level: f64) -> Result<Self, CiError> {
        if !(0.0..1.0).contains(&level) || level <= 0.0 {
            return Err(CiError::BadLevel);
        }
        let n = stats.count();
        if n < 2 {
            return Err(CiError::TooFewObservations);
        }
        let se = stats.std_error().expect("n >= 2");
        let df = (stats.n_eff() - 1.0).max(1.0);
        let t = t_quantile(0.5 + level / 2.0, df);
        Ok(ConfidenceInterval {
            mean: stats.mean(),
            half_width: t * se,
            n,
            level,
        })
    }

    /// Lower endpoint.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies within the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }

    /// Whether this interval overlaps `other`.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.low() <= other.high() && other.low() <= self.high()
    }

    /// Relative half-width (`half_width / |mean|`), or `None` when the mean
    /// is (numerically) zero.
    pub fn relative_half_width(&self) -> Option<f64> {
        if self.mean.abs() < 1e-300 {
            None
        } else {
            Some(self.half_width / self.mean.abs())
        }
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} ({}% CI, n = {})",
            self.mean,
            self.half_width,
            self.level * 100.0,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_interval() {
        // Sample 1..=5: mean 3, sd sqrt(2.5), se sqrt(0.5), t(0.975, 4) ≈ 2.7764
        let ci = ConfidenceInterval::from_observations(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95).unwrap();
        assert_eq!(ci.mean, 3.0);
        let expected_hw = 2.776_445_104_9 * (0.5f64).sqrt();
        assert!((ci.half_width - expected_hw).abs() < 1e-6);
        assert!(ci.contains(3.0));
        assert!(!ci.contains(10.0));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            ConfidenceInterval::from_observations(&[1.0], 0.95),
            Err(CiError::TooFewObservations)
        );
        assert_eq!(
            ConfidenceInterval::from_observations(&[1.0, 2.0], 1.5),
            Err(CiError::BadLevel)
        );
        assert_eq!(
            ConfidenceInterval::from_observations(&[1.0, 2.0], 0.0),
            Err(CiError::BadLevel)
        );
    }

    #[test]
    fn wider_at_higher_level() {
        let obs = [1.0, 2.0, 3.0, 4.0];
        let c90 = ConfidenceInterval::from_observations(&obs, 0.90).unwrap();
        let c99 = ConfidenceInterval::from_observations(&obs, 0.99).unwrap();
        assert!(c99.half_width > c90.half_width);
    }

    #[test]
    fn overlap_logic() {
        let a = ConfidenceInterval {
            mean: 1.0,
            half_width: 0.5,
            n: 10,
            level: 0.95,
        };
        let b = ConfidenceInterval {
            mean: 1.4,
            half_width: 0.2,
            n: 10,
            level: 0.95,
        };
        let c = ConfidenceInterval {
            mean: 3.0,
            half_width: 0.5,
            n: 10,
            level: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn zero_variance_interval_is_degenerate() {
        let ci = ConfidenceInterval::from_observations(&[2.0, 2.0, 2.0], 0.95).unwrap();
        assert_eq!(ci.mean, 2.0);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(2.0));
    }

    #[test]
    fn coverage_simulation() {
        // 95% CI over exponential samples should cover the true mean ~95%
        // of the time. Crude check with wide tolerance.
        use itua_sim::dist::{Distribution, Exponential};
        use itua_sim::rng::Rng;
        let d = Exponential::new(1.0).unwrap();
        let mut covered = 0;
        let trials = 400;
        for t in 0..trials {
            let mut rng = Rng::seed_from_u64(1000 + t);
            let obs: Vec<f64> = (0..30).map(|_| d.sample(&mut rng)).collect();
            let ci = ConfidenceInterval::from_observations(&obs, 0.95).unwrap();
            if ci.contains(1.0) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.90 && rate <= 1.0, "coverage {rate}");
    }

    #[test]
    fn display_is_informative() {
        let ci = ConfidenceInterval::from_observations(&[1.0, 2.0, 3.0], 0.95).unwrap();
        let s = format!("{ci}");
        assert!(s.contains("95%"));
        assert!(s.contains("n = 3"));
    }
}

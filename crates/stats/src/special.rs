//! Special functions implemented from scratch.
//!
//! Only what the workspace needs: log-gamma, the regularized incomplete
//! beta function (for the Student-t CDF), and the standard normal
//! quantile (Acklam's rational approximation). Accuracy targets are ~1e-9
//! for `ln_gamma`/`inc_beta` and ~1e-8 for `normal_quantile`, verified in
//! tests against high-precision reference values.

/// Natural logarithm of the gamma function (Lanczos approximation).
///
/// # Panics
///
/// Panics if `x <= 0` (the workspace never needs the reflection branch for
/// non-positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    // Lanczos g=7, n=9.
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    let x = x - 1.0;
    let mut a = C[0];
    let t = x + 7.5;
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Computed by the continued-fraction expansion (Lentz's algorithm), using
/// the symmetry relation to stay in the rapidly converging region.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` outside `[0, 1]`.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "inc_beta shape parameters must be positive"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "inc_beta x must be in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp()) * beta_cf(a, b, x) / a
    } else {
        1.0 - (ln_front.exp()) * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Standard normal quantile function Φ⁻¹(p) (Acklam's algorithm, refined by
/// one Halley step against the complementary error function).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile domain: 0 < p < 1, got {p}"
    );

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the normal CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Standard normal CDF via `erfc`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (W. J. Cody-style rational/Chebyshev fit;
/// here the classic 7-term expansion of Numerical Recipes with |ε| < 1.2e-7,
/// followed by a refinement for the workspace's accuracy target).
pub fn erfc(x: f64) -> f64 {
    // Use the series/continued-fraction split of the incomplete gamma:
    // erfc(x) = Γ(1/2, x²)/√π for x ≥ 0.
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let x2 = x * x;
    if x2 < 1.5 {
        // erf via series: erf(x) = 2/√π Σ (-1)^n x^(2n+1) / (n! (2n+1)).
        let mut term = x;
        let mut sum = x;
        let mut n = 0.0;
        while term.abs() > 1e-18 * sum.abs() {
            n += 1.0;
            term *= -x2 / n;
            sum += term / (2.0 * n + 1.0);
        }
        1.0 - 2.0 / std::f64::consts::PI.sqrt() * sum
    } else {
        // erfc(x) = Q(1/2, x²), the regularized upper incomplete gamma,
        // evaluated by its continued fraction (Lentz's algorithm).
        let a = 0.5;
        const MAX_ITER: usize = 300;
        const TINY: f64 = 1e-300;
        let mut b = x2 + 1.0 - a;
        let mut c = 1.0 / TINY;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..=MAX_ITER {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < TINY {
                d = TINY;
            }
            c = b + an / c;
            if c.abs() < TINY {
                c = TINY;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-16 {
                break;
            }
        }
        (-x2 + a * x2.ln() - ln_gamma(a)).exp() * h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - (std::f64::consts::PI.sqrt()).ln()).abs() < 1e-10);
        // Γ(10.5) = 9.5 · 8.5 · … · 0.5 · √π by the recurrence Γ(x+1) = xΓ(x).
        let mut product = std::f64::consts::PI.sqrt();
        let mut x = 0.5;
        while x < 10.0 {
            product *= x;
            x += 1.0;
        }
        assert!((ln_gamma(10.5) - product.ln()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.42)] {
            let lhs = inc_beta(a, b, x);
            let rhs = 1.0 - inc_beta(b, a, 1.0 - x);
            assert!(
                (lhs - rhs).abs() < 1e-12,
                "symmetry failed at ({a},{b},{x})"
            );
        }
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1,1) = x.
        for i in 1..10 {
            let x = i as f64 / 10.0;
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_reference_values() {
        // Computed with mpmath.betainc(regularized=True) to 15 digits.
        assert!((inc_beta(2.0, 3.0, 0.5) - 0.6875).abs() < 1e-12);
        assert!((inc_beta(0.5, 0.5, 0.5) - 0.5).abs() < 1e-12);
        assert!((inc_beta(5.0, 2.0, 0.8) - 0.655_36).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_reference_values() {
        assert!((normal_quantile(0.5) - 0.0).abs() < 1e-12);
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((normal_quantile(0.95) - 1.644_853_626_951_472).abs() < 1e-8);
        assert!((normal_quantile(0.995) - 2.575_829_303_548_901).abs() < 1e-8);
        assert!((normal_quantile(0.01) + 2.326_347_874_040_841).abs() < 1e-8);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
        assert!((erfc(1.0) - 0.157_299_207_050_285).abs() < 1e-9);
        assert!((erfc(2.0) - 0.004_677_734_981_063_1).abs() < 1e-10);
        assert!((erfc(-1.0) - 1.842_700_792_949_715).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn normal_quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    #[should_panic]
    fn inc_beta_rejects_bad_x() {
        inc_beta(1.0, 1.0, 1.5);
    }
}

//! Student's t distribution: CDF and quantiles.
//!
//! The quantile is what turns a replication sample into a Möbius-style
//! confidence interval. It is computed by inverting the CDF with a
//! bracketed Newton/bisection hybrid, so it is accurate for any degrees of
//! freedom rather than relying on a small-df table.

use crate::special::{inc_beta, normal_quantile};

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df` is not positive.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Quantile (inverse CDF) of Student's t distribution.
///
/// # Panics
///
/// Panics unless `0 < p < 1` and `df > 0`.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "t_quantile domain: 0 < p < 1, got {p}");
    assert!(df > 0.0, "degrees of freedom must be positive");
    if (p - 0.5).abs() < 1e-16 {
        return 0.0;
    }
    // By symmetry work in the upper tail.
    if p < 0.5 {
        return -t_quantile(1.0 - p, df);
    }

    // Initial guess: the normal quantile, inflated by the classic
    // Cornish-Fisher-style correction; for tiny df fall back to a wide
    // bracket.
    let z = normal_quantile(p);
    let g1 = (z.powi(3) + z) / 4.0;
    let g2 = (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / 96.0;
    let mut x = z + g1 / df + g2 / (df * df);
    if !x.is_finite() || x <= 0.0 {
        x = z.max(0.5);
    }

    // Bracket the root.
    let mut lo = 0.0f64;
    let mut hi = x.max(1.0);
    while t_cdf(hi, df) < p {
        lo = hi;
        hi *= 2.0;
        assert!(hi < 1e300, "t_quantile failed to bracket");
    }

    // Bisection with Newton acceleration on the CDF.
    let mut x = x.clamp(lo, hi);
    for _ in 0..200 {
        let f = t_cdf(x, df) - p;
        if f.abs() < 1e-14 {
            break;
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step using the t pdf.
        let pdf = t_pdf(x, df);
        let newton = if pdf > 1e-300 { x - f / pdf } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if hi - lo < 1e-13 * (1.0 + x.abs()) {
            break;
        }
    }
    x
}

/// Density of Student's t distribution.
pub fn t_pdf(t: f64, df: f64) -> f64 {
    use crate::special::ln_gamma;
    assert!(df > 0.0);
    let ln_c =
        ln_gamma(0.5 * (df + 1.0)) - ln_gamma(0.5 * df) - 0.5 * (df * std::f64::consts::PI).ln();
    (ln_c - 0.5 * (df + 1.0) * (1.0 + t * t / df).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry_and_midpoint() {
        for &df in &[1.0, 2.0, 5.0, 30.0] {
            assert!((t_cdf(0.0, df) - 0.5).abs() < 1e-14);
            for &t in &[0.3, 1.0, 2.5] {
                assert!((t_cdf(t, df) + t_cdf(-t, df) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cdf_df1_is_cauchy() {
        // For df = 1, CDF(t) = 1/2 + atan(t)/π.
        for &t in &[-3.0f64, -1.0, 0.5, 2.0, 10.0] {
            let expected = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((t_cdf(t, 1.0) - expected).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn quantile_reference_values() {
        // Classic two-sided 95% critical values (p = 0.975).
        let cases = [
            (1.0, 12.706_204_736_432_1),
            (2.0, 4.302_652_729_911_27),
            (5.0, 2.570_581_835_636_20),
            (10.0, 2.228_138_851_986_27),
            (30.0, 2.042_272_456_301_24),
            (100.0, 1.983_971_518_523_55),
        ];
        for &(df, expected) in &cases {
            let got = t_quantile(0.975, df);
            assert!(
                (got - expected).abs() < 1e-6,
                "df {df}: got {got}, want {expected}"
            );
        }
    }

    #[test]
    fn quantile_90_and_99() {
        assert!((t_quantile(0.95, 9.0) - 1.833_112_932_712_77).abs() < 1e-6);
        assert!((t_quantile(0.995, 9.0) - 3.249_835_541_592_0).abs() < 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &df in &[1.0, 3.0, 7.5, 42.0, 500.0] {
            for &p in &[0.6, 0.9, 0.975, 0.999] {
                let t = t_quantile(p, df);
                assert!((t_cdf(t, df) - p).abs() < 1e-10, "df {df} p {p}");
            }
        }
    }

    #[test]
    fn quantile_symmetry() {
        for &df in &[2.0, 10.0] {
            assert!((t_quantile(0.2, df) + t_quantile(0.8, df)).abs() < 1e-9);
        }
        assert_eq!(t_quantile(0.5, 5.0), 0.0);
    }

    #[test]
    fn quantile_approaches_normal_for_large_df() {
        let z = crate::special::normal_quantile(0.975);
        let t = t_quantile(0.975, 1e6);
        assert!((t - z).abs() < 1e-4);
    }

    #[test]
    fn pdf_integrates_to_cdf_diff() {
        // Trapezoidal check of d/dt CDF = pdf on a coarse grid.
        let df = 4.0;
        let h = 1e-5;
        for &t in &[-2.0, 0.0, 1.5] {
            let num = (t_cdf(t + h, df) - t_cdf(t - h, df)) / (2.0 * h);
            assert!((num - t_pdf(t, df)).abs() < 1e-6);
        }
    }
}

//! Replication-based estimation of many measures at once.
//!
//! Möbius estimates every reward variable of a study from `n` independent
//! simulation replications and reports mean ± t-interval. The
//! [`ReplicationEstimator`] does the same: each replication produces one
//! observation per named measure (or none, for event-conditioned measures
//! such as "fraction of corrupt hosts in an excluded domain", which produce
//! an observation only if the triggering event happened).

use crate::ci::{CiError, ConfidenceInterval};
use crate::online::OnlineStats;
use crate::weighted::WeightedStats;
use std::collections::BTreeMap;

/// Whether an estimator accumulates plain per-replication observations or
/// weight-carrying importance-splitting observations.
///
/// The two modes use different variance estimators (`n` vs. effective
/// sample size), so they must never be mixed: an unweighted estimator that
/// silently absorbed weighted splitting samples would report intervals with
/// the wrong width. [`ReplicationEstimator::merge`] enforces compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// Every observation counts once; intervals use `n - 1` degrees of
    /// freedom ([`OnlineStats`] underneath).
    Unweighted,
    /// Observations carry likelihood weights; intervals use the effective
    /// sample size ([`WeightedStats`] underneath).
    Weighted,
}

/// A finished estimate for one measure.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Measure name.
    pub name: String,
    /// Point estimate and interval.
    pub ci: ConfidenceInterval,
    /// Smallest observation seen.
    pub min: f64,
    /// Largest observation seen.
    pub max: f64,
}

/// Collects per-replication observations for a set of named measures.
///
/// # Example
///
/// ```
/// use itua_stats::replication::ReplicationEstimator;
///
/// let mut est = ReplicationEstimator::new(0.95);
/// for rep in 0..100 {
///     est.record("throughput", 10.0 + (rep % 5) as f64);
/// }
/// let estimate = est.estimate("throughput").unwrap();
/// assert!((estimate.ci.mean - 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicationEstimator {
    level: f64,
    weighting: Weighting,
    measures: BTreeMap<String, OnlineStats>,
    weighted_measures: BTreeMap<String, WeightedStats>,
}

impl ReplicationEstimator {
    /// Creates an unweighted estimator that reports intervals at `level`
    /// confidence (e.g. `0.95`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < level < 1`.
    pub fn new(level: f64) -> Self {
        assert!(level > 0.0 && level < 1.0, "confidence level in (0,1)");
        ReplicationEstimator {
            level,
            weighting: Weighting::Unweighted,
            measures: BTreeMap::new(),
            weighted_measures: BTreeMap::new(),
        }
    }

    /// Creates a weighted estimator for importance-splitting observations;
    /// observations go through [`ReplicationEstimator::record_weighted`].
    ///
    /// # Panics
    ///
    /// Panics unless `0 < level < 1`.
    pub fn new_weighted(level: f64) -> Self {
        ReplicationEstimator {
            weighting: Weighting::Weighted,
            ..ReplicationEstimator::new(level)
        }
    }

    /// The estimator's weighting mode.
    pub fn weighting(&self) -> Weighting {
        self.weighting
    }

    /// Records one observation of `measure`.
    ///
    /// # Panics
    ///
    /// Panics on a [`Weighting::Weighted`] estimator — use
    /// [`ReplicationEstimator::record_weighted`] there.
    pub fn record(&mut self, measure: &str, value: f64) {
        assert!(
            self.weighting == Weighting::Unweighted,
            "record() on a weighted estimator; use record_weighted()"
        );
        self.measures
            .entry(measure.to_owned())
            .or_default()
            .push(value);
    }

    /// Records one observation of `measure` carrying likelihood `weight`.
    ///
    /// # Panics
    ///
    /// Panics on a [`Weighting::Unweighted`] estimator, or when `weight` is
    /// not a finite positive number.
    pub fn record_weighted(&mut self, measure: &str, value: f64, weight: f64) {
        assert!(
            self.weighting == Weighting::Weighted,
            "record_weighted() on an unweighted estimator; use record()"
        );
        self.weighted_measures
            .entry(measure.to_owned())
            .or_default()
            .push(value, weight);
    }

    /// Records an exact (zero-variance) value for `measure`, as produced by
    /// an analytic solver rather than a stochastic replication.
    ///
    /// The value is recorded twice: [`ConfidenceInterval`] requires n ≥ 2,
    /// and a repeated observation makes Welford's variance accumulator
    /// exactly zero, so the estimate comes out as `value ± 0` with
    /// `min == max == value` bitwise. Downstream consumers need no special
    /// case — the degenerate `n == 2` sample flags the estimate as exact.
    pub fn record_exact(&mut self, measure: &str, value: f64) {
        self.record(measure, value);
        self.record(measure, value);
    }

    /// Number of observations recorded for `measure`.
    pub fn count(&self, measure: &str) -> u64 {
        match self.weighting {
            Weighting::Unweighted => self.measures.get(measure).map_or(0, OnlineStats::count),
            Weighting::Weighted => self
                .weighted_measures
                .get(measure)
                .map_or(0, WeightedStats::count),
        }
    }

    /// Computes the estimate for one measure.
    ///
    /// # Errors
    ///
    /// Returns [`CiError::TooFewObservations`] if the measure has fewer than
    /// two observations (or none at all).
    pub fn estimate(&self, measure: &str) -> Result<Estimate, CiError> {
        match self.weighting {
            Weighting::Unweighted => {
                let stats = self
                    .measures
                    .get(measure)
                    .ok_or(CiError::TooFewObservations)?;
                let ci = ConfidenceInterval::from_stats(stats, self.level)?;
                Ok(Estimate {
                    name: measure.to_owned(),
                    ci,
                    min: stats.min().expect("n >= 2"),
                    max: stats.max().expect("n >= 2"),
                })
            }
            Weighting::Weighted => {
                let stats = self
                    .weighted_measures
                    .get(measure)
                    .ok_or(CiError::TooFewObservations)?;
                let ci = ConfidenceInterval::from_weighted_stats(stats, self.level)?;
                Ok(Estimate {
                    name: measure.to_owned(),
                    ci,
                    min: stats.min().expect("n >= 2"),
                    max: stats.max().expect("n >= 2"),
                })
            }
        }
    }

    /// Computes estimates for every measure with at least two observations,
    /// sorted by name.
    pub fn estimates(&self) -> Vec<Estimate> {
        let names: Vec<&String> = match self.weighting {
            Weighting::Unweighted => self.measures.keys().collect(),
            Weighting::Weighted => self.weighted_measures.keys().collect(),
        };
        names
            .into_iter()
            .filter_map(|name| self.estimate(name).ok())
            .collect()
    }

    /// Whether every listed measure has reached the requested relative
    /// half-width (e.g. `0.1` = ±10 % of the mean). Measures whose mean is
    /// ~0 are judged by absolute half-width against `abs_floor`.
    pub fn reached_precision(&self, measures: &[&str], rel: f64, abs_floor: f64) -> bool {
        measures.iter().all(|m| match self.estimate(m) {
            Ok(e) => match e.ci.relative_half_width() {
                Some(r) => r <= rel || e.ci.half_width <= abs_floor,
                None => e.ci.half_width <= abs_floor,
            },
            Err(_) => false,
        })
    }

    /// The confidence level used for all intervals.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Merges another estimator's observations into this one.
    ///
    /// The result is equivalent (up to floating-point rounding of the
    /// underlying parallel-Welford merge) to having recorded every
    /// observation of `other` into `self`; measures present in only one of
    /// the two appear unchanged. Intended for parallel reduction: each
    /// worker accumulates locally and the shards are merged in a fixed
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the two estimators use different confidence levels or
    /// different [`Weighting`] modes (merging those would silently
    /// misreport intervals — an unweighted estimator must never absorb
    /// weighted splitting samples unnoticed).
    pub fn merge(&mut self, other: &ReplicationEstimator) {
        assert!(
            self.level == other.level,
            "cannot merge estimators at different confidence levels ({} vs {})",
            self.level,
            other.level
        );
        debug_assert_eq!(
            self.weighting, other.weighting,
            "cannot merge estimators with different weighting modes"
        );
        match (self.weighting, other.weighting) {
            (Weighting::Unweighted, Weighting::Unweighted) => {
                for (name, stats) in &other.measures {
                    self.measures.entry(name.clone()).or_default().merge(stats);
                }
            }
            (Weighting::Weighted, Weighting::Weighted) => {
                for (name, stats) in &other.weighted_measures {
                    self.weighted_measures
                        .entry(name.clone())
                        .or_default()
                        .merge(stats);
                }
            }
            (a, b) => {
                panic!("cannot merge estimators with different weighting modes ({a:?} vs {b:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_estimates() {
        let mut est = ReplicationEstimator::new(0.95);
        for x in [1.0, 2.0, 3.0] {
            est.record("m", x);
        }
        let e = est.estimate("m").unwrap();
        assert_eq!(e.ci.mean, 2.0);
        assert_eq!(e.min, 1.0);
        assert_eq!(e.max, 3.0);
        assert_eq!(e.ci.n, 3);
    }

    #[test]
    fn record_exact_yields_zero_width_interval() {
        let mut est = ReplicationEstimator::new(0.95);
        let value = 0.123_456_789_012_345f64;
        est.record_exact("exact", value);
        let e = est.estimate("exact").unwrap();
        assert_eq!(e.ci.mean, value);
        assert_eq!(e.ci.half_width, 0.0);
        assert_eq!(e.min, value);
        assert_eq!(e.max, value);
        assert_eq!(e.ci.n, 2);
    }

    #[test]
    fn missing_measure_errors() {
        let est = ReplicationEstimator::new(0.95);
        assert!(est.estimate("nope").is_err());
        assert_eq!(est.count("nope"), 0);
    }

    #[test]
    fn conditional_measures_can_have_fewer_observations() {
        let mut est = ReplicationEstimator::new(0.95);
        for i in 0..10 {
            est.record("always", i as f64);
            if i % 3 == 0 {
                est.record("sometimes", 1.0);
            }
        }
        assert_eq!(est.count("always"), 10);
        assert_eq!(est.count("sometimes"), 4);
    }

    #[test]
    fn estimates_sorted_by_name() {
        let mut est = ReplicationEstimator::new(0.9);
        for x in [1.0, 2.0] {
            est.record("zeta", x);
            est.record("alpha", x);
        }
        let all = est.estimates();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "alpha");
        assert_eq!(all[1].name, "zeta");
    }

    #[test]
    fn precision_stopping() {
        let mut est = ReplicationEstimator::new(0.95);
        // Tight data: mean 10, tiny spread.
        for i in 0..50 {
            est.record("tight", 10.0 + 0.001 * (i % 2) as f64);
            est.record("loose", (i % 20) as f64);
        }
        assert!(est.reached_precision(&["tight"], 0.01, 1e-9));
        assert!(!est.reached_precision(&["loose"], 0.01, 1e-9));
        assert!(!est.reached_precision(&["tight", "loose"], 0.01, 1e-9));
        assert!(!est.reached_precision(&["absent"], 0.5, 1.0));
    }

    #[test]
    fn zero_mean_uses_absolute_floor() {
        let mut est = ReplicationEstimator::new(0.95);
        for _ in 0..10 {
            est.record("zero", 0.0);
        }
        assert!(est.reached_precision(&["zero"], 0.1, 1e-9));
    }

    #[test]
    #[should_panic]
    fn bad_level_panics() {
        let _ = ReplicationEstimator::new(1.0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut whole = ReplicationEstimator::new(0.95);
        let mut left = ReplicationEstimator::new(0.95);
        let mut right = ReplicationEstimator::new(0.95);
        for i in 0..40 {
            let x = (i as f64 * 0.7).sin();
            whole.record("m", x);
            if i < 17 {
                left.record("m", x);
            } else {
                right.record("m", x);
            }
            if i % 3 == 0 {
                whole.record("cond", i as f64);
                right.record("cond", i as f64);
            }
        }
        left.merge(&right);
        assert_eq!(left.count("m"), whole.count("m"));
        assert_eq!(left.count("cond"), whole.count("cond"));
        let (a, b) = (left.estimate("m").unwrap(), whole.estimate("m").unwrap());
        assert!((a.ci.mean - b.ci.mean).abs() < 1e-12);
        assert!((a.ci.half_width - b.ci.half_width).abs() < 1e-12);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn merge_with_disjoint_measures_keeps_both() {
        let mut a = ReplicationEstimator::new(0.9);
        let mut b = ReplicationEstimator::new(0.9);
        a.record("only_a", 1.0);
        b.record("only_b", 2.0);
        a.merge(&b);
        assert_eq!(a.count("only_a"), 1);
        assert_eq!(a.count("only_b"), 1);
    }

    #[test]
    #[should_panic]
    fn merge_level_mismatch_panics() {
        let mut a = ReplicationEstimator::new(0.9);
        let b = ReplicationEstimator::new(0.95);
        a.merge(&b);
    }

    #[test]
    fn weighted_estimator_records_and_estimates() {
        let mut est = ReplicationEstimator::new_weighted(0.95);
        assert_eq!(est.weighting(), Weighting::Weighted);
        est.record_weighted("m", 1.0, 0.5);
        est.record_weighted("m", 2.0, 1.0);
        est.record_weighted("m", 3.0, 0.5);
        let e = est.estimate("m").unwrap();
        assert_eq!(e.ci.mean, 2.0);
        assert_eq!(e.min, 1.0);
        assert_eq!(e.max, 3.0);
        assert_eq!(e.ci.n, 3);
        assert_eq!(est.count("m"), 3);
        assert_eq!(est.estimates().len(), 1);
    }

    #[test]
    fn weighted_merge_matches_sequential_recording() {
        let mut whole = ReplicationEstimator::new_weighted(0.95);
        let mut left = ReplicationEstimator::new_weighted(0.95);
        let mut right = ReplicationEstimator::new_weighted(0.95);
        for i in 0..40 {
            let x = (i as f64 * 0.7).sin();
            let w = 1.0 + (i % 4) as f64 * 0.25;
            whole.record_weighted("m", x, w);
            if i < 17 {
                left.record_weighted("m", x, w);
            } else {
                right.record_weighted("m", x, w);
            }
        }
        left.merge(&right);
        assert_eq!(left.count("m"), whole.count("m"));
        let (a, b) = (left.estimate("m").unwrap(), whole.estimate("m").unwrap());
        assert!((a.ci.mean - b.ci.mean).abs() < 1e-12);
        assert!((a.ci.half_width - b.ci.half_width).abs() < 1e-12);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }

    #[test]
    #[should_panic]
    fn record_on_weighted_estimator_panics() {
        let mut est = ReplicationEstimator::new_weighted(0.95);
        est.record("m", 1.0);
    }

    #[test]
    #[should_panic]
    fn record_weighted_on_unweighted_estimator_panics() {
        let mut est = ReplicationEstimator::new(0.95);
        est.record_weighted("m", 1.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn merge_weighting_mismatch_panics() {
        let mut a = ReplicationEstimator::new(0.95);
        let b = ReplicationEstimator::new_weighted(0.95);
        a.merge(&b);
    }
}

//! Batch-means estimation for steady-state measures.
//!
//! A single long run is split into equal-length batches whose means are
//! treated as (approximately) independent observations; a Student-t
//! interval over the batch means then estimates the steady-state mean.
//! Used for the paper's "steady state" series in Figure 4(c).

use crate::ci::{CiError, ConfidenceInterval};
use crate::online::OnlineStats;

/// Batch-means accumulator over a stream of observations.
///
/// # Example
///
/// ```
/// use itua_stats::batch::BatchMeans;
///
/// let mut bm = BatchMeans::new(10);
/// for i in 0..100 {
///     bm.push((i % 4) as f64);
/// }
/// assert_eq!(bm.completed_batches(), 10);
/// let ci = bm.confidence_interval(0.95).unwrap();
/// assert!((ci.mean - 1.5).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: OnlineStats,
    batch_means: OnlineStats,
    warmup_remaining: u64,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size (observations per
    /// batch) and no warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        Self::with_warmup(batch_size, 0)
    }

    /// Creates an accumulator that discards the first `warmup` observations
    /// (initial-transient deletion).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn with_warmup(batch_size: u64, warmup: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current: OnlineStats::new(),
            batch_means: OnlineStats::new(),
            warmup_remaining: warmup,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if self.warmup_remaining > 0 {
            self.warmup_remaining -= 1;
            return;
        }
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = OnlineStats::new();
        }
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// Grand mean over completed batches (0 if none completed yet).
    pub fn mean(&self) -> f64 {
        self.batch_means.mean()
    }

    /// Confidence interval over the batch means.
    ///
    /// # Errors
    ///
    /// Returns [`CiError::TooFewObservations`] with fewer than two completed
    /// batches.
    pub fn confidence_interval(&self, level: f64) -> Result<ConfidenceInterval, CiError> {
        ConfidenceInterval::from_stats(&self.batch_means, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_fill_and_complete() {
        let mut bm = BatchMeans::new(5);
        for i in 0..12 {
            bm.push(i as f64);
        }
        assert_eq!(bm.completed_batches(), 2);
        // Batch means: mean(0..5) = 2, mean(5..10) = 7.
        assert_eq!(bm.mean(), 4.5);
    }

    #[test]
    fn warmup_discards() {
        let mut bm = BatchMeans::with_warmup(2, 3);
        for x in [100.0, 100.0, 100.0, 1.0, 3.0] {
            bm.push(x);
        }
        assert_eq!(bm.completed_batches(), 1);
        assert_eq!(bm.mean(), 2.0);
    }

    #[test]
    fn ci_requires_two_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..10 {
            bm.push(i as f64);
        }
        assert!(bm.confidence_interval(0.95).is_err());
        for i in 0..10 {
            bm.push(i as f64);
        }
        assert!(bm.confidence_interval(0.95).is_ok());
    }

    #[test]
    fn iid_stream_recovers_mean() {
        use itua_sim::dist::{Distribution, Exponential};
        use itua_sim::rng::Rng;
        let d = Exponential::new(0.5).unwrap(); // mean 2
        let mut rng = Rng::seed_from_u64(77);
        let mut bm = BatchMeans::with_warmup(500, 100);
        for _ in 0..20_600 {
            bm.push(d.sample(&mut rng));
        }
        let ci = bm.confidence_interval(0.95).unwrap();
        assert!(ci.contains(2.0), "{ci}");
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_panics() {
        let _ = BatchMeans::new(0);
    }
}

//! Statistical estimation for simulation output analysis.
//!
//! Möbius reports each reward variable as a point estimate with a
//! confidence interval computed over independent replications. This crate
//! provides the same machinery:
//!
//! * [`online`] — numerically stable streaming moments (Welford).
//! * [`timeweighted`] — integrals of piecewise-constant sample paths, for
//!   interval-of-time (time-averaged) reward variables.
//! * [`special`] — special functions (log-gamma, incomplete beta, normal
//!   quantile) implemented from scratch.
//! * [`tdist`] — Student-t CDF and quantiles built on [`special`].
//! * [`ci`] — confidence intervals over replicate observations.
//! * [`replication`] — a multi-measure replication harness with
//!   relative-precision stopping.
//! * [`batch`] — batch-means estimation for steady-state measures.
//! * [`histogram`] — fixed-bin histograms and exact percentiles.
//! * [`weighted`] — weight-carrying moments for importance-splitting
//!   estimators, bit-compatible with [`online`] at weight 1.
//!
//! # Example
//!
//! ```
//! use itua_stats::ci::ConfidenceInterval;
//!
//! let obs = [0.9, 1.1, 1.0, 0.95, 1.05];
//! let ci = ConfidenceInterval::from_observations(&obs, 0.95).unwrap();
//! assert!((ci.mean - 1.0).abs() < 1e-12);
//! assert!(ci.half_width > 0.0 && ci.half_width < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod ci;
pub mod histogram;
pub mod online;
pub mod replication;
pub mod special;
pub mod tdist;
pub mod timeweighted;
pub mod weighted;

pub use ci::ConfidenceInterval;
pub use online::OnlineStats;
pub use replication::{Estimate, ReplicationEstimator, Weighting};
pub use timeweighted::TimeWeighted;
pub use weighted::WeightedStats;

//! Weighted streaming moments for importance-splitting estimators.
//!
//! Importance splitting (RESTART) produces observations that carry
//! likelihood weights: a branch that survived `k` splits of factor `R`
//! contributes its value with weight `R^-k`. [`WeightedStats`] accumulates
//! such `(value, weight)` pairs with a weighted Welford recurrence and
//! reports the weighted mean, the reliability-weights sample variance, and
//! the effective sample size `n_eff = (Σw)² / Σw²` used for t-intervals.
//!
//! The recurrence is arranged so that a stream of weight-`1.0` pushes is
//! **bit-identical** to [`OnlineStats`](crate::online::OnlineStats): every
//! intermediate expression evaluates to the exact same sequence of floating
//! point operations (`w * delta / w1` with `w == 1.0` multiplies by an
//! exact `1.0` and divides by the exact integer-valued `Σw`). This is what
//! lets the splitting path degenerate to the plain replication path when no
//! split ever fires, and it is pinned by the `weighted_collapse` property
//! tests.

use crate::online::OnlineStats;

/// Streaming weighted mean/variance/min/max accumulator.
///
/// # Example
///
/// ```
/// use itua_stats::weighted::WeightedStats;
///
/// let mut s = WeightedStats::new();
/// s.push(1.0, 0.25);
/// s.push(0.0, 0.75);
/// assert!((s.mean() - 0.25).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedStats {
    count: u64,
    w1: f64,
    w2: f64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl WeightedStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WeightedStats {
            count: 0,
            w1: 0.0,
            w2: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation of `x` carrying weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or `w` is not a finite positive number (a bad
    /// weight silently corrupts every later statistic, so it is rejected
    /// loudly, mirroring [`OnlineStats::push`]).
    pub fn push(&mut self, x: f64, w: f64) {
        assert!(!x.is_nan(), "NaN observation");
        assert!(
            w.is_finite() && w > 0.0,
            "weight must be finite and > 0, got {w}"
        );
        self.count += 1;
        self.w1 += w;
        self.w2 += w * w;
        let delta = x - self.mean;
        self.mean += w * delta / self.w1;
        let delta2 = x - self.mean;
        self.m2 += w * delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations pushed so far (unweighted count).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total weight `Σw`.
    pub fn total_weight(&self) -> f64 {
        self.w1
    }

    /// Effective sample size `(Σw)² / Σw²` (0 when empty). Equals
    /// [`WeightedStats::count`] when every weight is identical.
    pub fn n_eff(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.w1 * self.w1 / self.w2
        }
    }

    /// Weighted sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased (reliability-weights) sample variance
    /// `Σw(x-mean)² / (Σw − Σw²/Σw)`; `None` with fewer than two
    /// observations. Collapses to [`OnlineStats::sample_variance`] at
    /// weight 1.
    pub fn sample_variance(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some(self.m2 / (self.w1 - self.w2 / self.w1))
        }
    }

    /// Standard error of the weighted mean, `sqrt(variance / n_eff)`;
    /// `None` with fewer than two observations.
    pub fn std_error(&self) -> Option<f64> {
        self.sample_variance().map(|v| (v / self.n_eff()).sqrt())
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel weighted
    /// Welford). The arithmetic mirrors [`OnlineStats::merge`] with `Σw`
    /// standing in for the count, so merging weight-1 accumulators stays
    /// bit-identical to the unweighted merge.
    pub fn merge(&mut self, other: &WeightedStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let delta = other.mean - self.mean;
        let total = self.w1 + other.w1;
        self.mean += delta * other.w1 / total;
        self.m2 += other.m2 + delta * delta * self.w1 * other.w1 / total;
        self.w1 = total;
        self.w2 += other.w2;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Whether this accumulator is bitwise identical to `other` under the
    /// weight-1 embedding (same count, mean, second moment, min, max).
    /// Test/diagnostic helper for the collapse property.
    pub fn collapses_to(&self, other: &OnlineStats) -> bool {
        self.count == other.count()
            && self.mean.to_bits() == other.mean().to_bits()
            && self.min() == other.min()
            && self.max() == other.max()
            && self.sample_variance().map(f64::to_bits) == other.sample_variance().map(f64::to_bits)
            && self.std_error().map(f64::to_bits) == other.std_error().map(f64::to_bits)
    }
}

impl Default for WeightedStats {
    fn default() -> Self {
        // Same caveat as OnlineStats: a derived Default would zero min/max
        // instead of using the identity elements of min/max.
        WeightedStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = WeightedStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.total_weight(), 0.0);
        assert_eq!(s.n_eff(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn weighted_mean_matches_direct_computation() {
        let data = [(2.0, 0.5), (4.0, 1.5), (10.0, 0.25), (-1.0, 3.0)];
        let mut s = WeightedStats::new();
        for (x, w) in data {
            s.push(x, w);
        }
        let wsum: f64 = data.iter().map(|(_, w)| w).sum();
        let mean = data.iter().map(|(x, w)| x * w).sum::<f64>() / wsum;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert_eq!(s.total_weight(), wsum);
        let m2 = data
            .iter()
            .map(|(x, w)| w * (x - mean).powi(2))
            .sum::<f64>();
        let w2: f64 = data.iter().map(|(_, w)| w * w).sum();
        let var = m2 / (wsum - w2 / wsum);
        assert!((s.sample_variance().unwrap() - var).abs() < 1e-12);
    }

    #[test]
    fn n_eff_equals_count_for_equal_weights() {
        let mut s = WeightedStats::new();
        for i in 0..100 {
            s.push(i as f64, 0.25);
        }
        assert!((s.n_eff() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weight_one_collapses_to_online_stats() {
        let mut w = WeightedStats::new();
        let mut o = OnlineStats::new();
        for i in 0..1000 {
            let x = (i as f64 * 0.37).sin() * 1e3;
            w.push(x, 1.0);
            o.push(x);
        }
        assert!(w.collapses_to(&o));
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<(f64, f64)> = (0..200)
            .map(|i| ((i as f64).sqrt(), 0.1 + (i % 7) as f64))
            .collect();
        let (a_data, b_data) = data.split_at(73);
        let mut a = WeightedStats::new();
        for &(x, w) in a_data {
            a.push(x, w);
        }
        let mut b = WeightedStats::new();
        for &(x, w) in b_data {
            b.push(x, w);
        }
        let mut whole = WeightedStats::new();
        for &(x, w) in &data {
            whole.push(x, w);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.total_weight() - whole.total_weight()).abs() < 1e-9);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.sample_variance().unwrap() - whole.sample_variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = WeightedStats::new();
        a.push(1.0, 2.0);
        a.push(3.0, 0.5);
        let before = a.clone();
        a.merge(&WeightedStats::new());
        assert_eq!(a, before);

        let mut e = WeightedStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        WeightedStats::new().push(f64::NAN, 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_weight_rejected() {
        WeightedStats::new().push(1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        WeightedStats::new().push(1.0, -0.5);
    }

    #[test]
    #[should_panic]
    fn infinite_weight_rejected() {
        WeightedStats::new().push(1.0, f64::INFINITY);
    }
}

//! Fixed-bin histograms and exact percentiles.

use std::fmt;

/// A histogram with equal-width bins over `[low, high)` plus under/overflow
/// counters.
///
/// # Example
///
/// ```
/// use itua_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [0.5, 1.5, 2.5, 2.6, 11.0] {
///     h.record(x);
/// }
/// assert_eq!(h.bin_count(0), 2); // [0,2): 0.5 and 1.5
/// assert_eq!(h.bin_count(1), 2); // [2,4): 2.5 and 2.6
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

/// Error constructing a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramError;

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "histogram needs finite low < high and at least one bin")
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` equal bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError`] if the bounds are not finite and ordered
    /// or `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self, HistogramError> {
        if !low.is_finite() || !high.is_finite() || low >= high || bins == 0 {
            return Err(HistogramError);
        }
        Ok(Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Records an observation.
    ///
    /// NaN observations are counted as overflow (they are out of range of
    /// every bin) so that `total` stays consistent.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x.is_nan() || x >= self.high {
            self.overflow += 1;
        } else if x < self.low {
            self.underflow += 1;
        } else {
            let width = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// `[low, high)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.high - self.low) / self.bins.len() as f64;
        (
            self.low + i as f64 * width,
            self.low + (i + 1) as f64 * width,
        )
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range (including NaN).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another histogram's counts into this one.
    ///
    /// Both histograms must have identical ranges and bin counts (counts
    /// from differently-binned histograms cannot be combined losslessly).
    /// Intended for parallel reduction: each worker fills a local
    /// histogram and the shards are merged afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError`] if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), HistogramError> {
        if self.low != other.low || self.high != other.high || self.bins.len() != other.bins.len() {
            return Err(HistogramError);
        }
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        Ok(())
    }
}

/// Exact percentile of a sample (linear interpolation between order
/// statistics, the "type 7" definition used by most statistics packages).
///
/// Returns `None` for an empty sample or a `q` outside `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_errors() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 2).is_err());
    }

    #[test]
    fn binning_at_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.0); // first bin, inclusive low edge
        h.record(9.999); // last bin
        h.record(10.0); // overflow (exclusive high edge)
        h.record(-0.001); // underflow
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn nan_counts_as_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(f64::NAN);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn bin_edges_cover_range() {
        let h = Histogram::new(2.0, 4.0, 4).unwrap();
        assert_eq!(h.bin_edges(0), (2.0, 2.5));
        assert_eq!(h.bin_edges(3), (3.5, 4.0));
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let mut b = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.5, 3.0, 11.0] {
            a.record(x);
        }
        for x in [-1.0, 0.7, 9.9] {
            b.record(x);
        }
        a.merge(&b).unwrap();
        let mut whole = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.5, 3.0, 11.0, -1.0, 0.7, 9.9] {
            whole.record(x);
        }
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        assert!(a.merge(&Histogram::new(0.0, 10.0, 4).unwrap()).is_err());
        assert!(a.merge(&Histogram::new(0.0, 9.0, 5).unwrap()).is_err());
        assert!(a.merge(&Histogram::new(1.0, 10.0, 5).unwrap()).is_err());
    }

    #[test]
    fn percentile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert_eq!(percentile(&xs, 0.25), Some(2.0));
        // Interpolated.
        assert_eq!(percentile(&xs, 0.1), Some(1.4));
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
        assert_eq!(percentile(&[1.0, 2.0], 1.5), None);
        assert_eq!(percentile(&[1.0, 2.0], -0.1), None);
    }
}

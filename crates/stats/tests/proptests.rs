//! Property-based tests for the statistics crate.

use itua_stats::batch::BatchMeans;
use itua_stats::histogram::percentile;
use itua_stats::online::OnlineStats;
use itua_stats::tdist::{t_cdf, t_quantile};
use itua_stats::timeweighted::TimeWeighted;
use proptest::prelude::*;

proptest! {
    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((s.sample_variance().unwrap() - var).abs() / scale.powi(2) < 1e-6);
        prop_assert_eq!(s.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging partitions equals processing the whole stream.
    #[test]
    fn merge_equals_sequential(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let (left, right) = xs.split_at(split);
        let mut merged: OnlineStats = left.iter().copied().collect();
        merged.merge(&right.iter().copied().collect());
        let whole: OnlineStats = xs.iter().copied().collect();
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-8 * (1.0 + whole.mean().abs()));
    }

    /// The t quantile is monotone in p and inverts the CDF.
    #[test]
    fn t_quantile_monotone_and_inverse(df in 1.0f64..200.0, p in 0.01f64..0.99) {
        let q = t_quantile(p, df);
        prop_assert!((t_cdf(q, df) - p).abs() < 1e-8);
        let q2 = t_quantile((p + 0.005).min(0.995), df);
        prop_assert!(q2 >= q);
    }

    /// Percentiles lie within the sample range and are monotone in q.
    #[test]
    fn percentile_bounds(mut xs in prop::collection::vec(-1e6f64..1e6, 1..100), q in 0.0f64..1.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p = percentile(&xs, q).unwrap();
        prop_assert!(p >= xs[0] && p <= xs[xs.len() - 1]);
        let p2 = percentile(&xs, (q + 0.05).min(1.0)).unwrap();
        prop_assert!(p2 >= p);
    }

    /// The time-weighted mean lies between the extreme levels.
    #[test]
    fn timeweighted_mean_bounded(
        levels in prop::collection::vec(0.0f64..100.0, 1..50),
        gaps in prop::collection::vec(1e-3f64..10.0, 1..50),
    ) {
        let mut tw = TimeWeighted::new(0.0, levels[0]);
        let mut t = 0.0;
        for (lvl, gap) in levels.iter().skip(1).zip(&gaps) {
            t += gap;
            tw.set(t, *lvl);
        }
        let end = t + 1.0;
        let mean = tw.mean_until(end);
        let lo = levels.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = levels.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    /// Batch means: grand mean equals the mean of the consumed prefix.
    #[test]
    fn batch_means_grand_mean(xs in prop::collection::vec(-100.0f64..100.0, 10..300), bs in 1u64..20) {
        let mut bm = BatchMeans::new(bs);
        for &x in &xs {
            bm.push(x);
        }
        let consumed = (xs.len() as u64 / bs * bs) as usize;
        prop_assume!(consumed > 0);
        let expected = xs[..consumed].iter().sum::<f64>() / consumed as f64;
        prop_assert!((bm.mean() - expected).abs() < 1e-9 * (1.0 + expected.abs()));
    }
}

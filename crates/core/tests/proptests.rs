//! Property-based tests of the ITUA model over random configurations.

use itua_core::des::ItuaDes;
use itua_core::params::{ManagementScheme, Params};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = Params> {
    (
        1usize..6,       // domains
        1usize..4,       // hosts per domain
        1usize..4,       // apps
        1usize..6,       // replicas
        prop::bool::ANY, // scheme
        0.0f64..10.0,    // spread
        1.0f64..6.0,     // corruption multiplier
    )
        .prop_map(|(d, h, a, r, host_scheme, spread, mult)| {
            let scheme = if host_scheme {
                ManagementScheme::HostExclusion
            } else {
                ManagementScheme::DomainExclusion
            };
            Params::default()
                .with_domains(d, h)
                .with_applications(a, r)
                .with_scheme(scheme)
                .with_spread_rate(spread)
                .with_host_corruption_multiplier(mult)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every run over any valid configuration produces well-formed output.
    #[test]
    fn run_output_is_well_formed(params in arb_params(), seed in any::<u64>()) {
        let des = ItuaDes::new(params.clone()).unwrap();
        let horizon = 8.0;
        let out = des.run(seed, horizon, &[2.0, 5.0, 8.0]);

        let u = out.unavailability(horizon);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "unavailability {u}");
        let r = out.unreliability();
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(out.improper_time_per_app.len(), params.num_apps);
        for &it in &out.improper_time_per_app {
            prop_assert!((0.0..=horizon + 1e-9).contains(&it));
        }
        for &f in &out.exclusion_corrupt_fractions {
            prop_assert!((0.0..=1.0).contains(&f));
        }
        // Snapshots: excluded fraction monotone, replicas within bounds.
        let fracs: Vec<f64> = out.snapshots.iter().map(|s| s.frac_domains_excluded).collect();
        prop_assert!(fracs.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        for s in &out.snapshots {
            prop_assert!(s.mean_replicas_running >= 0.0);
            prop_assert!(s.mean_replicas_running <= params.reps_per_app as f64 + 1e-9);
            prop_assert!(s.load_per_host >= 0.0);
        }
        // Host scheme never excludes whole domains.
        if params.scheme == ManagementScheme::HostExclusion {
            prop_assert!(out.exclusion_corrupt_fractions.is_empty());
        }
    }

    /// Runs are deterministic in the seed.
    #[test]
    fn runs_deterministic(params in arb_params(), seed in any::<u64>()) {
        let des = ItuaDes::new(params).unwrap();
        let a = des.run(seed, 5.0, &[5.0]);
        let b = des.run(seed, 5.0, &[5.0]);
        prop_assert_eq!(a, b);
    }

    /// A scratch reused across many replications produces byte-identical
    /// output to a fresh-state run for every (params, seed): the scratch
    /// is an allocation cache, not a communication channel.
    #[test]
    fn reused_scratch_is_byte_identical_to_fresh_runs(
        params in arb_params(),
        seeds in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let des = ItuaDes::new(params).unwrap();
        let mut scratch = des.scratch();
        for seed in seeds {
            let reused = des.run_into(seed, 6.0, &[2.0, 6.0], &mut scratch);
            let fresh = des.run(seed, 6.0, &[2.0, 6.0]);
            prop_assert_eq!(reused, fresh, "seed {}", seed);
        }
    }

    /// The Byzantine flag implies nonzero improper time.
    #[test]
    fn byzantine_implies_improper_time(params in arb_params(), seed in 0u64..500) {
        let des = ItuaDes::new(params).unwrap();
        let out = des.run(seed, 8.0, &[]);
        for (it, &byz) in out.improper_time_per_app.iter().zip(&out.byzantine_per_app) {
            if byz {
                prop_assert!(*it > 0.0, "byzantine app with zero improper time");
            }
        }
    }
}

//! Importance level functions for RESTART-style splitting on the ITUA
//! model.
//!
//! A level function maps a mid-run simulator state to a non-negative
//! importance level; the splitting scheduler in `itua-rare` forks a run
//! whenever the level crosses a configured threshold upward and plays
//! Russian roulette when it falls back. The level function is purely a
//! variance-reduction steering wheel: a bad choice wastes effort but can
//! never bias the estimator.
//!
//! [`CorruptDomainCount`] is the level function the paper's unreliability
//! tail calls for: an application suffers a Byzantine failure only after
//! the attacker corrupts replicas in at least a third of the running
//! group, which requires compromising (or excluding) several security
//! domains first. The number of corrupt-or-excluded domains is therefore
//! a natural progress coordinate toward the rare event, and it is cheap
//! to evaluate on both the direct DES state and the SAN marking.

use crate::des::DesStateView;
use crate::san_exec::SanStateView;
use itua_rare::LevelFn;

/// Importance level = number of security domains that are excluded or
/// currently contain a compromised host (DES: host OS or manager; SAN:
/// host OS or manager — replica-only corruption is visible to the DES
/// view but not the SAN view, see
/// [`SanStateView::corrupt_domain_count`]).
///
/// Works with both backends: implements
/// [`LevelFn`] over [`DesStateView`] and [`SanStateView`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptDomainCount;

impl<'s> LevelFn<DesStateView<'s>> for CorruptDomainCount {
    fn level(&self, state: &DesStateView<'s>) -> u32 {
        state.corrupt_domain_count()
    }
}

impl<'s> LevelFn<SanStateView<'s>> for CorruptDomainCount {
    fn level(&self, state: &SanStateView<'s>) -> u32 {
        state.corrupt_domain_count()
    }
}

//! The composed stochastic activity network of the paper's Figure 2.
//!
//! Structure (Figure 2(a)):
//!
//! ```text
//! Join1(
//!   Rep1(num_apps, Join2( Rep(num_reps, Replica), Management )),
//!   Rep2(num_domains, RepH(num_hosts, Host)),
//! )
//! ```
//!
//! The `Replica`, `Host`, and `Management` atomic SANs communicate through
//! globally shared places exactly as in the paper (§3.2–3.4), with one
//! robustness improvement: where the paper packs application identifiers
//! into bit-vector places (one bit per application, hence its 15-app
//! limit), this encoding uses one *counter place per application*
//! (`to_start_3`, `kill_clean_2`, …). Counters cannot lose concurrent
//! updates the way bit flips can, while keeping the same anonymous
//! hand-shake protocol: a host that starts/kills a replica increments the
//! application's counter, and *some* (uniformly chosen) matching Replica
//! submodel of that application consumes it — the paper's
//! "identical copies equally likely to fire first" rule. The
//! exchangeability of replica submodels makes the anonymous matching
//! distributionally equivalent to tracking identities.
//!
//! Spread levels are stored in tenths (integer places), so the paper's
//! system-wide spread variable 0.1 is representable exactly.
//!
//! The recovery activity of the Management SAN is timed with a very high
//! rate rather than instantaneous, which orders it after the zero-time
//! exclusion cascade — matching the direct DES implementation, which
//! performs exclusions before recoveries within one logical instant.

use crate::params::{ManagementScheme, Params, ParamsError, PlacementConstraint};
use itua_san::compose::{ComposedModel, Node, SanTemplate, SharedPlace, SubnetBuilder};
use itua_san::marking::{Marking, PlaceId};
use itua_san::model::{San, SanError};
use std::sync::Arc;

/// Rate standing in for "immediately after the zero-time response"
/// (mean 3.6 seconds on the one-hour time unit).
const RECOVERY_RATE: f64 = 1000.0;

/// Resolution of the integer spread-level places (tenths).
const SPREAD_SCALE: f64 = 10.0;

/// Handles to the places measures need, resolved on the flattened SAN.
#[derive(Debug, Clone)]
pub struct ItuaSanPlaces {
    /// Per application: `replicas_running`.
    pub running: Vec<PlaceId>,
    /// Per application: `rep_corr_undetected`.
    pub corrupt: Vec<PlaceId>,
    /// Number of excluded domains (system-wide counter).
    pub excluded_domains: PlaceId,
    /// Per domain: `dom_excluded` (1 once the domain is formally excluded).
    pub domain_excluded: Vec<PlaceId>,
    /// Per domain: `dom_active_hosts`.
    pub domain_active_hosts: Vec<PlaceId>,
    /// Per domain: `dom_excl_corrupt`, a measure-only accumulator counting
    /// hosts that were compromised (host OS or manager) when the domain
    /// exclusion shut them down. No predicate or rate reads it, so it never
    /// affects the dynamics. Note it cannot see replica-only corruption —
    /// a convicted replica leaves its host before the exclusion cascade —
    /// so it is a slight undercount relative to the DES measure.
    pub domain_excl_corrupt: Vec<PlaceId>,
    /// Per domain: `dom_corrupt_hosts`, the number of active hosts in the
    /// domain whose OS is currently compromised. Used by the rare-event
    /// importance level function.
    pub domain_corrupt_hosts: Vec<PlaceId>,
    /// Per domain: `dom_mgrs_corrupt`, the number of corrupt ITUA managers
    /// in the domain. Used by the rare-event importance level function.
    pub domain_mgrs_corrupt: Vec<PlaceId>,
}

impl ItuaSanPlaces {
    /// Whether application `a`'s service is improper in `marking`
    /// (Byzantine fault, or no replica running).
    pub fn improper(&self, marking: &Marking, a: usize) -> bool {
        let n = marking.get(self.running[a]);
        let c = marking.get(self.corrupt[a]);
        n == 0 || (c > 0 && 3 * c >= n)
    }

    /// Whether application `a` currently suffers a Byzantine fault.
    pub fn byzantine(&self, marking: &Marking, a: usize) -> bool {
        let n = marking.get(self.running[a]);
        let c = marking.get(self.corrupt[a]);
        c > 0 && 3 * c >= n
    }

    /// Mean fraction of applications with improper service.
    pub fn improper_fraction(&self, marking: &Marking) -> f64 {
        let hits = (0..self.running.len())
            .filter(|&a| self.improper(marking, a))
            .count();
        hits as f64 / self.running.len() as f64
    }
}

/// The flattened ITUA SAN together with its measure places.
#[derive(Debug, Clone)]
pub struct ItuaSan {
    /// The solvable flattened model.
    pub san: Arc<San>,
    /// Resolved measure places.
    pub places: ItuaSanPlaces,
    /// The parameters the model was built from.
    pub params: Params,
}

/// Builds the composed ITUA SAN for `params`.
///
/// # Errors
///
/// Returns [`ParamsError`] wrapped in [`SanError::BadValue`]… no — returns
/// [`SanError`] for construction problems; parameters are validated first
/// and invalid parameters surface as [`BuildError::Params`].
pub fn build(params: &Params) -> Result<ItuaSan, BuildError> {
    params.validate().map_err(BuildError::Params)?;
    let p = Arc::new(params.clone());
    let num_apps = p.num_apps;

    // ---- shared place inventories -------------------------------------
    let mut global_shared = Vec::new();
    for a in 0..num_apps {
        // Initial placement: every application starts with `reps_per_app`
        // replicas waiting for hosts.
        global_shared.push(SharedPlace::new(
            format!("to_start_{a}"),
            p.reps_per_app as i32,
        ));
        for name in [
            "started_clean",
            "started_corrupt",
            "affected",
            "kill_clean",
            "kill_corrupt",
            "rep_detected_clean",
            "rep_detected_corrupt",
        ] {
            global_shared.push(SharedPlace::new(format!("{name}_{a}"), 0));
        }
    }
    global_shared.push(SharedPlace::new("mgrs_active_sys", p.total_hosts() as i32));
    global_shared.push(SharedPlace::new("mgrs_corrupt_sys", 0));
    global_shared.push(SharedPlace::new("excluded_domains_sys", 0));
    global_shared.push(SharedPlace::new("sys_spread_level", 0));

    let app_shared = vec![
        SharedPlace::new("replicas_running", 0),
        SharedPlace::new("rep_corr_undetected", 0),
        SharedPlace::new("need_recovery", 0),
    ];

    let mut domain_shared = vec![
        SharedPlace::new("dom_excluding", 0),
        SharedPlace::new("dom_excluded", 0),
        SharedPlace::new("dom_active_hosts", p.hosts_per_domain as i32),
        SharedPlace::new("dom_mgrs_active", p.hosts_per_domain as i32),
        SharedPlace::new("dom_mgrs_corrupt", 0),
        SharedPlace::new("dom_corrupt_hosts", 0),
        SharedPlace::new("dom_spread_level", 0),
        SharedPlace::new("dom_excl_corrupt", 0),
    ];
    for a in 0..num_apps {
        domain_shared.push(SharedPlace::new(format!("dom_has_app_{a}"), 0));
    }

    // ---- composed-model tree (Figure 2(a)) -----------------------------
    let replica_tpl: Arc<dyn SanTemplate> = Arc::new(ReplicaTemplate { p: p.clone() });
    let mgmt_tpl: Arc<dyn SanTemplate> = Arc::new(ManagementTemplate);
    let host_tpl: Arc<dyn SanTemplate> = Arc::new(HostTemplate { p: p.clone() });

    let tree = Node::join(
        "itua",
        global_shared,
        vec![
            Node::rep(
                "apps",
                num_apps,
                vec![],
                Node::join(
                    "app",
                    app_shared,
                    vec![
                        Node::rep(
                            "replicas",
                            p.reps_per_app,
                            vec![],
                            Node::atomic("replica", replica_tpl),
                        ),
                        Node::atomic("mgmt", mgmt_tpl),
                    ],
                ),
            ),
            Node::rep(
                "domains",
                p.num_domains,
                vec![],
                Node::rep(
                    "hosts",
                    p.hosts_per_domain,
                    domain_shared,
                    Node::atomic("host", host_tpl),
                ),
            ),
        ],
    );

    let san = ComposedModel::new("itua", tree)
        .flatten()
        .map_err(BuildError::San)?;

    // Resolve measure places on the flattened model.
    let mut running = Vec::with_capacity(num_apps);
    let mut corrupt = Vec::with_capacity(num_apps);
    for a in 0..num_apps {
        running.push(
            san.place_id(&format!("itua/apps[{a}]/app/replicas_running"))
                .expect("replicas_running place exists"),
        );
        corrupt.push(
            san.place_id(&format!("itua/apps[{a}]/app/rep_corr_undetected"))
                .expect("rep_corr_undetected place exists"),
        );
    }
    let excluded_domains = san
        .place_id("itua/excluded_domains_sys")
        .expect("excluded_domains_sys place exists");
    let mut domain_excluded = Vec::with_capacity(p.num_domains);
    let mut domain_active_hosts = Vec::with_capacity(p.num_domains);
    let mut domain_excl_corrupt = Vec::with_capacity(p.num_domains);
    let mut domain_corrupt_hosts = Vec::with_capacity(p.num_domains);
    let mut domain_mgrs_corrupt = Vec::with_capacity(p.num_domains);
    for d in 0..p.num_domains {
        domain_excluded.push(
            san.place_id(&format!("itua/domains[{d}]/hosts/dom_excluded"))
                .expect("dom_excluded place exists"),
        );
        domain_active_hosts.push(
            san.place_id(&format!("itua/domains[{d}]/hosts/dom_active_hosts"))
                .expect("dom_active_hosts place exists"),
        );
        domain_excl_corrupt.push(
            san.place_id(&format!("itua/domains[{d}]/hosts/dom_excl_corrupt"))
                .expect("dom_excl_corrupt place exists"),
        );
        domain_corrupt_hosts.push(
            san.place_id(&format!("itua/domains[{d}]/hosts/dom_corrupt_hosts"))
                .expect("dom_corrupt_hosts place exists"),
        );
        domain_mgrs_corrupt.push(
            san.place_id(&format!("itua/domains[{d}]/hosts/dom_mgrs_corrupt"))
                .expect("dom_mgrs_corrupt place exists"),
        );
    }

    Ok(ItuaSan {
        san,
        places: ItuaSanPlaces {
            running,
            corrupt,
            excluded_domains,
            domain_excluded,
            domain_active_hosts,
            domain_excl_corrupt,
            domain_corrupt_hosts,
            domain_mgrs_corrupt,
        },
        params: params.clone(),
    })
}

/// Error from building the ITUA SAN.
#[derive(Debug)]
pub enum BuildError {
    /// The parameter set was invalid.
    Params(ParamsError),
    /// The SAN construction failed (internal error).
    San(SanError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Params(e) => write!(f, "{e}"),
            BuildError::San(e) => write!(f, "SAN construction failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

// ---------------------------------------------------------------------
// Replica atomic SAN (paper §3.2, Figure 2(b))
// ---------------------------------------------------------------------

struct ReplicaTemplate {
    p: Arc<Params>,
}

impl SanTemplate for ReplicaTemplate {
    fn build(&self, b: &mut SubnetBuilder<'_>) -> Result<(), SanError> {
        let p = &self.p;
        let a = b.rep_indices()[0]; // which application this replica belongs to

        // Local state.
        let has_started = b.place("has_started", 0);
        let host_corrupt = b.place("host_corrupt", 0);
        let corrupted = b.place("replica_attacked", 0);
        let convicted = b.place("convicted", 0);
        let ids_flag = b.place("ids_will_detect", 0);

        // Application-level shared state.
        let running = b.place("replicas_running", 0);
        let corr = b.place("rep_corr_undetected", 0);
        let need_recovery = b.place("need_recovery", 0);

        // Global handshake counters for this application.
        let started_clean = b.place(&format!("started_clean_{a}"), 0);
        let started_corrupt = b.place(&format!("started_corrupt_{a}"), 0);
        let affected = b.place(&format!("affected_{a}"), 0);
        let kill_clean = b.place(&format!("kill_clean_{a}"), 0);
        let kill_corrupt = b.place(&format!("kill_corrupt_{a}"), 0);
        let det_clean = b.place(&format!("rep_detected_clean_{a}"), 0);
        let det_corrupt = b.place(&format!("rep_detected_corrupt_{a}"), 0);

        // enable_rep: one idle replica submodel claims a start notice
        // published by a host (paper: "one of the Replica submodels … is
        // randomly chosen to be the replica started").
        for (name, pool, corrupt_host) in [
            ("enable_rep_clean", started_clean, 0),
            ("enable_rep_corrupt", started_corrupt, 1),
        ] {
            b.instantaneous_activity(name)
                .input_arc(pool, 1)
                .predicate(&[has_started], move |m| m.get(has_started) == 0)
                .input_gate(
                    &[],
                    |_| true,
                    move |m| {
                        m.set(has_started, 1);
                        m.set(host_corrupt, corrupt_host);
                        m.add(running, 1);
                    },
                )
                .build()?;
        }

        // prop_host_corr: the replica's host has been corrupted.
        b.instantaneous_activity("prop_host_corr")
            .input_arc(affected, 1)
            .predicate(&[has_started, host_corrupt], move |m| {
                m.get(has_started) == 1 && m.get(host_corrupt) == 0
            })
            .input_gate(&[], |_| true, move |m| m.set(host_corrupt, 1))
            .build()?;

        // attack_rep: successful attack on the replica. Two cases: the IDS
        // will eventually detect it (p = detect_replica) or never will.
        let base_rate = p.replica_attack_rate();
        let corrupt_rate = p.corrupt_host_replica_rate();
        let rate_deps = [has_started, corrupted, host_corrupt];
        let hs = has_started;
        let co = corrupted;
        let hc = host_corrupt;
        b.timed_activity_fn(
            "attack_rep",
            Arc::new(move |m| {
                if m.get(hs) == 1 && m.get(co) == 0 {
                    if m.get(hc) == 1 {
                        corrupt_rate
                    } else {
                        base_rate
                    }
                } else {
                    0.0
                }
            }),
            &rate_deps,
        )
        .predicate(&[has_started, corrupted], move |m| {
            m.get(hs) == 1 && m.get(co) == 0
        })
        .case(p.detect_replica, move |m| {
            m.set(co, 1);
            m.add(corr, 1);
            m.set(ids_flag, 1);
        })
        .case(1.0 - p.detect_replica, move |m| {
            m.set(co, 1);
            m.add(corr, 1);
        })
        .build()?;

        // Conviction channels. Each uses the same output: the replica is
        // convicted, leaves the group, and the conviction is reported to
        // the host layer (carrying the host-corruption state so the right
        // host consumes it).
        let convict = move |m: &mut Marking| {
            m.set(convicted, 0); // transient marker, reset below
            m.add(corr, -1);
            m.add(running, -1);
            m.add(need_recovery, 1);
            if m.get(host_corrupt) == 1 {
                m.add(det_corrupt, 1);
            } else {
                m.add(det_clean, 1);
            }
            // Reset the slot so it can host a future replica.
            m.set(has_started, 0);
            m.set(host_corrupt, 0);
            m.set(corrupted, 0);
            m.set(ids_flag, 0);
        };

        // valid_ID: IDS detection (pre-decided by the attack case).
        b.timed_activity_fn(
            "valid_ID",
            Arc::new({
                let ids = p.ids_rate;
                move |_| ids
            }),
            &[],
        )
        .predicate(&[ids_flag, corrupted, convicted, has_started], move |m| {
            m.get(ids_flag) == 1 && m.get(corrupted) == 1 && m.get(has_started) == 1
        })
        .input_gate(&[], |_| true, convict)
        .build()?;

        // false_ID: the paper-literal replica false-alarm channel, enabled
        // only once the replica has actually been intruded.
        let fa_rate = p.replica_false_alarm_rate();
        if fa_rate > 0.0 {
            b.timed_activity("false_ID", fa_rate)
                .predicate(&[corrupted, has_started], move |m| {
                    m.get(corrupted) == 1 && m.get(has_started) == 1
                })
                .input_gate(&[], |_| true, convict)
                .build()?;
        }

        // rep_misbehave: conviction by the replication group, possible only
        // while fewer than a third of the running replicas are corrupt.
        b.timed_activity("rep_misbehave", p.misbehave_rate)
            .predicate(&[corrupted, has_started, running, corr], move |m| {
                m.get(corrupted) == 1 && m.get(has_started) == 1 && 3 * m.get(corr) < m.get(running)
            })
            .input_gate(&[], |_| true, convict)
            .build()?;

        // kill_replica: this host/domain is being shut down.
        for (name, pool, flag) in [
            ("kill_replica_clean", kill_clean, 0),
            ("kill_replica_corrupt", kill_corrupt, 1),
        ] {
            b.instantaneous_activity(name)
                .input_arc(pool, 1)
                .predicate(&[has_started, host_corrupt], move |m| {
                    m.get(has_started) == 1 && m.get(host_corrupt) == flag
                })
                .input_gate(
                    &[],
                    |_| true,
                    move |m| {
                        if m.get(corrupted) == 1 {
                            m.add(corr, -1);
                        }
                        m.add(running, -1);
                        m.add(need_recovery, 1);
                        m.set(has_started, 0);
                        m.set(host_corrupt, 0);
                        m.set(corrupted, 0);
                        m.set(ids_flag, 0);
                    },
                )
                .build()?;
        }

        Ok(())
    }
}

// ---------------------------------------------------------------------
// Management atomic SAN (paper §3.3, Figure 2(c))
// ---------------------------------------------------------------------

struct ManagementTemplate;

impl SanTemplate for ManagementTemplate {
    fn build(&self, b: &mut SubnetBuilder<'_>) -> Result<(), SanError> {
        let a = b.rep_indices()[0];
        let need_recovery = b.place("need_recovery", 0);
        let to_start = b.place(&format!("to_start_{a}"), 0);
        let mgrs_active = b.place("mgrs_active_sys", 0);
        let mgrs_corrupt = b.place("mgrs_corrupt_sys", 0);

        // recovery: managers decide to start a replacement replica,
        // possible only with enough good managers system-wide.
        b.timed_activity("recovery", RECOVERY_RATE)
            .input_arc(need_recovery, 1)
            .predicate(&[mgrs_active, mgrs_corrupt], move |m| {
                3 * m.get(mgrs_corrupt) < m.get(mgrs_active)
            })
            .output_arc(to_start, 1)
            .build()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Host atomic SAN (paper §3.4, Figure 2(d))
// ---------------------------------------------------------------------

struct HostTemplate {
    p: Arc<Params>,
}

impl SanTemplate for HostTemplate {
    fn build(&self, b: &mut SubnetBuilder<'_>) -> Result<(), SanError> {
        let p = self.p.clone();
        let num_apps = p.num_apps;
        let host_scheme = p.scheme == ManagementScheme::HostExclusion;

        // Local state.
        let active = b.place("host_active", 1);
        let corrupt = b.place("host_corrupt", 0);
        let ids_host = b.place("ids_will_detect_host", 0);
        let mgr_active = b.place("mgr_active", 1);
        let mgr_corrupt = b.place("mgr_corrupt_local", 0);
        let ids_mgr = b.place("ids_will_detect_mgr", 0);
        let spread_dom_done = b.place("spread_domain_done", 0);
        let spread_sys_done = b.place("spread_system_done", 0);
        // Host-exclusion variant: a local shutdown token (the paper: the
        // exclusion places "were made local to the Host SAN").
        let self_excluding = b.place("self_excluding", 0);
        let has_app: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("has_app_{a}"), 0))
            .collect();

        // Domain-level shared state.
        let dom_excluding = b.place("dom_excluding", 0);
        let dom_excluded = b.place("dom_excluded", 0);
        let dom_hosts = b.place("dom_active_hosts", 0);
        let dom_mgrs = b.place("dom_mgrs_active", 0);
        let dom_mgrs_corr = b.place("dom_mgrs_corrupt", 0);
        let dom_corrupt_hosts = b.place("dom_corrupt_hosts", 0);
        let dom_spread = b.place("dom_spread_level", 0);
        let dom_excl_corrupt = b.place("dom_excl_corrupt", 0);
        let dom_has_app: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("dom_has_app_{a}"), 0))
            .collect();

        // Global shared state.
        let mgrs_active_sys = b.place("mgrs_active_sys", 0);
        let mgrs_corrupt_sys = b.place("mgrs_corrupt_sys", 0);
        let excluded_domains = b.place("excluded_domains_sys", 0);
        let sys_spread = b.place("sys_spread_level", 0);
        let to_start: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("to_start_{a}"), 0))
            .collect();
        let started_clean: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("started_clean_{a}"), 0))
            .collect();
        let started_corrupt: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("started_corrupt_{a}"), 0))
            .collect();
        let affected: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("affected_{a}"), 0))
            .collect();
        let kill_clean: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("kill_clean_{a}"), 0))
            .collect();
        let kill_corrupt: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("kill_corrupt_{a}"), 0))
            .collect();
        let det_clean: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("rep_detected_clean_{a}"), 0))
            .collect();
        let det_corrupt: Vec<PlaceId> = (0..num_apps)
            .map(|a| b.place(&format!("rep_detected_corrupt_{a}"), 0))
            .collect();

        // Quorum predicates shared by several gates.
        let dom_group_ok = move |m: &Marking| 3 * m.get(dom_mgrs_corr) < m.get(dom_mgrs);
        let sys_quorum_ok = move |m: &Marking| 3 * m.get(mgrs_corrupt_sys) < m.get(mgrs_active_sys);

        // Triggering an exclusion: domain scheme places a token in the
        // domain's `exclude_domain`; host scheme shuts only this host.
        let trigger_exclusion = move |m: &mut Marking| {
            if host_scheme {
                if m.get(self_excluding) == 0 && m.get(active) == 1 {
                    m.set(self_excluding, 1);
                }
            } else if m.get(dom_excluding) == 0 && m.get(dom_excluded) == 0 {
                m.set(dom_excluding, 1);
            }
        };

        // attack_host: three categories × (detected | missed) = 6 cases.
        let mix = p.attack_mix;
        let host_rate = p.host_attack_rate();
        let effect_d = p.spread_effect_domain / SPREAD_SCALE;
        let effect_s = p.spread_effect_system / SPREAD_SCALE;
        let corrupt_effect = {
            let has_app = has_app.clone();
            let affected = affected.clone();
            move |m: &mut Marking| {
                m.set(corrupt, 1);
                m.add(dom_corrupt_hosts, 1);
                for a in 0..num_apps {
                    if m.get(has_app[a]) == 1 {
                        m.add(affected[a], 1);
                    }
                }
            }
        };
        {
            let mut ab = b.timed_activity_fn(
                "attack_host",
                Arc::new(move |m| {
                    host_rate
                        * (1.0
                            + effect_d * m.get(dom_spread) as f64
                            + effect_s * m.get(sys_spread) as f64)
                }),
                &[dom_spread, sys_spread],
            );
            ab = ab.predicate(&[active, corrupt], move |m| {
                m.get(active) == 1 && m.get(corrupt) == 0
            });
            for (pc, pd) in [
                (mix.p_script, mix.detect_script),
                (mix.p_exploratory, mix.detect_exploratory),
                (mix.p_innovative, mix.detect_innovative),
            ] {
                let eff = corrupt_effect.clone();
                ab = ab.case(pc * pd, move |m| {
                    eff(m);
                    m.set(ids_host, 1);
                });
                let eff = corrupt_effect.clone();
                ab = ab.case(pc * (1.0 - pd), move |m| {
                    eff(m);
                });
            }
            ab.build()?;
        }

        // valid_ID_{scp,exp,inv} are folded into one detection activity:
        // the category only affected the detection *probability*, which was
        // already decided by the attack case above.
        b.timed_activity("valid_ID_host", p.ids_rate)
            .predicate(&[ids_host, corrupt, active], move |m| {
                m.get(ids_host) == 1 && m.get(corrupt) == 1 && m.get(active) == 1
            })
            .input_gate(
                &[mgr_active, mgr_corrupt, dom_mgrs, dom_mgrs_corr],
                |_| true,
                move |m| {
                    m.set(ids_host, 0);
                    if m.get(mgr_active) == 1 && m.get(mgr_corrupt) == 0 && dom_group_ok(m) {
                        trigger_exclusion(m);
                    }
                },
            )
            .build()?;

        // false_ID: false alarms while there has been no actual intrusion.
        let fa = p.host_false_alarm_rate();
        if fa > 0.0 {
            b.timed_activity("false_ID_host", fa)
                .predicate(&[active, corrupt], move |m| {
                    m.get(active) == 1 && m.get(corrupt) == 0
                })
                .input_gate(
                    &[mgr_active, mgr_corrupt, dom_mgrs, dom_mgrs_corr],
                    |_| true,
                    move |m| {
                        if m.get(mgr_active) == 1 && m.get(mgr_corrupt) == 0 && dom_group_ok(m) {
                            trigger_exclusion(m);
                        }
                    },
                )
                .build()?;
        }

        // attack_mgmt: attack on the manager; faster once the host is
        // corrupt (local escalation channel).
        let mgr_base = p.manager_attack_rate();
        let mgr_hot = p.corrupt_host_manager_rate();
        b.timed_activity_fn(
            "attack_mgmt",
            Arc::new(move |m| {
                if m.get(corrupt) == 1 {
                    mgr_hot
                } else {
                    mgr_base
                }
            }),
            &[corrupt],
        )
        .predicate(&[active, mgr_active, mgr_corrupt], move |m| {
            m.get(active) == 1 && m.get(mgr_active) == 1 && m.get(mgr_corrupt) == 0
        })
        .case(p.detect_manager, move |m| {
            m.set(mgr_corrupt, 1);
            m.add(dom_mgrs_corr, 1);
            m.add(mgrs_corrupt_sys, 1);
            m.set(ids_mgr, 1);
        })
        .case(1.0 - p.detect_manager, move |m| {
            m.set(mgr_corrupt, 1);
            m.add(dom_mgrs_corr, 1);
            m.add(mgrs_corrupt_sys, 1);
        })
        .build()?;

        // valid_ID_mgr: detection of the corrupt manager; the response goes
        // through the rest of the domain group or the system-wide group.
        b.timed_activity("valid_ID_mgr", p.ids_rate)
            .predicate(&[ids_mgr, mgr_corrupt, mgr_active, active], move |m| {
                m.get(ids_mgr) == 1
                    && m.get(mgr_corrupt) == 1
                    && m.get(mgr_active) == 1
                    && m.get(active) == 1
            })
            .input_gate(
                &[dom_mgrs, dom_mgrs_corr, mgrs_active_sys, mgrs_corrupt_sys],
                |_| true,
                move |m| {
                    m.set(ids_mgr, 0);
                    if dom_group_ok(m) || sys_quorum_ok(m) {
                        trigger_exclusion(m);
                    }
                },
            )
            .build()?;

        // start_replica (one activity per application): claim a pending
        // replica start if this host and domain are eligible. All eligible
        // copies race uniformly — the paper's random placement.
        for a in 0..num_apps {
            let ts = to_start[a];
            let ha = has_app[a];
            let dha = dom_has_app[a];
            let sc = started_clean[a];
            let scor = started_corrupt[a];
            let one_per_domain = p.placement == PlacementConstraint::OnePerDomain;
            b.instantaneous_activity(&format!("start_replica_{a}"))
                .input_arc(ts, 1)
                .predicate(&[active, ha, dha, dom_excluded, dom_excluding], move |m| {
                    m.get(active) == 1
                        && m.get(ha) == 0
                        && m.get(dom_excluded) == 0
                        && m.get(dom_excluding) == 0
                        && (!one_per_domain || m.get(dha) == 0)
                })
                .input_gate(
                    &[corrupt],
                    |_| true,
                    move |m| {
                        m.set(ha, 1);
                        m.add(dha, 1);
                        if m.get(corrupt) == 1 {
                            m.add(scor, 1);
                        } else {
                            m.add(sc, 1);
                        }
                    },
                )
                .build()?;
        }

        // affect_host / shut_host: consume a replica-conviction notice if
        // this host matches (has the application, same corruption state),
        // then respond by excluding the domain (or this host) if the
        // managers can.
        for a in 0..num_apps {
            for (name, pool, flag) in [
                (format!("respond_rep_detect_clean_{a}"), det_clean[a], 0),
                (format!("respond_rep_detect_corrupt_{a}"), det_corrupt[a], 1),
            ] {
                let ha = has_app[a];
                let dha = dom_has_app[a];
                b.instantaneous_activity(&name)
                    .input_arc(pool, 1)
                    .predicate(&[active, ha, corrupt], move |m| {
                        m.get(active) == 1 && m.get(ha) == 1 && m.get(corrupt) == flag
                    })
                    .input_gate(
                        &[dom_mgrs, dom_mgrs_corr, mgrs_active_sys, mgrs_corrupt_sys],
                        |_| true,
                        move |m| {
                            // The convicted replica has left this host.
                            m.set(ha, 0);
                            m.add(dha, -1);
                            if dom_group_ok(m) || sys_quorum_ok(m) {
                                trigger_exclusion(m);
                            }
                        },
                    )
                    .build()?;
            }
        }

        // shut_host: this host shuts down because its domain is being
        // excluded (domain scheme) or it was individually convicted (host
        // scheme). Kills all its replicas and its manager.
        {
            let has_app_v = has_app.clone();
            let dom_has_app_v = dom_has_app.clone();
            let kill_clean_v = kill_clean.clone();
            let kill_corrupt_v = kill_corrupt.clone();
            let mut reads = vec![active, dom_excluding, self_excluding];
            reads.push(corrupt);
            b.instantaneous_activity("shut_host")
                .predicate(&reads, move |m| {
                    m.get(active) == 1 && (m.get(dom_excluding) == 1 || m.get(self_excluding) == 1)
                })
                .input_gate(
                    &[],
                    |_| true,
                    move |m| {
                        // Measure bookkeeping (read before any resets): when
                        // the shutdown is part of a domain exclusion, count
                        // this host toward the "corrupt at exclusion"
                        // fraction if its OS or manager was compromised.
                        let host_was_corrupt = m.get(corrupt) == 1;
                        if m.get(dom_excluding) == 1
                            && (host_was_corrupt || m.get(mgr_corrupt) == 1)
                        {
                            m.add(dom_excl_corrupt, 1);
                        }
                        m.set(active, 0);
                        m.set(self_excluding, 0);
                        m.add(dom_hosts, -1);
                        if host_was_corrupt {
                            m.add(dom_corrupt_hosts, -1);
                        }
                        for a in 0..num_apps {
                            if m.get(has_app_v[a]) == 1 {
                                m.set(has_app_v[a], 0);
                                m.add(dom_has_app_v[a], -1);
                                if host_was_corrupt {
                                    m.add(kill_corrupt_v[a], 1);
                                } else {
                                    m.add(kill_clean_v[a], 1);
                                }
                            }
                        }
                        if m.get(mgr_active) == 1 {
                            m.set(mgr_active, 0);
                            m.add(dom_mgrs, -1);
                            m.add(mgrs_active_sys, -1);
                            if m.get(mgr_corrupt) == 1 {
                                m.set(mgr_corrupt, 0);
                                m.add(dom_mgrs_corr, -1);
                                m.add(mgrs_corrupt_sys, -1);
                            }
                        }
                    },
                )
                .build()?;
        }

        // finish_exclusion: once every host of the domain is down, the
        // domain is formally excluded (fires once; the copies race for the
        // token).
        if !host_scheme {
            b.instantaneous_activity("finish_exclusion")
                .input_arc(dom_excluding, 1)
                .predicate(&[dom_hosts], move |m| m.get(dom_hosts) == 0)
                .input_gate(
                    &[],
                    |_| true,
                    move |m| {
                        m.set(dom_excluded, 1);
                        m.add(excluded_domains, 1);
                    },
                )
                .build()?;
        }

        // propagate_domain / propagate_sys: one-shot attack-learning
        // events from a corrupt host. The spread variable doubles as the
        // activity rate and the level increment (paper §3.4); levels are
        // stored in tenths.
        if p.spread_rate_domain > 0.0 {
            let inc = (p.spread_rate_domain * SPREAD_SCALE).round() as i32;
            b.timed_activity("propagate_domain", p.spread_rate_domain)
                .predicate(&[corrupt, active, spread_dom_done], move |m| {
                    m.get(corrupt) == 1 && m.get(active) == 1 && m.get(spread_dom_done) == 0
                })
                .input_gate(
                    &[],
                    |_| true,
                    move |m| {
                        m.set(spread_dom_done, 1);
                        m.add(dom_spread, inc);
                    },
                )
                .build()?;
        }
        if p.spread_rate_system > 0.0 {
            let inc = (p.spread_rate_system * SPREAD_SCALE).round().max(1.0) as i32;
            b.timed_activity("propagate_sys", p.spread_rate_system)
                .predicate(&[corrupt, active, spread_sys_done], move |m| {
                    m.get(corrupt) == 1 && m.get(active) == 1 && m.get(spread_sys_done) == 0
                })
                .input_gate(
                    &[],
                    |_| true,
                    move |m| {
                        m.set(spread_sys_done, 1);
                        m.add(sys_spread, inc);
                    },
                )
                .build()?;
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itua_san::simulator::SanSimulator;

    fn small_params() -> Params {
        Params::default().with_domains(3, 2).with_applications(2, 3)
    }

    #[test]
    fn builds_and_has_expected_structure() {
        let model = build(&small_params()).unwrap();
        let san = &model.san;
        // Per-app measure places resolved.
        assert_eq!(model.places.running.len(), 2);
        // Replica submodels: 2 apps × 3 replicas, each with (at least) an
        // attack activity.
        let attack_reps = san
            .activities()
            .filter(|(_, a)| a.name().ends_with("/attack_rep"))
            .count();
        assert_eq!(attack_reps, 6);
        let hosts = san
            .activities()
            .filter(|(_, a)| a.name().ends_with("/attack_host"))
            .count();
        assert_eq!(hosts, 6);
        let recoveries = san
            .activities()
            .filter(|(_, a)| a.name().ends_with("/recovery"))
            .count();
        assert_eq!(recoveries, 2);
    }

    #[test]
    fn initial_placement_starts_all_replicas() {
        let model = build(&small_params()).unwrap();
        let sim = SanSimulator::new(model.san.clone());

        struct Check {
            running: Vec<PlaceId>,
            values: Vec<i32>,
        }
        impl itua_san::simulator::Observer for Check {
            fn on_init(&mut self, _t: f64, m: &Marking) {
                self.values = self.running.iter().map(|&p| m.get(p)).collect();
            }
        }
        let mut check = Check {
            running: model.places.running.clone(),
            values: vec![],
        };
        sim.run(1, 0.0, &mut [&mut check]).unwrap();
        // 3 domains ≥ 3 replicas per app → all start.
        assert_eq!(check.values, vec![3, 3]);
    }

    #[test]
    fn placement_limited_by_domains() {
        // 2 domains but 3 replicas requested → only 2 start per app.
        let params = Params::default().with_domains(2, 2).with_applications(1, 3);
        let model = build(&params).unwrap();
        let sim = SanSimulator::new(model.san.clone());
        struct Check(PlaceId, i32);
        impl itua_san::simulator::Observer for Check {
            fn on_init(&mut self, _t: f64, m: &Marking) {
                self.1 = m.get(self.0);
            }
        }
        let mut check = Check(model.places.running[0], -1);
        sim.run(1, 0.0, &mut [&mut check]).unwrap();
        assert_eq!(check.1, 2);
    }

    #[test]
    fn runs_to_horizon_without_errors() {
        let model = build(&small_params()).unwrap();
        let sim = SanSimulator::new(model.san.clone());
        for seed in 0..20 {
            sim.run(seed, 10.0, &mut []).unwrap();
        }
    }

    #[test]
    fn marking_invariants_hold_during_simulation() {
        let model = build(&small_params()).unwrap();
        let sim = SanSimulator::new(model.san.clone());
        struct Inv {
            places: ItuaSanPlaces,
            total_hosts: i32,
        }
        impl itua_san::simulator::Observer for Inv {
            fn on_event(&mut self, _t: f64, _a: itua_san::model::ActivityId, m: &Marking) {
                for a in 0..self.places.running.len() {
                    let n = m.get(self.places.running[a]);
                    let c = m.get(self.places.corrupt[a]);
                    assert!(c <= n, "corrupt {c} > running {n}");
                }
                let e = m.get(self.places.excluded_domains);
                assert!(e >= 0 && e <= self.total_hosts);
            }
        }
        let mut inv = Inv {
            places: model.places.clone(),
            total_hosts: 3,
        };
        for seed in 0..30 {
            sim.run(seed, 15.0, &mut [&mut inv]).unwrap();
        }
    }

    #[test]
    fn host_exclusion_variant_builds_and_runs() {
        let params = small_params().with_scheme(ManagementScheme::HostExclusion);
        let model = build(&params).unwrap();
        let sim = SanSimulator::new(model.san.clone());
        struct NoDomainExcluded(PlaceId);
        impl itua_san::simulator::Observer for NoDomainExcluded {
            fn on_end(&mut self, _t: f64, m: &Marking) {
                assert_eq!(m.get(self.0), 0, "host scheme must not exclude domains");
            }
        }
        for seed in 0..20 {
            let mut obs = NoDomainExcluded(model.places.excluded_domains);
            sim.run(seed, 10.0, &mut [&mut obs]).unwrap();
        }
    }

    #[test]
    fn rejects_invalid_params() {
        let bad = Params::default().with_domains(0, 1);
        assert!(matches!(build(&bad), Err(BuildError::Params(_))));
    }
}

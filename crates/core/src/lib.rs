//! The ITUA intrusion-tolerant replication model.
//!
//! This crate is the reproduction's *object of study*: the replication
//! management system of the ITUA architecture (Intrusion Tolerance by
//! Unpredictable Adaptation), as modeled in
//! *Probabilistic Validation of an Intrusion-Tolerant Replication System*
//! (Singh, Cukier, Sanders — DSN 2003).
//!
//! The system: hosts grouped into security domains, one ITUA *manager* per
//! host, applications replicated with at most one replica per domain,
//! attackers who corrupt hosts / replicas / managers (with attack spread
//! and learning), intrusion-detection software with imperfect coverage and
//! false alarms, Byzantine-agreement-based conviction of corrupt replicas,
//! and a decentralized recovery algorithm that restarts killed replicas in
//! randomly chosen domains. Two management policies are modeled:
//! excluding the whole domain that housed a corrupt entity, or excluding
//! only the corrupt host.
//!
//! Two independent encodings of the same stochastic process are provided:
//!
//! * [`san_model`] — the composed **stochastic activity network** of the
//!   paper's Figure 2 (Replica, Host, and Management atomic SANs composed
//!   with Replicate/Join), built on the `itua-san` formalism. This is the
//!   faithful reproduction artifact.
//! * [`des`] — a direct discrete-event simulation of the same process,
//!   roughly an order of magnitude faster; used for the large parameter
//!   sweeps of the paper's studies and cross-validated against the SAN
//!   encoding in the integration tests.
//!
//! Shared vocabulary lives in [`params`] (every rate and probability from
//! the paper's Section 4, with the paper's defaults) and [`measures`] (the
//! reward variables of the studies).
//!
//! # Example
//!
//! ```
//! use itua_core::params::Params;
//! use itua_core::des::ItuaDes;
//!
//! // Ten domains of three hosts, four applications with seven replicas,
//! // paper-default attack and detection rates.
//! let params = Params::default()
//!     .with_domains(10, 3)
//!     .with_applications(4, 7);
//! let des = ItuaDes::new(params).unwrap();
//! let out = des.run(42, 5.0, &[5.0]);
//! assert!(out.unavailability(5.0) >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod analytic;
pub mod des;
pub mod measures;
pub mod params;
pub mod san_exec;
pub mod san_model;
pub mod split;

pub use analytic::ItuaAnalytic;
pub use des::ItuaDes;
pub use params::{ManagementScheme, Params};
pub use san_exec::ItuaSanRunner;
pub use split::CorruptDomainCount;

//! Exact (analytic) solution of the ITUA model for small configurations.
//!
//! Möbius can solve SANs "analytically by converting them into equivalent
//! continuous time Markov chains"; this module is that path for the ITUA
//! model. The composed SAN of [`crate::san_model`] is flattened into its
//! tangible state space once, and every measure the simulators estimate by
//! replication is computed exactly by uniformized transient analysis:
//!
//! * **unavailability** — `E[∫₀ᵀ improper_fraction ds] / T` via
//!   [`Ctmc::expected_accumulated_reward`] over the improper-service
//!   fraction reward;
//! * **unreliability** — mean over applications of `P[app ever Byzantine
//!   by T]`, via one *byzantine-absorbed* chain per application (outgoing
//!   transitions of Byzantine states dropped, so the transient mass on
//!   them is the first-passage probability — the analytic counterpart of
//!   the simulators' sticky flag). Byzantine-ness is evaluated on tangible
//!   markings; the zero-time exclusion cascades of the model only remove
//!   replicas (never clear corruption) and recovery is a timed activity,
//!   so a fault visible mid-cascade is still visible in the tangible
//!   marking the cascade settles into.
//! * **instant-of-time measures** (`frac_domains_excluded@t`,
//!   `replicas_running@t`, `load_per_host@t`) — reward expectations under
//!   the transient distributions at the sample times, all solved from a
//!   single uniformization pass ([`Ctmc::transient_multi`]).
//!
//! The event-conditioned measures (`frac_corrupt_hosts_at_exclusion`,
//! `time_to_first_*`) are deliberately *not* produced: they condition on
//! event occurrences inside a replication and have no marking-level reward
//! formulation on this chain (see DESIGN.md §8).
//!
//! Results flow into the ordinary [`MeasureSet`] as zero-variance
//! estimates (`value ± 0`), so everything downstream — stores,
//! fingerprints, figure plotting — treats the analytic backend like a
//! simulator whose every replication agrees.
//!
//! # Symmetry lumping
//!
//! By default ([`AnalyticOptions::lump`]) the chain is generated directly
//! in canonical (orbit-representative) form under the model's
//! wreath-product symmetry ([`crate::analysis::symmetry_spec`]):
//! interchangeable domains, hosts within a domain, and replica slots
//! within an application collapse into one state per orbit, shrinking the
//! paper's configurations by orders of magnitude while staying *exact* —
//! the group action is a model automorphism, and every measure above is
//! orbit-invariant (applications are not permuted, and the Byzantine
//! state sets are orbit unions, so the per-application absorbed chains
//! lump too). The unlumped path remains available and byte-identical to
//! its pre-lumping results.

use crate::measures::{names, MeasureSet};
use crate::params::Params;
use crate::san_model::{self, BuildError, ItuaSan};
use itua_markov::ctmc::{Ctmc, CtmcError};
use itua_san::model::SanError;
use itua_san::statespace::StateSpace;
use std::fmt;

/// Truncation accuracy for every uniformization solve. Far below the
/// resolution of any plotted figure, far above f64 round-off.
const EPSILON: f64 = 1e-10;

/// Error from building or solving the analytic model.
#[derive(Debug)]
pub enum AnalyticError {
    /// The tangible state space exceeds the configured bound; the
    /// configuration needs symmetry lumping, a larger bound, or a
    /// simulation backend.
    TooLarge {
        /// The bound that was exceeded.
        max_states: usize,
        /// Human-readable description of the offending configuration.
        config: String,
        /// When the *unlumped* generation overflowed but the
        /// symmetry-lumped chain fits the same bound: its measured state
        /// count, so the error can steer the user to `--lump` instead of
        /// a simulator.
        lumped_fit: Option<usize>,
    },
    /// The SAN could not be built from the parameters.
    Build(BuildError),
    /// State-space generation failed for a reason other than size.
    San(SanError),
    /// CTMC construction or solving failed.
    Ctmc(CtmcError),
}

impl fmt::Display for AnalyticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticError::TooLarge {
                max_states,
                config,
                lumped_fit: Some(lumped),
            } => write!(
                f,
                "analytic backend supports ≤{max_states} states; got config {config} — \
                 symmetry lumping fits it in {lumped} states: retry with --lump \
                 (or raise --max-states), or use des/san"
            ),
            AnalyticError::TooLarge {
                max_states,
                config,
                lumped_fit: None,
            } => write!(
                f,
                "analytic backend supports ≤{max_states} states; got config {config} — use des/san"
            ),
            AnalyticError::Build(e) => write!(f, "cannot build ITUA SAN: {e}"),
            AnalyticError::San(e) => write!(f, "state-space generation failed: {e}"),
            AnalyticError::Ctmc(e) => write!(f, "CTMC solve failed: {e}"),
        }
    }
}

impl std::error::Error for AnalyticError {}

fn describe(params: &Params) -> String {
    format!(
        "{} domains × {} hosts/domain, {} apps × {} replicas",
        params.num_domains, params.hosts_per_domain, params.num_apps, params.reps_per_app
    )
}

/// How to build the analytic model: state budget, symmetry lumping, and
/// solver threading.
///
/// Lumping changes *which* chain is solved (the exact symmetry quotient
/// instead of the full tangible space), so it participates in sweep
/// fingerprints; the thread count only schedules the bit-identical gather
/// kernel and never influences results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyticOptions {
    /// Bound on generated states (lumped: orbits) before failing fast.
    pub max_states: usize,
    /// Generate the chain in canonical orbit-representative form under
    /// [`crate::analysis::symmetry_spec`]. Exact; on by default.
    pub lump: bool,
    /// Worker threads for the uniformization matvec (results are
    /// bit-identical at any count).
    pub threads: usize,
}

impl Default for AnalyticOptions {
    fn default() -> Self {
        AnalyticOptions {
            max_states: ItuaAnalytic::DEFAULT_MAX_STATES_LUMPED,
            lump: true,
            threads: 1,
        }
    }
}

/// Measures the lumped state count for `model` under the same budget, so
/// a [`AnalyticError::TooLarge`] from the unlumped path can report whether
/// `--lump` would have fit.
fn lumped_probe(model: &ItuaSan, max_states: usize) -> Option<usize> {
    let sym = crate::analysis::symmetry_spec(model);
    StateSpace::generate_lumped(&model.san, &sym, max_states)
        .ok()
        .map(|ss| ss.num_states())
}

/// The ITUA model solved exactly: tangible state space, reward vectors,
/// and per-application absorbing chains, built once per configuration and
/// reusable across horizons and sample-time sets.
#[derive(Debug, Clone)]
pub struct ItuaAnalytic {
    num_states: usize,
    initial: Vec<f64>,
    ctmc: Ctmc,
    /// Fraction of applications with improper service, per state.
    improper_frac: Vec<f64>,
    /// Fraction of domains excluded, per state.
    frac_domains_excluded: Vec<f64>,
    /// Mean running replicas per application, per state.
    mean_replicas_running: Vec<f64>,
    /// Replicas per active host (0 when no host is active), per state.
    load_per_host: Vec<f64>,
    /// Per application: the chain with that application's Byzantine states
    /// made absorbing, plus the absorbing flags.
    byz: Vec<(Ctmc, Vec<bool>)>,
    /// Whether the chain is the symmetry quotient.
    lumped: bool,
    /// When lumped: total tangible states the quotient represents
    /// (sum of orbit sizes, saturating).
    full_states: Option<u128>,
}

impl ItuaAnalytic {
    /// Default bound on the tangible state space for the *unlumped* path.
    /// Two-domain, two-host configurations sit in the low thousands of
    /// states; figure-4-scale configurations blow through this bound
    /// within seconds of generation and fail fast.
    pub const DEFAULT_MAX_STATES: usize = 100_000;

    /// Default bound for the *lumped* path. Orbits are orders of magnitude
    /// fewer than raw states, so the budget can afford to be an order of
    /// magnitude larger and still solve in seconds.
    pub const DEFAULT_MAX_STATES_LUMPED: usize = 1_000_000;

    /// Builds the *unlumped* state space and reward structure for
    /// `params`. Byte-identical to the pre-lumping analytic backend;
    /// prefer [`ItuaAnalytic::with_options`].
    ///
    /// # Errors
    ///
    /// [`AnalyticError::TooLarge`] if more than `max_states` tangible
    /// markings are reachable; [`AnalyticError::Build`] /
    /// [`AnalyticError::San`] / [`AnalyticError::Ctmc`] for construction
    /// failures.
    pub fn new(params: &Params, max_states: usize) -> Result<Self, AnalyticError> {
        Self::with_options(
            params,
            &AnalyticOptions {
                max_states,
                lump: false,
                threads: 1,
            },
        )
    }

    /// Builds the state space and reward structure for `params`, lumped or
    /// plain per `opts`.
    ///
    /// # Errors
    ///
    /// As [`ItuaAnalytic::new`]; an unlumped [`AnalyticError::TooLarge`]
    /// additionally reports whether the symmetry quotient would have fit
    /// the same budget.
    pub fn with_options(params: &Params, opts: &AnalyticOptions) -> Result<Self, AnalyticError> {
        let model = san_model::build(params).map_err(AnalyticError::Build)?;
        let ss = if opts.lump {
            let sym = crate::analysis::symmetry_spec(&model);
            StateSpace::generate_lumped(&model.san, &sym, opts.max_states)
        } else {
            StateSpace::generate(&model.san, opts.max_states)
        }
        .map_err(|e| match e {
            SanError::StateSpaceTooLarge(max) => AnalyticError::TooLarge {
                max_states: max,
                config: describe(params),
                lumped_fit: if opts.lump {
                    None
                } else {
                    lumped_probe(&model, max)
                },
            },
            other => AnalyticError::San(other),
        })?;

        let places = &model.places;
        let num_domains = params.num_domains as f64;
        let num_apps = params.num_apps as f64;
        let improper_frac = ss.reward_vector(|m| places.improper_fraction(m));
        let frac_domains_excluded =
            ss.reward_vector(|m| m.get(places.excluded_domains) as f64 / num_domains);
        let mean_replicas_running = ss.reward_vector(|m| {
            places.running.iter().map(|&p| m.get(p)).sum::<i32>() as f64 / num_apps
        });
        let load_per_host = ss.reward_vector(|m| {
            let running: i32 = places.running.iter().map(|&p| m.get(p)).sum();
            let alive: i32 = places.domain_active_hosts.iter().map(|&p| m.get(p)).sum();
            if alive == 0 {
                0.0
            } else {
                running as f64 / alive as f64
            }
        });
        let byz = (0..params.num_apps)
            .map(|a| {
                ss.absorbing_ctmc(|m| places.byzantine(m, a))
                    .map(|(c, flags)| (c.with_threads(opts.threads), flags))
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(AnalyticError::Ctmc)?;
        let ctmc = ss
            .to_ctmc()
            .map_err(AnalyticError::Ctmc)?
            .with_threads(opts.threads);
        Ok(ItuaAnalytic {
            num_states: ss.num_states(),
            initial: ss.initial_distribution(),
            ctmc,
            improper_frac,
            frac_domains_excluded,
            mean_replicas_running,
            load_per_host,
            byz,
            lumped: opts.lump,
            full_states: ss.full_state_total(),
        })
    }

    /// Number of generated states (orbits, when lumped).
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Whether the chain is the symmetry quotient.
    pub fn is_lumped(&self) -> bool {
        self.lumped
    }

    /// Total tangible states the lumped chain represents (sum of orbit
    /// sizes, saturating); `None` on the unlumped path.
    pub fn full_state_total(&self) -> Option<u128> {
        self.full_states
    }

    /// Solves every analytically expressible measure over `[0, horizon]`
    /// and returns them as zero-variance estimates.
    ///
    /// Sample times get the same clamp/filter/sort/dedup normalization the
    /// simulators apply, so the `@t` measure names line up exactly.
    ///
    /// # Errors
    ///
    /// Propagates CTMC solver failures.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon` is finite and positive.
    pub fn solve(
        &self,
        horizon: f64,
        sample_times: &[f64],
        confidence: f64,
    ) -> Result<MeasureSet, AnalyticError> {
        assert!(
            horizon > 0.0 && horizon.is_finite(),
            "horizon must be finite positive"
        );
        let mut ms = MeasureSet::new(confidence);

        let improper_time = self
            .ctmc
            .expected_accumulated_reward(&self.initial, &self.improper_frac, horizon, EPSILON)
            .map_err(AnalyticError::Ctmc)?;
        ms.record_exact(names::UNAVAILABILITY, improper_time / horizon);

        let mut byz_total = 0.0;
        for (chain, flags) in &self.byz {
            let p = chain
                .transient(&self.initial, horizon, EPSILON)
                .map_err(AnalyticError::Ctmc)?;
            byz_total += flags
                .iter()
                .zip(&p)
                .filter(|&(&absorbed, _)| absorbed)
                .map(|(_, &pi)| pi)
                .sum::<f64>();
        }
        ms.record_exact(names::UNRELIABILITY, byz_total / self.byz.len() as f64);

        let mut samples: Vec<f64> = sample_times
            .iter()
            .map(|&t| t.min(horizon))
            .filter(|&t| t > 0.0)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN sample times"));
        samples.dedup();
        let dists = self
            .ctmc
            .transient_multi(&self.initial, &samples, EPSILON)
            .map_err(AnalyticError::Ctmc)?;
        for (&t, dist) in samples.iter().zip(&dists) {
            let dot = |r: &[f64]| r.iter().zip(dist).map(|(ri, pi)| ri * pi).sum::<f64>();
            ms.record_exact(
                &format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, t),
                dot(&self.frac_domains_excluded),
            );
            ms.record_exact(
                &format!("{}@{}", names::REPLICAS_RUNNING, t),
                dot(&self.mean_replicas_running),
            );
            ms.record_exact(
                &format!("{}@{}", names::LOAD_PER_HOST, t),
                dot(&self.load_per_host),
            );
        }
        Ok(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smallest interesting configuration with attack spread disabled —
    /// the state space stays in the low thousands, tractable even in
    /// debug builds.
    fn micro_params() -> Params {
        let mut p = Params::default().with_domains(1, 2).with_applications(1, 2);
        p.spread_rate_domain = 0.0;
        p.spread_rate_system = 0.0;
        p
    }

    #[test]
    fn solves_all_shared_measures_exactly() {
        let analytic = ItuaAnalytic::new(&micro_params(), 100_000).unwrap();
        assert!(analytic.num_states() > 1);
        let ms = analytic.solve(5.0, &[2.5, 5.0, 5.0, 7.0], 0.95).unwrap();
        let estimates = ms.estimates();
        // 2 interval measures + 3 instants × 2 distinct sample times
        // (7.0 clamps onto 5.0); no conditional measures.
        assert_eq!(estimates.len(), 8);
        for e in &estimates {
            assert_eq!(e.ci.half_width, 0.0, "{} is not exact", e.name);
            assert_eq!(e.min, e.max);
            assert!(e.ci.mean.is_finite());
        }
        let mean = |name: &str| ms.mean(name).unwrap();
        assert!((0.0..=1.0).contains(&mean(names::UNAVAILABILITY)));
        assert!((0.0..=1.0).contains(&mean(names::UNRELIABILITY)));
        assert!(mean(&format!("{}@5", names::REPLICAS_RUNNING)) >= 0.0);
        assert!(ms.mean(names::FRAC_CORRUPT_AT_EXCLUSION).is_none());
        assert!(ms.mean(names::TIME_TO_FIRST_BYZANTINE).is_none());
    }

    /// Two interchangeable single-host domains so the symmetry quotient
    /// is a strict reduction; spread disabled to keep debug-build
    /// generation fast.
    fn symmetric_micro_params() -> Params {
        let mut p = Params::default().with_domains(2, 1).with_applications(1, 2);
        p.spread_rate_domain = 0.0;
        p.spread_rate_system = 0.0;
        p
    }

    #[test]
    fn lumped_solution_matches_unlumped_on_micro_config() {
        let p = symmetric_micro_params();
        let full = ItuaAnalytic::new(&p, 1_000_000).unwrap();
        let lumped = ItuaAnalytic::with_options(&p, &AnalyticOptions::default()).unwrap();
        assert!(lumped.is_lumped());
        assert!(!full.is_lumped());
        assert!(lumped.num_states() < full.num_states());
        assert_eq!(full.full_state_total(), None);
        assert_eq!(lumped.full_state_total(), Some(full.num_states() as u128));
        let a = full.solve(5.0, &[1.0, 5.0], 0.95).unwrap();
        let b = lumped.solve(5.0, &[1.0, 5.0], 0.95).unwrap();
        assert_eq!(a.estimates().len(), b.estimates().len());
        for e in &a.estimates() {
            let other = b.mean(&e.name).unwrap();
            let denom = e.ci.mean.abs().max(1e-12);
            assert!(
                ((e.ci.mean - other) / denom).abs() < 1e-9,
                "{}: full {} vs lumped {}",
                e.name,
                e.ci.mean,
                other
            );
        }
    }

    #[test]
    fn too_large_reports_lumped_fit_when_quotient_fits() {
        let p = symmetric_micro_params();
        let lumped_n = ItuaAnalytic::with_options(&p, &AnalyticOptions::default())
            .unwrap()
            .num_states();
        // A budget that admits the quotient but not the full space.
        let err = ItuaAnalytic::new(&p, lumped_n).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--lump"), "{msg}");
        assert!(msg.contains(&format!("{lumped_n} states")), "{msg}");
        assert!(msg.contains("use des/san"), "{msg}");
    }

    #[test]
    fn too_large_error_names_the_config() {
        let params = Params::default().with_domains(4, 3).with_applications(4, 7);
        let err = ItuaAnalytic::new(&params, 500).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("≤500 states"), "{msg}");
        assert!(msg.contains("4 domains × 3 hosts/domain"), "{msg}");
        assert!(msg.contains("use des/san"), "{msg}");
    }
}

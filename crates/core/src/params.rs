//! Model parameters, with the defaults of the paper's Section 4.
//!
//! One time unit = one hour. Rates given by the paper as *cumulative*
//! (system-wide) values are apportioned uniformly across attackable
//! entities — see `DESIGN.md` §5 for the rationale; every knob is exposed
//! here so studies can vary them.

use std::fmt;

/// Which entities the management algorithm excludes on detection of an
/// intrusion (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ManagementScheme {
    /// Exclude the whole security domain containing the corrupt entity
    /// (the paper's primary algorithm — a preemptive strike assuming the
    /// attack spread inside the domain).
    #[default]
    DomainExclusion,
    /// Exclude only the host on which the intrusion was detected.
    HostExclusion,
}

/// Where replicas of one application may be placed relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementConstraint {
    /// At most one replica of an application per security domain (the
    /// paper's constraint under domain exclusion).
    OnePerDomain,
    /// At most one replica of an application per host (the natural
    /// constraint under host exclusion, per the paper's §2 wording).
    OnePerHost,
}

/// Attack-category distribution and detection probabilities for attacks on
/// a host's OS and services (Jonsson & Olovsson's three classes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackMix {
    /// Probability an attack is script-based (paper: 0.80).
    pub p_script: f64,
    /// Probability an attack is "more exploratory" (paper: 0.15).
    pub p_exploratory: f64,
    /// Probability an attack is innovative (paper: 0.05).
    pub p_innovative: f64,
    /// IDS detection probability for script-based host attacks (0.90).
    pub detect_script: f64,
    /// IDS detection probability for exploratory host attacks (0.75).
    pub detect_exploratory: f64,
    /// IDS detection probability for innovative host attacks (0.40).
    pub detect_innovative: f64,
}

impl Default for AttackMix {
    fn default() -> Self {
        AttackMix {
            p_script: 0.80,
            p_exploratory: 0.15,
            p_innovative: 0.05,
            detect_script: 0.90,
            detect_exploratory: 0.75,
            detect_innovative: 0.40,
        }
    }
}

/// Hosts in the paper's baseline configuration (10 domains × 3 hosts),
/// used to normalize cumulative rates into per-entity rates.
pub const REFERENCE_HOSTS: usize = 30;
/// Replica slots in the baseline configuration (4 applications × 7).
pub const REFERENCE_REPLICA_SLOTS: usize = 28;

/// Full parameter set for the ITUA model.
///
/// Defaults reproduce the paper's Section 4 baseline. Builder-style
/// `with_*` methods support the studies' sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Number of security domains.
    pub num_domains: usize,
    /// Hosts per security domain (uniform, per the paper's assumption).
    pub hosts_per_domain: usize,
    /// Number of replicated applications.
    pub num_apps: usize,
    /// Replicas started per application (subject to placement).
    pub reps_per_app: usize,

    /// Cumulative base rate of successful attacks on the whole system
    /// (paper: 3 per hour), apportioned over entities by the weights below.
    pub base_attack_rate: f64,
    /// Relative attack weight of a host (OS and services).
    pub attack_weight_host: f64,
    /// Relative attack weight of an application replica.
    pub attack_weight_replica: f64,
    /// Relative attack weight of a management entity.
    pub attack_weight_manager: f64,

    /// Cumulative false-alarm rate (paper: 2 per hour), apportioned
    /// uniformly over hosts and replica slots.
    pub false_alarm_rate: f64,

    /// Calibration factor applied to both cumulative rates when deriving
    /// per-entity process rates. The paper's plotted magnitudes (e.g.
    /// Figure 3(d)'s ≈0.2 fraction of domains excluded in 5 h) are not
    /// attainable with the stated cumulative rates under *any*
    /// apportionment, because nearly every successful attack is eventually
    /// detected and every detection excludes a domain; the thesis the
    /// paper cites for full details is unavailable. This factor models the
    /// fraction of the cumulative attack/alarm pressure that materializes
    /// as the per-entity processes the SAN describes (DESIGN.md §5).
    pub effective_rate_factor: f64,

    /// Host attack categories and their detection probabilities.
    pub attack_mix: AttackMix,
    /// IDS detection probability for corrupt replicas (paper: 0.80).
    pub detect_replica: f64,
    /// IDS detection probability for corrupt managers (paper: 0.80).
    pub detect_manager: f64,
    /// Rate of the IDS detection activities — the reciprocal of the mean
    /// latency between an intrusion and its (possible) detection. The
    /// paper gives probabilities but not latencies; 1/hour is our
    /// documented assumption (DESIGN.md §5).
    pub ids_rate: f64,

    /// Rate at which a corrupt replica exhibits anomalous behavior during
    /// group communication (paper: 2 per hour).
    pub misbehave_rate: f64,

    /// The intra-domain attack-spread variable (paper default: 1; swept
    /// 0–10 in §4.3). Following the paper's SAN description, this single
    /// variable is **both** the rate of the one-shot `propagate_domain`
    /// activity fired by a corrupt host **and** the amount it adds to the
    /// domain's spread level ("the marking … is incremented by a model
    /// variable representing the amount of spread effect. This variable
    /// also determines the rate of the propagate domain activity").
    pub spread_rate_domain: f64,
    /// The system-wide attack-spread variable (paper: 0.1), with the same
    /// dual role as [`Params::spread_rate_domain`].
    pub spread_rate_system: f64,
    /// Scale of the intra-domain spread level in the host attack rate:
    /// the rate is multiplied by
    /// `1 + effect_domain·level_d + effect_system·level_s`.
    pub spread_effect_domain: f64,
    /// Scale of the system-wide spread level (much smaller than the
    /// intra-domain effect, per the paper).
    pub spread_effect_system: f64,

    /// Factor governing how much more vulnerable a host's replicas and
    /// manager become once the host itself is corrupted (paper default: 2;
    /// 5 in the §4.3 study: corruption of the host "increased fivefold the
    /// chances that the replicas and management entity running on the host
    /// would be corrupt").
    ///
    /// Once the attacker owns the host OS, attacking co-located processes
    /// is a *local* escalation rather than a remote attack, so the model
    /// rates that channel off the host attack rate: a replica/manager on a
    /// corrupt host is corrupted at
    /// `max(multiplier × host_attack_rate, multiplier × base_rate)`
    /// (see [`Params::corrupt_host_replica_rate`]). With the remote
    /// per-replica rate far below the per-host rate, the first term
    /// dominates; the paper's literal "multiply the base rate by a
    /// constant" is recovered whenever the base rate dominates.
    pub host_corruption_multiplier: f64,

    /// Management exclusion policy.
    pub scheme: ManagementScheme,
    /// Replica placement constraint.
    pub placement: PlacementConstraint,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            num_domains: 10,
            hosts_per_domain: 3,
            num_apps: 4,
            reps_per_app: 7,
            base_attack_rate: 3.0,
            // Relative weights are not given by the paper; these are the
            // repository's calibrated defaults (DESIGN.md §5): the host
            // OS/services present a larger attack surface than a single
            // application replica or middleware manager.
            attack_weight_host: 1.0,
            attack_weight_replica: 0.15,
            attack_weight_manager: 0.5,
            false_alarm_rate: 2.0,
            effective_rate_factor: 0.5,
            attack_mix: AttackMix::default(),
            detect_replica: 0.80,
            detect_manager: 0.80,
            // Mean latency ≈ 6.7 h between an intrusion and the *confirmed*
            // detection that triggers the drastic exclusion response; also a
            // calibrated default (the paper gives probabilities only).
            ids_rate: 0.15,
            misbehave_rate: 2.0,
            spread_rate_domain: 1.0,
            spread_rate_system: 0.1,
            spread_effect_domain: 1.0,
            spread_effect_system: 0.1,
            host_corruption_multiplier: 2.0,
            scheme: ManagementScheme::DomainExclusion,
            placement: PlacementConstraint::OnePerDomain,
        }
    }
}

/// Error from validating a [`Params`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParamsError {
    what: String,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ITUA parameters: {}", self.what)
    }
}

impl std::error::Error for ParamsError {}

impl Params {
    /// Sets the domain layout.
    pub fn with_domains(mut self, domains: usize, hosts_per_domain: usize) -> Self {
        self.num_domains = domains;
        self.hosts_per_domain = hosts_per_domain;
        self
    }

    /// Sets the application layout.
    pub fn with_applications(mut self, apps: usize, reps_per_app: usize) -> Self {
        self.num_apps = apps;
        self.reps_per_app = reps_per_app;
        self
    }

    /// Sets the management scheme, also switching the placement constraint
    /// to the scheme's natural one.
    pub fn with_scheme(mut self, scheme: ManagementScheme) -> Self {
        self.scheme = scheme;
        self.placement = match scheme {
            ManagementScheme::DomainExclusion => PlacementConstraint::OnePerDomain,
            ManagementScheme::HostExclusion => PlacementConstraint::OnePerHost,
        };
        self
    }

    /// Sets the intra-domain spread rate (the §4.3 sweep variable).
    pub fn with_spread_rate(mut self, rate: f64) -> Self {
        self.spread_rate_domain = rate;
        self
    }

    /// Sets the host-corruption multiplier (2 by default, 5 in §4.3).
    pub fn with_host_corruption_multiplier(mut self, m: f64) -> Self {
        self.host_corruption_multiplier = m;
        self
    }

    /// Total number of hosts.
    pub fn total_hosts(&self) -> usize {
        self.num_domains * self.hosts_per_domain
    }

    /// Total number of replica slots.
    pub fn total_replica_slots(&self) -> usize {
        self.num_apps * self.reps_per_app
    }

    /// Base attack rate on one host (before spread scaling).
    pub fn host_attack_rate(&self) -> f64 {
        self.effective_rate_factor * self.base_attack_rate * self.attack_weight_host
            / self.attack_weight_total()
    }

    /// Base attack rate on one running replica (before host-corruption
    /// scaling).
    pub fn replica_attack_rate(&self) -> f64 {
        self.effective_rate_factor * self.base_attack_rate * self.attack_weight_replica
            / self.attack_weight_total()
    }

    /// Base attack rate on one manager (before host-corruption scaling).
    pub fn manager_attack_rate(&self) -> f64 {
        self.effective_rate_factor * self.base_attack_rate * self.attack_weight_manager
            / self.attack_weight_total()
    }

    fn attack_weight_total(&self) -> f64 {
        // Per-entity rates are normalized against the paper's *baseline*
        // configuration (10 domains × 3 hosts, 4 applications × 7
        // replicas), not the current study's entity counts: §4.2 states
        // that "the probability of a successful intrusion into a host is
        // assumed to be the same in all experiments", so the cumulative
        // rate describes the baseline and per-entity rates are constants.
        self.attack_weight_host * REFERENCE_HOSTS as f64
            + self.attack_weight_replica * REFERENCE_REPLICA_SLOTS as f64
            + self.attack_weight_manager * REFERENCE_HOSTS as f64
    }

    /// Rate at which a replica running on a *corrupt* host is corrupted
    /// (local escalation channel; see
    /// [`Params::host_corruption_multiplier`]).
    pub fn corrupt_host_replica_rate(&self) -> f64 {
        self.host_corruption_multiplier * self.host_attack_rate().max(self.replica_attack_rate())
    }

    /// Rate at which the manager of a *corrupt* host is corrupted.
    pub fn corrupt_host_manager_rate(&self) -> f64 {
        self.host_corruption_multiplier * self.host_attack_rate().max(self.manager_attack_rate())
    }

    /// False-alarm rate charged to one host (host OS / manager alarms).
    ///
    /// Like the attack rates, normalized by the baseline configuration so
    /// the per-host rate is study-independent.
    pub fn host_false_alarm_rate(&self) -> f64 {
        self.effective_rate_factor * self.false_alarm_rate
            / (REFERENCE_HOSTS + REFERENCE_REPLICA_SLOTS) as f64
    }

    /// False-alarm rate charged to one replica slot.
    pub fn replica_false_alarm_rate(&self) -> f64 {
        self.host_false_alarm_rate()
    }

    /// Host attack-rate multiplier given accumulated spread levels.
    pub fn spread_multiplier(&self, domain_spread: f64, system_spread: f64) -> f64 {
        1.0 + self.spread_effect_domain * domain_spread + self.spread_effect_system * system_spread
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] for empty layouts, probabilities outside
    /// `[0, 1]`, negative rates, or more than 15 applications (the paper's
    /// bit-vector identifier limit, which the SAN encoding shares).
    pub fn validate(&self) -> Result<(), ParamsError> {
        let err = |what: &str| Err(ParamsError { what: what.into() });
        if self.num_domains == 0 || self.hosts_per_domain == 0 {
            return err("need at least one domain and one host per domain");
        }
        if self.num_apps == 0 || self.reps_per_app == 0 {
            return err("need at least one application with one replica");
        }
        if self.num_apps > 15 {
            return err("at most 15 applications (bit-vector identifier limit)");
        }
        let probs = [
            self.attack_mix.p_script,
            self.attack_mix.p_exploratory,
            self.attack_mix.p_innovative,
            self.attack_mix.detect_script,
            self.attack_mix.detect_exploratory,
            self.attack_mix.detect_innovative,
            self.detect_replica,
            self.detect_manager,
        ];
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return err("probabilities must be in [0, 1]");
        }
        let mix =
            self.attack_mix.p_script + self.attack_mix.p_exploratory + self.attack_mix.p_innovative;
        if (mix - 1.0).abs() > 1e-9 {
            return err("attack category probabilities must sum to 1");
        }
        let rates = [
            self.base_attack_rate,
            self.false_alarm_rate,
            self.ids_rate,
            self.misbehave_rate,
            self.spread_rate_domain,
            self.spread_rate_system,
            self.spread_effect_domain,
            self.spread_effect_system,
        ];
        if rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return err("rates must be finite and nonnegative");
        }
        if self.base_attack_rate <= 0.0 || self.ids_rate <= 0.0 {
            return err("base attack rate and IDS rate must be positive");
        }
        if !(self.host_corruption_multiplier.is_finite()) || self.host_corruption_multiplier < 1.0 {
            return err("host corruption multiplier must be >= 1");
        }
        if !self.effective_rate_factor.is_finite() || self.effective_rate_factor <= 0.0 {
            return err("effective rate factor must be positive");
        }
        let weights = [
            self.attack_weight_host,
            self.attack_weight_replica,
            self.attack_weight_manager,
        ];
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) || weights.iter().sum::<f64>() <= 0.0
        {
            return err("attack weights must be nonnegative with positive sum");
        }
        Ok(())
    }

    /// Whether a group of `active` members with `corrupt` undetected
    /// corruptions can still reach Byzantine agreement (strictly fewer than
    /// one third corrupt).
    pub fn quorum_ok(active: usize, corrupt: usize) -> bool {
        3 * corrupt < active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_4() {
        let p = Params::default();
        assert_eq!(p.base_attack_rate, 3.0);
        assert_eq!(p.false_alarm_rate, 2.0);
        assert_eq!(p.attack_mix.p_script, 0.80);
        assert_eq!(p.attack_mix.p_exploratory, 0.15);
        assert_eq!(p.attack_mix.p_innovative, 0.05);
        assert_eq!(p.attack_mix.detect_script, 0.90);
        assert_eq!(p.attack_mix.detect_exploratory, 0.75);
        assert_eq!(p.attack_mix.detect_innovative, 0.40);
        assert_eq!(p.detect_replica, 0.80);
        assert_eq!(p.detect_manager, 0.80);
        assert_eq!(p.misbehave_rate, 2.0);
        assert_eq!(p.spread_rate_domain, 1.0);
        assert_eq!(p.spread_rate_system, 0.1);
        assert_eq!(p.host_corruption_multiplier, 2.0);
        assert_eq!(p.scheme, ManagementScheme::DomainExclusion);
        p.validate().unwrap();
    }

    #[test]
    fn cumulative_rates_apportioned_at_baseline() {
        // At the baseline configuration with equal weights and no
        // calibration factor, per-entity rates sum back to the paper's
        // cumulative rates.
        let mut p = Params::default()
            .with_domains(10, 3)
            .with_applications(4, 7);
        p.attack_weight_host = 1.0;
        p.attack_weight_replica = 1.0;
        p.attack_weight_manager = 1.0;
        p.effective_rate_factor = 1.0;
        let total = p.host_attack_rate() * 30.0
            + p.replica_attack_rate() * 28.0
            + p.manager_attack_rate() * 30.0;
        assert!((total - 3.0).abs() < 1e-12);
        let fa = p.host_false_alarm_rate() * 30.0 + p.replica_false_alarm_rate() * 28.0;
        assert!((fa - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_entity_rates_are_study_independent() {
        // §4.2: "the probability of a successful intrusion into a host is
        // assumed to be the same in all experiments".
        let small = Params::default()
            .with_domains(12, 1)
            .with_applications(2, 7);
        let large = Params::default()
            .with_domains(10, 4)
            .with_applications(8, 7);
        assert_eq!(small.host_attack_rate(), large.host_attack_rate());
        assert_eq!(small.replica_attack_rate(), large.replica_attack_rate());
        assert_eq!(small.manager_attack_rate(), large.manager_attack_rate());
        assert_eq!(small.host_false_alarm_rate(), large.host_false_alarm_rate());
    }

    #[test]
    fn builders_update_layout() {
        let p = Params::default().with_domains(6, 2).with_applications(8, 7);
        assert_eq!(p.total_hosts(), 12);
        assert_eq!(p.total_replica_slots(), 56);
        p.validate().unwrap();
    }

    #[test]
    fn scheme_switch_changes_placement() {
        let p = Params::default().with_scheme(ManagementScheme::HostExclusion);
        assert_eq!(p.placement, PlacementConstraint::OnePerHost);
        let p = p.with_scheme(ManagementScheme::DomainExclusion);
        assert_eq!(p.placement, PlacementConstraint::OnePerDomain);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(Params::default().with_domains(0, 3).validate().is_err());
        assert!(Params::default()
            .with_applications(16, 7)
            .validate()
            .is_err());
        let mut p = Params::default();
        p.attack_mix.p_script = 0.5; // mix no longer sums to 1
        assert!(p.validate().is_err());
        let p = Params {
            detect_replica: 1.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = Params {
            base_attack_rate: 0.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = Params {
            host_corruption_multiplier: 0.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = Params {
            spread_rate_domain: -1.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn spread_multiplier_is_linear() {
        let p = Params::default();
        assert_eq!(p.spread_multiplier(0.0, 0.0), 1.0);
        assert_eq!(p.spread_multiplier(2.0, 0.0), 3.0);
        assert!((p.spread_multiplier(0.0, 3.0) - 1.3).abs() < 1e-12);
        assert!((p.spread_multiplier(1.0, 1.0) - 2.1).abs() < 1e-12);
        // §4.3: a spread variable of 10 adds 10 to the level per event.
        assert_eq!(p.spread_multiplier(10.0, 0.0), 11.0);
    }

    #[test]
    fn quorum_rule_is_strict_third() {
        // "less than a third of the currently active group members"
        assert!(Params::quorum_ok(7, 2));
        assert!(!Params::quorum_ok(7, 3));
        assert!(Params::quorum_ok(4, 1));
        assert!(!Params::quorum_ok(3, 1));
        assert!(!Params::quorum_ok(1, 1));
        assert!(!Params::quorum_ok(0, 0)); // empty group cannot agree
        assert!(Params::quorum_ok(1, 0));
    }

    #[test]
    fn zero_spread_rate_is_valid() {
        // §4.3 sweeps the spread rate down to 0.
        let p = Params::default().with_spread_rate(0.0);
        p.validate().unwrap();
    }
}

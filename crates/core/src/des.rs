//! Direct discrete-event simulation of the ITUA replication system.
//!
//! This encodes the same stochastic process as the SAN of
//! [`crate::san_model`], but with explicit state (hosts, domains, replicas,
//! managers) instead of places, which makes it both much faster and a
//! semantically independent implementation for cross-validation.
//!
//! The process (paper §2/§3; see `DESIGN.md` §3 for the operationalized
//! semantics):
//!
//! * Attacks arrive as Poisson processes per host, per running replica, and
//!   per manager. Host attacks fall into three categories (script-based /
//!   exploratory / innovative) with decreasing IDS detection probability.
//! * Host corruption doubles (configurable) the attack rate on the
//!   replicas and manager of that host, and spawns one-shot intra-domain
//!   and system-wide spread events that scale every host's attack rate.
//! * The IDS detects an intrusion (per-category probability) after an
//!   exponential latency, or misses it forever. It also raises false
//!   alarms on uncorrupted hosts; following the paper's SAN description,
//!   the replica-level false-alarm activity is enabled only once the
//!   replica is actually corrupt (an extra detection channel), while
//!   host-level false alarms fire only while the host is clean.
//! * A corrupt replica misbehaves during group communication at rate 2/h
//!   and is convicted by its replication group iff fewer than a third of
//!   the currently active replicas are corrupt.
//! * On conviction/detection, the management algorithm excludes the whole
//!   domain (or just the host, per [`ManagementScheme`]), provided the
//!   managers needed for the response are not themselves compromised, and
//!   restarts killed replicas in uniformly random eligible domains/hosts.

use crate::measures::{RunOutput, Snapshot};
use crate::params::{ManagementScheme, Params, ParamsError, PlacementConstraint};
use itua_sim::queue::EventQueue;
use itua_sim::rng::Rng;
use itua_stats::timeweighted::TimeWeighted;

/// Host attack categories (Jonsson & Olovsson classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttackCategory {
    Script,
    Exploratory,
    Innovative,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Successful attack on a host's OS/services. Carries an epoch so that
    /// rate changes (spread) invalidate stale schedules.
    HostAttack { host: usize, epoch: u32 },
    /// IDS detects the host intrusion (pre-sampled success).
    HostDetect { host: usize },
    /// IDS false alarm on an uncorrupted host.
    HostFalseAlarm { host: usize },
    /// Successful attack on the manager of a host.
    MgrAttack { host: usize, epoch: u32 },
    /// IDS detects the manager intrusion.
    MgrDetect { host: usize },
    /// Successful attack on a running replica.
    RepAttack { replica: usize, epoch: u32 },
    /// IDS detects the replica corruption (valid_ID).
    RepDetect { replica: usize },
    /// Replica-level false-alarm channel (paper-literal: enabled once the
    /// replica is corrupt).
    RepFalseDetect { replica: usize },
    /// Corrupt replica misbehaves during group communication.
    RepMisbehave { replica: usize },
    /// One-shot intra-domain attack propagation from a corrupt host.
    SpreadDomain { host: usize },
    /// One-shot system-wide attack propagation from a corrupt host.
    SpreadSystem { host: usize },
}

#[derive(Debug, Clone)]
struct Host {
    domain: usize,
    /// False once the host is excluded.
    alive: bool,
    corrupt: bool,
    attack_epoch: u32,
    mgr_alive: bool,
    mgr_corrupt: bool,
    mgr_attack_epoch: u32,
    /// Indices into `replicas` of replicas currently placed here.
    replicas: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Domain {
    excluded: bool,
    spread_level: f64,
    active_hosts: usize,
    active_mgrs: usize,
    corrupt_mgrs: usize,
}

#[derive(Debug, Clone)]
struct Replica {
    app: usize,
    host: usize,
    alive: bool,
    corrupt: bool,
    /// Convicted (by group or IDS): excluded from group communication and
    /// no longer counted as undetected-corrupt; remains in
    /// `replicas_running` until its host/domain is shut down (paper
    /// semantics).
    convicted: bool,
    attack_epoch: u32,
}

#[derive(Debug, Clone)]
struct App {
    running: usize,
    corrupt_undetected: usize,
    need_recovery: usize,
    improper: TimeWeighted,
    byzantine: bool,
}

/// The ITUA discrete-event model.
///
/// Create once per parameter set; every [`ItuaDes::run`] is an independent
/// replication fully determined by its seed.
#[derive(Debug, Clone)]
pub struct ItuaDes {
    params: Params,
}

/// Reusable per-thread simulation state for [`ItuaDes::run_into`].
///
/// Holds the event queue, host/domain/replica/app vectors, and sample
/// buffer so a worker thread can run many replications without
/// reallocating them. A scratch is tied to the parameter set it was
/// created from ([`ItuaDes::scratch`]); reusing it never changes results —
/// every `run_into` fully resets the state, so output depends only on the
/// `(seed, horizon, sample_times)` arguments.
pub struct DesScratch {
    state: State,
    samples: Vec<f64>,
}

/// Mutable simulation state for one run.
///
/// `Clone` deep-copies the entire mid-run state, including the event queue
/// and the run's RNG; an importance-splitting branch clones the state at a
/// level crossing and continues independently.
#[derive(Clone)]
struct State {
    p: Params,
    rng: Rng,
    queue: EventQueue<Event>,
    now: f64,
    hosts: Vec<Host>,
    domains: Vec<Domain>,
    replicas: Vec<Replica>,
    apps: Vec<App>,
    system_spread_level: f64,
    active_mgrs_total: usize,
    corrupt_mgrs_total: usize,
    excluded_domains: usize,
    exclusion_fractions: Vec<f64>,
    first_byzantine_time: Option<f64>,
    first_improper_time: Option<f64>,
}

impl ItuaDes {
    /// Creates the model after validating `params`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] for invalid parameters.
    pub fn new(params: Params) -> Result<Self, ParamsError> {
        params.validate()?;
        Ok(ItuaDes { params })
    }

    /// The parameter set.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Creates a reusable scratch for [`ItuaDes::run_into`].
    pub fn scratch(&self) -> DesScratch {
        DesScratch {
            state: State::new(self.params.clone(), Rng::seed_from_u64(0)),
            samples: Vec::new(),
        }
    }

    /// Runs one replication until `horizon`, sampling instant-of-time
    /// measures at `sample_times` (ascending; values beyond the horizon are
    /// clamped to it).
    ///
    /// Equivalent to [`ItuaDes::run_into`] with a fresh scratch; use that
    /// form to amortise state allocation across replications.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive and finite.
    pub fn run(&self, seed: u64, horizon: f64, sample_times: &[f64]) -> RunOutput {
        let mut scratch = self.scratch();
        self.run_into(seed, horizon, sample_times, &mut scratch)
    }

    /// Runs one replication, reusing `scratch`'s allocations.
    ///
    /// The scratch is reset first, so the output is byte-identical to
    /// [`ItuaDes::run`] with the same arguments, regardless of what the
    /// scratch was previously used for.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive and finite, or if `scratch` was
    /// created for a different topology (host/domain/app counts).
    pub fn run_into(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut DesScratch,
    ) -> RunOutput {
        assert!(horizon > 0.0 && horizon.is_finite(), "bad horizon");
        let DesScratch { state: st, samples } = scratch;
        assert!(
            st.hosts.len() == self.params.total_hosts()
                && st.domains.len() == self.params.num_domains
                && st.apps.len() == self.params.num_apps,
            "scratch does not match this model's topology"
        );
        st.p = self.params.clone();
        st.reset(Rng::seed_from_u64(seed));
        st.initial_placement();

        clamp_sample_times(sample_times, horizon, samples);
        let mut snapshots = Vec::with_capacity(samples.len());
        let mut next_sample = 0usize;

        while step_state(st, horizon, samples, &mut next_sample, &mut snapshots) {}

        finish_output(st, horizon, snapshots)
    }

    /// Creates one importance-splitting branch at its time-zero state.
    ///
    /// The branch reproduces [`ItuaDes::run_into`] exactly when stepped to
    /// the horizon without splits: the same seed initialization, placement
    /// draws, sample clamping, and per-event handling (both paths share
    /// [`step_state`]), so a run in which no threshold is crossed is
    /// bit-identical to the plain replication path.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive and finite.
    pub fn split_branch<'a, L>(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        level_fn: &'a L,
    ) -> DesBranch<'a, L> {
        assert!(horizon > 0.0 && horizon.is_finite(), "bad horizon");
        let mut state = State::new(self.params.clone(), Rng::seed_from_u64(seed));
        state.initial_placement();
        let mut samples = Vec::new();
        clamp_sample_times(sample_times, horizon, &mut samples);
        DesBranch {
            level_fn,
            state,
            samples,
            next_sample: 0,
            snapshots: Vec::new(),
            horizon,
        }
    }
}

/// Clamps requested sample times into `out`: values beyond the horizon
/// collapse onto it, non-positive ones are dropped, and the result is
/// sorted and deduplicated — the schedule every run actually snapshots.
pub(crate) fn clamp_sample_times(sample_times: &[f64], horizon: f64, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        sample_times
            .iter()
            .map(|&t| t.min(horizon))
            .filter(|&t| t > 0.0),
    );
    out.sort_by(|a, b| a.partial_cmp(b).expect("no NaN sample times"));
    out.dedup();
}

/// Advances a run by one event: delivers due snapshots, then pops and
/// handles the next event. Returns `false` once the queue is drained or
/// the next event lies beyond the horizon (setting `st.now = horizon`).
///
/// Both [`ItuaDes::run_into`] and the splitting branches drive the
/// simulation exclusively through this function, which is what makes the
/// two paths bit-identical when no split fires.
fn step_state(
    st: &mut State,
    horizon: f64,
    samples: &[f64],
    next_sample: &mut usize,
    snapshots: &mut Vec<Snapshot>,
) -> bool {
    let next_time = st.queue.peek_time();
    let cutoff = match next_time {
        Some(t) if t <= horizon => t,
        _ => horizon,
    };
    while *next_sample < samples.len() && samples[*next_sample] <= cutoff {
        snapshots.push(st.snapshot(samples[*next_sample]));
        *next_sample += 1;
    }
    match next_time {
        Some(t) if t <= horizon => {
            let (t, ev) = st.queue.pop().expect("peeked");
            st.now = t;
            st.handle(ev);
            true
        }
        _ => {
            st.now = horizon;
            false
        }
    }
}

/// Builds the run's [`RunOutput`] once stepping has finished.
fn finish_output(st: &mut State, horizon: f64, snapshots: Vec<Snapshot>) -> RunOutput {
    RunOutput {
        horizon,
        improper_time_per_app: st
            .apps
            .iter()
            .map(|a| a.improper.integral_until(horizon))
            .collect(),
        byzantine_per_app: st.apps.iter().map(|a| a.byzantine).collect(),
        exclusion_corrupt_fractions: std::mem::take(&mut st.exclusion_fractions),
        snapshots,
        first_byzantine_time: st.first_byzantine_time,
        first_improper_time: st.first_improper_time,
    }
}

/// Read-only view of a DES run's state, exposed to importance level
/// functions between events.
pub struct DesStateView<'a>(&'a State);

impl DesStateView<'_> {
    /// Number of domains that are excluded or contain any compromised
    /// host (host OS, manager, or a live corrupt replica) — the natural
    /// importance level for unreliability: domains the intrusion has
    /// already reached.
    pub fn corrupt_domain_count(&self) -> u32 {
        let st = self.0;
        let hpd = st.p.hosts_per_domain;
        (0..st.p.num_domains)
            .filter(|&d| {
                st.domains[d].excluded || (d * hpd..(d + 1) * hpd).any(|h| st.host_compromised(h))
            })
            .count() as u32
    }
}

/// One importance-splitting trajectory of the DES backend.
///
/// Created by [`ItuaDes::split_branch`]; driven by `itua_rare::run_tree`.
pub struct DesBranch<'a, L> {
    level_fn: &'a L,
    state: State,
    samples: Vec<f64>,
    next_sample: usize,
    snapshots: Vec<Snapshot>,
    horizon: f64,
}

impl<L> Clone for DesBranch<'_, L> {
    fn clone(&self) -> Self {
        DesBranch {
            level_fn: self.level_fn,
            state: self.state.clone(),
            samples: self.samples.clone(),
            next_sample: self.next_sample,
            snapshots: self.snapshots.clone(),
            horizon: self.horizon,
        }
    }
}

impl<L> itua_rare::SplitBranch for DesBranch<'_, L>
where
    L: for<'s> itua_rare::LevelFn<DesStateView<'s>>,
{
    type Output = RunOutput;
    type Error = std::convert::Infallible;

    fn step(&mut self) -> Result<bool, Self::Error> {
        Ok(step_state(
            &mut self.state,
            self.horizon,
            &self.samples,
            &mut self.next_sample,
            &mut self.snapshots,
        ))
    }

    fn level(&self) -> u32 {
        self.level_fn.level(&DesStateView(&self.state))
    }

    fn reseed(&mut self, seed: u64) {
        self.state.rng = Rng::seed_from_u64(seed);
        self.state.resample_pending();
    }

    fn survives(&mut self, p: f64) -> bool {
        self.state.rng.bernoulli(p)
    }

    fn finish(mut self) -> RunOutput {
        finish_output(&mut self.state, self.horizon, self.snapshots)
    }
}

impl State {
    fn new(p: Params, rng: Rng) -> Self {
        let nh = p.total_hosts();
        let num_domains = p.num_domains;
        let num_apps = p.num_apps;
        let mut st = State {
            p,
            rng: Rng::seed_from_u64(0),
            queue: EventQueue::new(),
            now: 0.0,
            hosts: vec![
                Host {
                    domain: 0,
                    alive: true,
                    corrupt: false,
                    attack_epoch: 0,
                    mgr_alive: true,
                    mgr_corrupt: false,
                    mgr_attack_epoch: 0,
                    replicas: Vec::new(),
                };
                nh
            ],
            domains: vec![
                Domain {
                    excluded: false,
                    spread_level: 0.0,
                    active_hosts: 0,
                    active_mgrs: 0,
                    corrupt_mgrs: 0,
                };
                num_domains
            ],
            replicas: Vec::new(),
            apps: vec![
                App {
                    running: 0,
                    corrupt_undetected: 0,
                    need_recovery: 0,
                    improper: TimeWeighted::new(0.0, 1.0),
                    byzantine: false,
                };
                num_apps
            ],
            system_spread_level: 0.0,
            active_mgrs_total: 0,
            corrupt_mgrs_total: 0,
            excluded_domains: 0,
            exclusion_fractions: Vec::new(),
            first_byzantine_time: None,
            first_improper_time: None,
        };
        st.reset(rng);
        st
    }

    /// Restores the pristine time-zero state (the one [`State::new`]
    /// produces) while keeping every allocation: the event queue's backing
    /// storage, the per-host replica index vectors, and the replica arena.
    ///
    /// Replication independence relies on this being a *complete* reset:
    /// any field mutated during a run must be restored here, so that a
    /// subsequent run's trajectory depends only on the fresh `rng`.
    fn reset(&mut self, rng: Rng) {
        let hpd = self.p.hosts_per_domain;
        self.rng = rng;
        self.queue.clear();
        self.now = 0.0;
        for (h, host) in self.hosts.iter_mut().enumerate() {
            host.domain = h / hpd;
            host.alive = true;
            host.corrupt = false;
            host.attack_epoch = 0;
            host.mgr_alive = true;
            host.mgr_corrupt = false;
            host.mgr_attack_epoch = 0;
            host.replicas.clear();
        }
        for dom in &mut self.domains {
            dom.excluded = false;
            dom.spread_level = 0.0;
            dom.active_hosts = hpd;
            dom.active_mgrs = hpd;
            dom.corrupt_mgrs = 0;
        }
        self.replicas.clear();
        for app in &mut self.apps {
            app.running = 0;
            app.corrupt_undetected = 0;
            app.need_recovery = 0;
            app.improper = TimeWeighted::new(0.0, 1.0); // no replicas yet
            app.byzantine = false;
        }
        self.system_spread_level = 0.0;
        self.active_mgrs_total = self.hosts.len();
        self.corrupt_mgrs_total = 0;
        self.excluded_domains = 0;
        self.exclusion_fractions.clear();
        self.first_byzantine_time = None;
        self.first_improper_time = None;
    }

    // ------------------------------------------------------------------
    // Initialization
    // ------------------------------------------------------------------

    fn initial_placement(&mut self) {
        // Place replicas app by app via the same random algorithm the
        // managers use for recovery.
        for app in 0..self.p.num_apps {
            for _ in 0..self.p.reps_per_app {
                if !self.start_replica_somewhere(app) {
                    break; // ran out of eligible domains (e.g. D < R)
                }
            }
        }
        // Arm the per-host processes.
        for h in 0..self.hosts.len() {
            self.schedule_host_attack(h);
            self.schedule_host_false_alarm(h);
            self.schedule_mgr_attack(h);
        }
        // Initial improper state (apps now have replicas).
        for app in 0..self.apps.len() {
            self.update_improper(app);
        }
    }

    // ------------------------------------------------------------------
    // Rates and scheduling
    // ------------------------------------------------------------------

    fn exp_delay(&mut self, rate: f64) -> Option<f64> {
        if rate <= 0.0 {
            None
        } else {
            Some(-self.rng.next_f64_open().ln() / rate)
        }
    }

    fn schedule_host_attack(&mut self, h: usize) {
        let host = &self.hosts[h];
        if !host.alive || host.corrupt {
            return;
        }
        let rate = self.p.host_attack_rate()
            * self.p.spread_multiplier(
                self.domains[host.domain].spread_level,
                self.system_spread_level,
            );
        let epoch = self.hosts[h].attack_epoch;
        if let Some(d) = self.exp_delay(rate) {
            self.queue
                .schedule(self.now + d, Event::HostAttack { host: h, epoch });
        }
    }

    fn schedule_host_false_alarm(&mut self, h: usize) {
        if !self.hosts[h].alive || self.hosts[h].corrupt {
            return;
        }
        if let Some(d) = self.exp_delay(self.p.host_false_alarm_rate()) {
            self.queue
                .schedule(self.now + d, Event::HostFalseAlarm { host: h });
        }
    }

    fn schedule_mgr_attack(&mut self, h: usize) {
        let host = &self.hosts[h];
        if !host.alive || !host.mgr_alive || host.mgr_corrupt {
            return;
        }
        let rate = if host.corrupt {
            self.p.corrupt_host_manager_rate()
        } else {
            self.p.manager_attack_rate()
        };
        let epoch = host.mgr_attack_epoch;
        if let Some(d) = self.exp_delay(rate) {
            self.queue
                .schedule(self.now + d, Event::MgrAttack { host: h, epoch });
        }
    }

    fn schedule_replica_attack(&mut self, r: usize) {
        let rep = &self.replicas[r];
        if !rep.alive || rep.corrupt {
            return;
        }
        let rate = if self.hosts[rep.host].corrupt {
            self.p.corrupt_host_replica_rate()
        } else {
            self.p.replica_attack_rate()
        };
        let epoch = rep.attack_epoch;
        if let Some(d) = self.exp_delay(rate) {
            self.queue
                .schedule(self.now + d, Event::RepAttack { replica: r, epoch });
        }
    }

    /// Redraws the remaining delay of every pending event from the
    /// current stream.
    ///
    /// Every delay in this model is exponential, so by memorylessness the
    /// redrawn schedule has exactly the law of the old one conditioned on
    /// the present state — this changes *which* future gets sampled,
    /// never its distribution. An importance-splitting branch calls this
    /// after reseeding (via [`itua_rare::SplitBranch::reseed`]): without
    /// it, sibling branches would inherit the parent's already-drawn
    /// event times from the cloned queue and replay near-identical
    /// futures, defeating the variance reduction splitting exists for.
    /// Entries whose guard no longer holds (stale epochs, dead or already
    /// corrupt entities) would be no-ops at pop time and are dropped
    /// instead of redrawn. Events are redrawn in queue (time) order, so
    /// the result is a pure function of state and seed.
    fn resample_pending(&mut self) {
        let mut pending = Vec::new();
        while let Some((_, ev)) = self.queue.pop() {
            pending.push(ev);
        }
        for ev in pending {
            let rate = match ev {
                Event::HostAttack { host, epoch } => {
                    let h = &self.hosts[host];
                    (h.alive && !h.corrupt && h.attack_epoch == epoch).then(|| {
                        self.p.host_attack_rate()
                            * self.p.spread_multiplier(
                                self.domains[h.domain].spread_level,
                                self.system_spread_level,
                            )
                    })
                }
                Event::HostDetect { host } => {
                    let h = &self.hosts[host];
                    (h.alive && h.corrupt).then_some(self.p.ids_rate)
                }
                Event::HostFalseAlarm { host } => {
                    let h = &self.hosts[host];
                    (h.alive && !h.corrupt).then(|| self.p.host_false_alarm_rate())
                }
                Event::MgrAttack { host, epoch } => {
                    let h = &self.hosts[host];
                    (h.alive && h.mgr_alive && !h.mgr_corrupt && h.mgr_attack_epoch == epoch).then(
                        || {
                            if h.corrupt {
                                self.p.corrupt_host_manager_rate()
                            } else {
                                self.p.manager_attack_rate()
                            }
                        },
                    )
                }
                Event::MgrDetect { host } => {
                    let h = &self.hosts[host];
                    (h.alive && h.mgr_alive && h.mgr_corrupt).then_some(self.p.ids_rate)
                }
                Event::RepAttack { replica, epoch } => {
                    let r = &self.replicas[replica];
                    (r.alive && !r.corrupt && r.attack_epoch == epoch).then(|| {
                        if self.hosts[r.host].corrupt {
                            self.p.corrupt_host_replica_rate()
                        } else {
                            self.p.replica_attack_rate()
                        }
                    })
                }
                Event::RepDetect { replica } => {
                    let r = &self.replicas[replica];
                    (r.alive && r.corrupt && !r.convicted).then_some(self.p.ids_rate)
                }
                Event::RepFalseDetect { replica } => {
                    let r = &self.replicas[replica];
                    (r.alive && r.corrupt && !r.convicted)
                        .then(|| self.p.replica_false_alarm_rate())
                }
                Event::RepMisbehave { replica } => {
                    let r = &self.replicas[replica];
                    (r.alive && r.corrupt && !r.convicted).then_some(self.p.misbehave_rate)
                }
                Event::SpreadDomain { host } => {
                    let h = &self.hosts[host];
                    (h.alive && h.corrupt).then_some(self.p.spread_rate_domain)
                }
                Event::SpreadSystem { host } => {
                    let h = &self.hosts[host];
                    (h.alive && h.corrupt).then_some(self.p.spread_rate_system)
                }
            };
            if let Some(d) = rate.and_then(|rate| self.exp_delay(rate)) {
                self.queue.schedule(self.now + d, ev);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::HostAttack { host, epoch } => self.on_host_attack(host, epoch),
            Event::HostDetect { host } => self.on_host_detect(host),
            Event::HostFalseAlarm { host } => self.on_host_false_alarm(host),
            Event::MgrAttack { host, epoch } => self.on_mgr_attack(host, epoch),
            Event::MgrDetect { host } => self.on_mgr_detect(host),
            Event::RepAttack { replica, epoch } => self.on_rep_attack(replica, epoch),
            Event::RepDetect { replica } | Event::RepFalseDetect { replica } => {
                self.on_rep_convicted_by_ids(replica);
            }
            Event::RepMisbehave { replica } => self.on_rep_misbehave(replica),
            Event::SpreadDomain { host } => self.on_spread_domain(host),
            Event::SpreadSystem { host } => self.on_spread_system(host),
        }
    }

    fn on_host_attack(&mut self, h: usize, epoch: u32) {
        let host = &self.hosts[h];
        if !host.alive || host.corrupt || host.attack_epoch != epoch {
            return;
        }
        self.hosts[h].corrupt = true;

        // Category and (pre-sampled) IDS detection.
        let mix = self.p.attack_mix;
        let cat =
            match self
                .rng
                .weighted_choice(&[mix.p_script, mix.p_exploratory, mix.p_innovative])
            {
                0 => AttackCategory::Script,
                1 => AttackCategory::Exploratory,
                _ => AttackCategory::Innovative,
            };
        let p_detect = match cat {
            AttackCategory::Script => mix.detect_script,
            AttackCategory::Exploratory => mix.detect_exploratory,
            AttackCategory::Innovative => mix.detect_innovative,
        };
        if self.rng.bernoulli(p_detect) {
            if let Some(d) = self.exp_delay(self.p.ids_rate) {
                self.queue
                    .schedule(self.now + d, Event::HostDetect { host: h });
            }
        }

        // One-shot spread processes.
        if let Some(d) = self.exp_delay(self.p.spread_rate_domain) {
            self.queue
                .schedule(self.now + d, Event::SpreadDomain { host: h });
        }
        if let Some(d) = self.exp_delay(self.p.spread_rate_system) {
            self.queue
                .schedule(self.now + d, Event::SpreadSystem { host: h });
        }

        // Replicas and manager on this host become more vulnerable:
        // invalidate and re-arm their attack processes at the higher rate.
        let reps: Vec<usize> = self.hosts[h].replicas.clone();
        for r in reps {
            if self.replicas[r].alive && !self.replicas[r].corrupt {
                self.replicas[r].attack_epoch += 1;
                self.schedule_replica_attack(r);
            }
        }
        if self.hosts[h].mgr_alive && !self.hosts[h].mgr_corrupt {
            self.hosts[h].mgr_attack_epoch += 1;
            self.schedule_mgr_attack(h);
        }
    }

    fn on_host_detect(&mut self, h: usize) {
        if !self.hosts[h].alive || !self.hosts[h].corrupt {
            return;
        }
        // Response requires the local manager and the domain's manager
        // group to be uncompromised (paper §3.4).
        if self.host_level_response_possible(h) {
            self.respond_with_exclusion(h);
        }
    }

    fn on_host_false_alarm(&mut self, h: usize) {
        if !self.hosts[h].alive {
            return;
        }
        if self.hosts[h].corrupt {
            // False alarms are only raised while there has been no actual
            // intrusion; once corrupt, this channel is disabled.
            return;
        }
        if self.host_level_response_possible(h) {
            self.respond_with_exclusion(h);
        }
        // If the host survived (no response possible, or host-exclusion of
        // a different host), further false alarms can still occur.
        if self.hosts[h].alive && !self.hosts[h].corrupt {
            self.schedule_host_false_alarm(h);
        }
    }

    fn on_mgr_attack(&mut self, h: usize, epoch: u32) {
        let host = &self.hosts[h];
        if !host.alive || !host.mgr_alive || host.mgr_corrupt || host.mgr_attack_epoch != epoch {
            return;
        }
        self.hosts[h].mgr_corrupt = true;
        self.domains[self.hosts[h].domain].corrupt_mgrs += 1;
        self.corrupt_mgrs_total += 1;
        if self.rng.bernoulli(self.p.detect_manager) {
            if let Some(d) = self.exp_delay(self.p.ids_rate) {
                self.queue
                    .schedule(self.now + d, Event::MgrDetect { host: h });
            }
        }
    }

    fn on_mgr_detect(&mut self, h: usize) {
        if !self.hosts[h].alive || !self.hosts[h].mgr_alive || !self.hosts[h].mgr_corrupt {
            return;
        }
        // The detected manager cannot be required to report itself; the
        // response goes through the rest of the domain group (or the
        // system-wide group).
        let d = self.hosts[h].domain;
        if !self.domain_mgr_group_corrupt(d) || self.system_mgr_quorum_ok() {
            self.respond_with_exclusion(h);
        }
    }

    fn on_rep_attack(&mut self, r: usize, epoch: u32) {
        let rep = &self.replicas[r];
        if !rep.alive || rep.corrupt || rep.attack_epoch != epoch {
            return;
        }
        let app = rep.app;
        self.replicas[r].corrupt = true;
        self.apps[app].corrupt_undetected += 1;
        self.update_improper(app);

        // IDS detection (pre-sampled success), the paper-literal replica
        // false-alarm channel, and group-communication misbehavior.
        if self.rng.bernoulli(self.p.detect_replica) {
            if let Some(d) = self.exp_delay(self.p.ids_rate) {
                self.queue
                    .schedule(self.now + d, Event::RepDetect { replica: r });
            }
        }
        if let Some(d) = self.exp_delay(self.p.replica_false_alarm_rate()) {
            self.queue
                .schedule(self.now + d, Event::RepFalseDetect { replica: r });
        }
        if let Some(d) = self.exp_delay(self.p.misbehave_rate) {
            self.queue
                .schedule(self.now + d, Event::RepMisbehave { replica: r });
        }
    }

    fn on_rep_convicted_by_ids(&mut self, r: usize) {
        let rep = &self.replicas[r];
        if !rep.alive || !rep.corrupt || rep.convicted {
            return;
        }
        self.convict_replica(r);
    }

    fn on_rep_misbehave(&mut self, r: usize) {
        let rep = &self.replicas[r];
        if !rep.alive || !rep.corrupt || rep.convicted {
            return;
        }
        let app = rep.app;
        // Conviction by the replication group requires the group to still
        // reach Byzantine agreement.
        if Params::quorum_ok(self.apps[app].running, self.apps[app].corrupt_undetected) {
            self.convict_replica(r);
        } else {
            // The activity is disabled right now but may re-enable; by
            // memorylessness, re-arming is equivalent.
            if let Some(d) = self.exp_delay(self.p.misbehave_rate) {
                self.queue
                    .schedule(self.now + d, Event::RepMisbehave { replica: r });
            }
        }
    }

    fn on_spread_domain(&mut self, h: usize) {
        if !self.hosts[h].alive || !self.hosts[h].corrupt {
            return;
        }
        let d = self.hosts[h].domain;
        // The spread variable is both the propagate rate and the increment
        // (paper §3.4).
        self.domains[d].spread_level += self.p.spread_rate_domain;
        // Every clean host in the domain becomes more exposed.
        let lo = d * self.p.hosts_per_domain;
        for hh in lo..lo + self.p.hosts_per_domain {
            if self.hosts[hh].alive && !self.hosts[hh].corrupt {
                self.hosts[hh].attack_epoch += 1;
                self.schedule_host_attack(hh);
            }
        }
    }

    fn on_spread_system(&mut self, h: usize) {
        if !self.hosts[h].alive || !self.hosts[h].corrupt {
            return;
        }
        self.system_spread_level += self.p.spread_rate_system;
        for hh in 0..self.hosts.len() {
            if self.hosts[hh].alive && !self.hosts[hh].corrupt {
                self.hosts[hh].attack_epoch += 1;
                self.schedule_host_attack(hh);
            }
        }
    }

    // ------------------------------------------------------------------
    // Conviction, exclusion, recovery
    // ------------------------------------------------------------------

    /// Group/IDS conviction of a corrupt replica. Per §2, "the replication
    /// group excludes the convicted replica from all future
    /// communications": it leaves the group immediately (shrinking
    /// `replicas_running`) and needs a replacement. The managers
    /// additionally exclude its domain (or host) if they can still respond.
    fn convict_replica(&mut self, r: usize) {
        let app = self.replicas[r].app;
        let h = self.replicas[r].host;
        let d = self.hosts[h].domain;

        self.replicas[r].convicted = true;
        self.apps[app].corrupt_undetected -= 1;
        self.update_improper(app);

        // Response condition (paper: shut_host): the domain's manager group
        // is not corrupt, or there are enough good managers system-wide.
        if !self.domain_mgr_group_corrupt(d) || self.system_mgr_quorum_ok() {
            // The exclusion kills the convicted replica (still on its
            // host, so the Figure 3(c) measure sees the compromise) along
            // with everything else on the host/domain.
            self.respond_with_exclusion(h);
        }
        if self.replicas[r].alive {
            // No exclusion happened (gated response, or host-exclusion of
            // a different host cannot occur here). The group has still
            // excluded the replica from all future communication, and the
            // correct replicas asked for a replacement.
            self.replicas[r].alive = false;
            self.apps[app].running -= 1;
            self.apps[app].need_recovery += 1;
            self.hosts[h].replicas.retain(|&rr| rr != r);
            self.update_improper(app);
            self.try_recoveries();
        }
    }

    /// Excludes the domain of `h` (domain scheme) or `h` itself (host
    /// scheme), then lets the managers start replacement replicas.
    fn respond_with_exclusion(&mut self, h: usize) {
        match self.p.scheme {
            ManagementScheme::DomainExclusion => self.exclude_domain(self.hosts[h].domain),
            ManagementScheme::HostExclusion => {
                self.exclude_host(h);
            }
        }
        self.try_recoveries();
    }

    fn exclude_domain(&mut self, d: usize) {
        if self.domains[d].excluded {
            return;
        }
        // Measure: fraction of this domain's hosts with *any* corruption
        // (host OS, manager, or a replica) at exclusion time.
        let lo = d * self.p.hosts_per_domain;
        let hi = lo + self.p.hosts_per_domain;
        let corrupt = (lo..hi).filter(|&hh| self.host_compromised(hh)).count();
        self.exclusion_fractions
            .push(corrupt as f64 / self.p.hosts_per_domain as f64);

        self.domains[d].excluded = true;
        self.excluded_domains += 1;
        for hh in lo..hi {
            self.exclude_host(hh);
        }
    }

    fn exclude_host(&mut self, h: usize) {
        if !self.hosts[h].alive {
            return;
        }
        self.hosts[h].alive = false;
        let d = self.hosts[h].domain;
        self.domains[d].active_hosts -= 1;
        // Kill the manager.
        if self.hosts[h].mgr_alive {
            self.hosts[h].mgr_alive = false;
            self.domains[d].active_mgrs -= 1;
            self.active_mgrs_total -= 1;
            if self.hosts[h].mgr_corrupt {
                self.domains[d].corrupt_mgrs -= 1;
                self.corrupt_mgrs_total -= 1;
            }
        }
        // Kill every replica on the host.
        let reps: Vec<usize> = std::mem::take(&mut self.hosts[h].replicas);
        for r in reps {
            self.kill_replica(r);
        }
    }

    fn kill_replica(&mut self, r: usize) {
        if !self.replicas[r].alive {
            return;
        }
        self.replicas[r].alive = false;
        let app = self.replicas[r].app;
        self.apps[app].running -= 1;
        if self.replicas[r].corrupt && !self.replicas[r].convicted {
            self.apps[app].corrupt_undetected -= 1;
        }
        self.apps[app].need_recovery += 1;
        self.update_improper(app);
    }

    /// Managers start replacement replicas while quorum and eligibility
    /// allow (instantaneous, like the paper's high-rate activities).
    fn try_recoveries(&mut self) {
        if !self.system_mgr_quorum_ok() {
            return;
        }
        for app in 0..self.apps.len() {
            while self.apps[app].need_recovery > 0 {
                if !self.start_replica_somewhere(app) {
                    break;
                }
                self.apps[app].need_recovery -= 1;
            }
        }
    }

    /// Starts one replica of `app` on a uniformly random eligible
    /// domain/host. Returns false if nowhere is eligible.
    fn start_replica_somewhere(&mut self, app: usize) -> bool {
        let eligible_domains: Vec<usize> = (0..self.p.num_domains)
            .filter(|&d| self.domain_eligible(d, app))
            .collect();
        let Some(&d) = self.rng.choose(&eligible_domains) else {
            return false;
        };
        let lo = d * self.p.hosts_per_domain;
        let eligible_hosts: Vec<usize> = (lo..lo + self.p.hosts_per_domain)
            .filter(|&h| self.host_eligible(h, app))
            .collect();
        let Some(&h) = self.rng.choose(&eligible_hosts) else {
            return false;
        };
        let r = self.replicas.len();
        self.replicas.push(Replica {
            app,
            host: h,
            alive: true,
            corrupt: false,
            convicted: false,
            attack_epoch: 0,
        });
        self.hosts[h].replicas.push(r);
        self.apps[app].running += 1;
        self.update_improper(app);
        self.schedule_replica_attack(r);
        true
    }

    fn domain_eligible(&self, d: usize, app: usize) -> bool {
        if self.domains[d].excluded {
            return false;
        }
        let lo = d * self.p.hosts_per_domain;
        let hi = lo + self.p.hosts_per_domain;
        match self.p.placement {
            PlacementConstraint::OnePerDomain => {
                // No live replica of this app anywhere in the domain, and
                // at least one live host.
                self.domains[d].active_hosts > 0 && !(lo..hi).any(|h| self.host_has_app(h, app))
            }
            PlacementConstraint::OnePerHost => (lo..hi).any(|h| self.host_eligible(h, app)),
        }
    }

    fn host_eligible(&self, h: usize, app: usize) -> bool {
        self.hosts[h].alive
            && match self.p.placement {
                PlacementConstraint::OnePerDomain => true, // domain filter did the work
                PlacementConstraint::OnePerHost => !self.host_has_app(h, app),
            }
    }

    fn host_has_app(&self, h: usize, app: usize) -> bool {
        self.hosts[h]
            .replicas
            .iter()
            .any(|&r| self.replicas[r].alive && self.replicas[r].app == app)
    }

    // ------------------------------------------------------------------
    // Conditions and measures
    // ------------------------------------------------------------------

    fn domain_mgr_group_corrupt(&self, d: usize) -> bool {
        !Params::quorum_ok(self.domains[d].active_mgrs, self.domains[d].corrupt_mgrs)
    }

    fn system_mgr_quorum_ok(&self) -> bool {
        Params::quorum_ok(self.active_mgrs_total, self.corrupt_mgrs_total)
    }

    fn host_level_response_possible(&self, h: usize) -> bool {
        let host = &self.hosts[h];
        host.mgr_alive && !host.mgr_corrupt && !self.domain_mgr_group_corrupt(host.domain)
    }

    /// A host counts as compromised for the Figure 3(c)/4(c) measure if
    /// any entity on it (OS, manager, or a replica) is corrupt.
    fn host_compromised(&self, h: usize) -> bool {
        let host = &self.hosts[h];
        host.corrupt
            || host.mgr_corrupt
            || host
                .replicas
                .iter()
                .any(|&r| self.replicas[r].alive && self.replicas[r].corrupt)
    }

    fn update_improper(&mut self, app: usize) {
        let a = &self.apps[app];
        let improper =
            a.running == 0 || (a.corrupt_undetected > 0 && 3 * a.corrupt_undetected >= a.running);
        let byz = a.corrupt_undetected > 0 && 3 * a.corrupt_undetected >= a.running;
        let now = self.now;
        if improper && self.first_improper_time.is_none() && now > 0.0 {
            self.first_improper_time = Some(now);
        }
        if byz && self.first_byzantine_time.is_none() {
            self.first_byzantine_time = Some(now);
        }
        let a = &mut self.apps[app];
        a.improper.set(now, if improper { 1.0 } else { 0.0 });
        if byz {
            a.byzantine = true;
        }
    }

    fn snapshot(&self, time: f64) -> Snapshot {
        let alive_hosts = self.hosts.iter().filter(|h| h.alive).count();
        let alive_replicas = self.replicas.iter().filter(|r| r.alive).count();
        Snapshot {
            time,
            frac_domains_excluded: self.excluded_domains as f64 / self.p.num_domains as f64,
            mean_replicas_running: self.apps.iter().map(|a| a.running as f64).sum::<f64>()
                / self.apps.len() as f64,
            load_per_host: if alive_hosts == 0 {
                0.0
            } else {
                alive_replicas as f64 / alive_hosts as f64
            },
        }
    }

    /// Debug invariant check (used by tests).
    #[cfg(test)]
    fn check_invariants(&self) {
        for (i, app) in self.apps.iter().enumerate() {
            let running = self
                .replicas
                .iter()
                .filter(|r| r.alive && r.app == i)
                .count();
            assert_eq!(app.running, running, "app {i} running count");
            let corrupt = self
                .replicas
                .iter()
                .filter(|r| r.alive && r.app == i && r.corrupt && !r.convicted)
                .count();
            assert_eq!(app.corrupt_undetected, corrupt, "app {i} corrupt count");
        }
        let mgrs = self.hosts.iter().filter(|h| h.mgr_alive).count();
        assert_eq!(self.active_mgrs_total, mgrs);
        let corrupt_mgrs = self
            .hosts
            .iter()
            .filter(|h| h.mgr_alive && h.mgr_corrupt)
            .count();
        assert_eq!(self.corrupt_mgrs_total, corrupt_mgrs);
        let excl = self.domains.iter().filter(|d| d.excluded).count();
        assert_eq!(self.excluded_domains, excl);
        for (d, dom) in self.domains.iter().enumerate() {
            let lo = d * self.p.hosts_per_domain;
            let hi = lo + self.p.hosts_per_domain;
            let active = (lo..hi).filter(|&h| self.hosts[h].alive).count();
            assert_eq!(dom.active_hosts, active, "domain {d} active hosts");
            if dom.excluded {
                assert_eq!(active, 0, "excluded domain {d} has live hosts");
            }
            // Placement constraint.
            if self.p.placement == PlacementConstraint::OnePerDomain {
                for app in 0..self.apps.len() {
                    let in_domain = (lo..hi)
                        .flat_map(|h| self.hosts[h].replicas.iter())
                        .filter(|&&r| self.replicas[r].alive && self.replicas[r].app == app)
                        .count();
                    assert!(
                        in_domain <= 1,
                        "app {app} has {in_domain} replicas in domain {d}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::MeasureSet;

    fn small_params() -> Params {
        Params::default().with_domains(4, 2).with_applications(2, 3)
    }

    #[test]
    fn run_is_reproducible() {
        let des = ItuaDes::new(small_params()).unwrap();
        let a = des.run(7, 5.0, &[5.0]);
        let b = des.run(7, 5.0, &[5.0]);
        assert_eq!(a, b);
        let c = des.run(8, 5.0, &[5.0]);
        assert_ne!(a, c);
    }

    #[test]
    fn reused_scratch_matches_fresh_runs() {
        let des = ItuaDes::new(small_params()).unwrap();
        let mut scratch = des.scratch();
        for seed in 0..40 {
            let reused = des.run_into(seed, 5.0, &[1.0, 5.0], &mut scratch);
            let fresh = des.run(seed, 5.0, &[1.0, 5.0]);
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn split_branch_without_splits_matches_plain_run() {
        // Driving a branch through run_tree with an empty spec must be
        // bit-identical to ItuaDes::run — the splitting path reuses the
        // exact step loop and the root branch never reseeds.
        let des = ItuaDes::new(small_params()).unwrap();
        let level = crate::split::CorruptDomainCount;
        for seed in 0..20u64 {
            let plain = des.run(seed, 5.0, &[1.0, 5.0]);
            let branch = des.split_branch(seed, 5.0, &[1.0, 5.0], &level);
            let mut leaves = Vec::new();
            let stats =
                itua_rare::run_tree(branch, seed, &itua_rare::SplitSpec::none(), &mut leaves)
                    .unwrap();
            assert_eq!(stats.branches, 1);
            assert_eq!(leaves.len(), 1);
            assert_eq!(leaves[0].0, 1.0);
            assert_eq!(leaves[0].1, plain, "seed {seed}");
        }
    }

    #[test]
    fn split_branch_with_splits_produces_weighted_leaves() {
        let des = ItuaDes::new(small_params()).unwrap();
        let level = crate::split::CorruptDomainCount;
        let spec: itua_rare::SplitSpec = "1x4".parse().unwrap();
        let mut split_trees = 0u32;
        for seed in 0..40u64 {
            let branch = des.split_branch(seed, 5.0, &[5.0], &level);
            let mut leaves = Vec::new();
            let stats = itua_rare::run_tree(branch, seed, &spec, &mut leaves).unwrap();
            if stats.branches > 1 {
                split_trees += 1;
            }
            for &(w, ref out) in &leaves {
                assert!(w > 0.0 && w <= 1.0);
                assert!(out.unavailability(5.0) >= 0.0);
            }
            // Every surviving leaf reached the horizon; killed branches
            // left no output.
            assert_eq!(leaves.len() as u32, stats.leaves);
        }
        assert!(split_trees > 0, "no tree ever crossed level 1");
    }

    #[test]
    #[should_panic(expected = "topology")]
    fn scratch_from_other_topology_is_rejected() {
        let a = ItuaDes::new(small_params()).unwrap();
        let b = ItuaDes::new(Params::default().with_domains(3, 3).with_applications(2, 3)).unwrap();
        let mut scratch = b.scratch();
        a.run_into(0, 1.0, &[], &mut scratch);
    }

    #[test]
    fn initial_placement_respects_domain_constraint() {
        // 3 domains, 7 requested replicas → only 3 start.
        let p = Params::default().with_domains(3, 4).with_applications(2, 7);
        let des = ItuaDes::new(p).unwrap();
        let out = des.run(1, 0.001, &[0.001]);
        assert!((out.snapshots[0].mean_replicas_running - 3.0).abs() < 1e-9);
    }

    #[test]
    fn placement_fills_all_domains_when_possible() {
        let p = Params::default()
            .with_domains(10, 1)
            .with_applications(1, 7);
        let des = ItuaDes::new(p).unwrap();
        let out = des.run(3, 0.001, &[0.001]);
        assert!((out.snapshots[0].mean_replicas_running - 7.0).abs() < 1e-9);
    }

    #[test]
    fn invariants_hold_through_events() {
        let p = small_params();
        for seed in 0..30 {
            let mut st = State::new(p.clone(), Rng::seed_from_u64(seed));
            st.initial_placement();
            st.check_invariants();
            let mut events = 0;
            while let Some((t, ev)) = st.queue.pop() {
                if t > 20.0 || events > 5000 {
                    break;
                }
                st.now = t;
                st.handle(ev);
                st.check_invariants();
                events += 1;
            }
        }
    }

    #[test]
    fn invariants_hold_host_exclusion_scheme() {
        let p = small_params().with_scheme(ManagementScheme::HostExclusion);
        for seed in 0..30 {
            let mut st = State::new(p.clone(), Rng::seed_from_u64(seed));
            st.initial_placement();
            let mut events = 0;
            while let Some((t, ev)) = st.queue.pop() {
                if t > 20.0 || events > 5000 {
                    break;
                }
                st.now = t;
                st.handle(ev);
                st.check_invariants();
                events += 1;
            }
            // Domains are never excluded wholesale under host exclusion.
            assert_eq!(st.exclusion_fractions.len(), 0);
        }
    }

    #[test]
    fn unavailability_between_zero_and_one() {
        let des = ItuaDes::new(small_params()).unwrap();
        for seed in 0..50 {
            let out = des.run(seed, 5.0, &[]);
            let u = out.unavailability(5.0);
            assert!((0.0..=1.0).contains(&u), "seed {seed}: {u}");
            let r = out.unreliability();
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn no_attacks_means_no_unavailability() {
        // With a (nearly) zero attack rate and no false alarms, service
        // stays proper and nothing is excluded.
        let mut p = small_params();
        p.base_attack_rate = 1e-12;
        p.false_alarm_rate = 0.0;
        let des = ItuaDes::new(p).unwrap();
        let out = des.run(5, 10.0, &[10.0]);
        assert_eq!(out.unavailability(10.0), 0.0);
        assert_eq!(out.unreliability(), 0.0);
        assert_eq!(out.snapshots[0].frac_domains_excluded, 0.0);
        assert!(out.exclusion_corrupt_fractions.is_empty());
    }

    #[test]
    fn single_domain_single_replica_fails_eventually() {
        // 1 domain: first exclusion (or corruption) takes everything down,
        // and nothing can be recovered (no eligible domains remain).
        let p = Params::default().with_domains(1, 4).with_applications(1, 7);
        let des = ItuaDes::new(p).unwrap();
        let mut saw_failure = false;
        for seed in 0..20 {
            let out = des.run(seed, 50.0, &[50.0]);
            if out.snapshots[0].frac_domains_excluded == 1.0 {
                saw_failure = true;
                assert!(out.unavailability(50.0) > 0.0);
            }
        }
        assert!(saw_failure, "no run excluded the single domain in 50h");
    }

    #[test]
    fn more_hosts_per_domain_waste_more_resources() {
        // Fig 3(c) direction: with many hosts per domain, the fraction of
        // corrupt hosts in an excluded domain is much smaller than with one
        // host per domain.
        let mut ms1 = MeasureSet::new(0.95);
        let mut ms6 = MeasureSet::new(0.95);
        let p1 = Params::default()
            .with_domains(12, 1)
            .with_applications(4, 7);
        let p6 = Params::default().with_domains(2, 6).with_applications(4, 7);
        let d1 = ItuaDes::new(p1).unwrap();
        let d6 = ItuaDes::new(p6).unwrap();
        for seed in 0..300 {
            ms1.record(&d1.run(seed, 5.0, &[]));
            ms6.record(&d6.run(seed, 5.0, &[]));
        }
        let f1 = ms1
            .mean(crate::measures::names::FRAC_CORRUPT_AT_EXCLUSION)
            .unwrap();
        let f6 = ms6
            .mean(crate::measures::names::FRAC_CORRUPT_AT_EXCLUSION)
            .unwrap();
        assert!(
            f1 > f6 + 0.2,
            "expected fewer corrupt hosts per exclusion with bigger domains: {f1} vs {f6}"
        );
    }

    #[test]
    fn host_exclusion_saves_resources_short_term() {
        // Fig 5(a) direction at spread 0: host exclusion keeps more
        // replicas running in the short run.
        let base = Params::default()
            .with_domains(10, 3)
            .with_applications(4, 7)
            .with_host_corruption_multiplier(5.0)
            .with_spread_rate(0.0);
        let dom = ItuaDes::new(base.clone()).unwrap();
        let host = ItuaDes::new(base.with_scheme(ManagementScheme::HostExclusion)).unwrap();
        let mut dom_ms = MeasureSet::new(0.95);
        let mut host_ms = MeasureSet::new(0.95);
        for seed in 0..200 {
            dom_ms.record(&dom.run(seed, 5.0, &[5.0]));
            host_ms.record(&host.run(seed, 5.0, &[5.0]));
        }
        let dom_u = dom_ms.mean(crate::measures::names::UNAVAILABILITY).unwrap();
        let host_u = host_ms
            .mean(crate::measures::names::UNAVAILABILITY)
            .unwrap();
        assert!(
            host_u <= dom_u + 1e-9,
            "host exclusion should not be worse at zero spread: {host_u} vs {dom_u}"
        );
    }

    #[test]
    fn snapshots_are_monotone_in_exclusions() {
        let des = ItuaDes::new(small_params()).unwrap();
        for seed in 0..20 {
            let out = des.run(seed, 10.0, &[2.0, 5.0, 10.0]);
            let fracs: Vec<f64> = out
                .snapshots
                .iter()
                .map(|s| s.frac_domains_excluded)
                .collect();
            assert!(
                fracs.windows(2).all(|w| w[0] <= w[1]),
                "seed {seed}: {fracs:?}"
            );
        }
    }

    #[test]
    fn exclusion_fraction_values_are_valid() {
        let des = ItuaDes::new(small_params()).unwrap();
        for seed in 0..50 {
            let out = des.run(seed, 10.0, &[]);
            for &f in &out.exclusion_corrupt_fractions {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}

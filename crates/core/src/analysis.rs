//! Static analysis of the composed ITUA SAN.
//!
//! The generic analyzer (`itua-analyzer`) observes incidence structure by
//! probing; this module supplies the *model-specific* knowledge: the
//! conservation laws the ITUA encoding must satisfy by construction, the
//! one documented measure gap, and two entry points used to gate
//! simulation:
//!
//! * [`quick_check`] — O(places + activities), no probing. Verifies every
//!   expected invariant at the initial marking and rate sanity at the
//!   initial marking. This is the default gate in
//!   `run_measures` (cheap enough to run before every sweep point).
//! * [`full_report`] — the full probe-based analysis behind `--check`:
//!   invariants, structural bounds, dead activities, rate sanity at
//!   reachable markings, plus the expected invariants checked against
//!   every observed firing.
//!
//! # Expected invariants (hand-derived)
//!
//! With `R = reps_per_app`, `H = hosts_per_domain`, per application `a`,
//! domain `d`, host `h`, replica slot `r`:
//!
//! 1. **Replica conservation** (per `a`): `to_start_a + started_clean_a +
//!    started_corrupt_a + need_recovery_a + Σ_r has_started_{a,r} = R`.
//!    Every replica is waiting, in a start handshake, started, or waiting
//!    for recovery; kill/conviction pools carry *signals*, not replicas.
//! 2. **Running count** (per `a`): `replicas_running_a = Σ_r
//!    has_started_{a,r}`.
//! 3. **Corruption count** (per `a`): `rep_corr_undetected_a = Σ_r
//!    replica_attacked_{a,r}`.
//! 4. **Active hosts** (per `d`): `dom_active_hosts_d = Σ_h
//!    host_active_{d,h}`.
//! 5. **Manager counters**: `dom_mgrs_active_d = Σ_h mgr_active_{d,h}`,
//!    `dom_mgrs_corrupt_d = Σ_h mgr_corrupt_local_{d,h}`, and the
//!    system-wide sums `mgrs_active_sys`, `mgrs_corrupt_sys`.
//! 6. **Placement** (per `d`, `a`): `dom_has_app_{d,a} = Σ_h
//!    has_app_{d,h,a}`.
//!
//! Note `dom_corrupt_hosts` is *not* invariant against `Σ host_corrupt`:
//! `shut_host` decrements the counter without clearing the (now inert)
//! `host_corrupt` flag, so the relation only holds over active hosts —
//! a product of places, which a linear invariant cannot express.
//!
//! # The documented gap
//!
//! `dom_excl_corrupt` counts hosts that were compromised (host OS or
//! manager) when a domain exclusion shut them down. The anonymous replica
//! matching means the SAN cannot attribute an undetected-corrupt replica
//! to the specific host it runs on, so a clean host carrying a corrupt
//! replica is not counted — a slight undercount relative to the DES
//! measure, which tracks replica placement. [`analysis_spec`] encodes
//! this as the firing law `frac-corrupt-replica-blind` (allowlisted, so
//! it surfaces as a soft finding with a concrete counterexample firing).

use crate::san_model::ItuaSan;
use itua_analyzer::{
    analyze, AllowEntry, AnalysisConfig, AnalysisReport, AnalysisSpec, ExpectedInvariant,
    FiringLaw, KnownIssue,
};
use itua_san::marking::PlaceId;
use itua_san::model::San;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Looks up a place that the ITUA builder is known to create.
fn pid(san: &San, name: &str) -> PlaceId {
    san.place_id(name)
        .unwrap_or_else(|| panic!("ITUA model is missing place '{name}'"))
}

/// Context the replica-blindness law needs about one `shut_host` copy.
struct ShutHostCtx {
    dom_excluding: PlaceId,
    host_corrupt: PlaceId,
    mgr_corrupt: PlaceId,
    dom_excl_corrupt: PlaceId,
    /// Per application: (this host's `has_app_a`, the app's global
    /// `rep_corr_undetected`).
    apps: Vec<(PlaceId, PlaceId)>,
}

/// The expected invariants, firing laws, and documented issues of the
/// composed ITUA SAN built from `model.params`.
pub fn analysis_spec(model: &ItuaSan) -> AnalysisSpec {
    let san = &model.san;
    let p = &model.params;
    let mut expected = Vec::new();

    let app_prefix = |a: usize| format!("itua/apps[{a}]/app");
    let dom_prefix = |d: usize| format!("itua/domains[{d}]/hosts");
    let host_prefix = |d: usize, h: usize| format!("itua/domains[{d}]/hosts[{h}]/host");

    for a in 0..p.num_apps {
        let has_started: Vec<PlaceId> = (0..p.reps_per_app)
            .map(|r| {
                pid(
                    san,
                    &format!("{}/replicas[{r}]/replica/has_started", app_prefix(a)),
                )
            })
            .collect();

        let mut terms = vec![
            (pid(san, &format!("itua/to_start_{a}")), 1),
            (pid(san, &format!("itua/started_clean_{a}")), 1),
            (pid(san, &format!("itua/started_corrupt_{a}")), 1),
            (pid(san, &format!("{}/need_recovery", app_prefix(a))), 1),
        ];
        terms.extend(has_started.iter().map(|&id| (id, 1)));
        expected.push(ExpectedInvariant {
            id: format!("app-{a}-replica-conservation"),
            description: format!("app {a}: to_start + started + need_recovery + running slots"),
            terms,
            target: p.reps_per_app as i64,
        });

        let mut terms = vec![(pid(san, &format!("{}/replicas_running", app_prefix(a))), 1)];
        terms.extend(has_started.iter().map(|&id| (id, -1)));
        expected.push(ExpectedInvariant {
            id: format!("app-{a}-running-count"),
            description: format!("app {a}: replicas_running vs started slots"),
            terms,
            target: 0,
        });

        let mut terms = vec![(
            pid(san, &format!("{}/rep_corr_undetected", app_prefix(a))),
            1,
        )];
        terms.extend((0..p.reps_per_app).map(|r| {
            (
                pid(
                    san,
                    &format!("{}/replicas[{r}]/replica/replica_attacked", app_prefix(a)),
                ),
                -1,
            )
        }));
        expected.push(ExpectedInvariant {
            id: format!("app-{a}-corruption-count"),
            description: format!("app {a}: rep_corr_undetected vs attacked slots"),
            terms,
            target: 0,
        });
    }

    // Per-domain and system-wide counter consistency.
    let mut mgr_sys_terms = vec![(pid(san, "itua/mgrs_active_sys"), -1)];
    let mut mgr_corr_sys_terms = vec![(pid(san, "itua/mgrs_corrupt_sys"), -1)];
    for d in 0..p.num_domains {
        let mut host_terms = vec![(pid(san, &format!("{}/dom_active_hosts", dom_prefix(d))), -1)];
        let mut dom_mgr_terms = vec![(pid(san, &format!("{}/dom_mgrs_active", dom_prefix(d))), -1)];
        let mut dom_mgr_corr_terms =
            vec![(pid(san, &format!("{}/dom_mgrs_corrupt", dom_prefix(d))), -1)];
        for h in 0..p.hosts_per_domain {
            let active = pid(san, &format!("{}/host_active", host_prefix(d, h)));
            let mgr = pid(san, &format!("{}/mgr_active", host_prefix(d, h)));
            let mgr_corr = pid(san, &format!("{}/mgr_corrupt_local", host_prefix(d, h)));
            host_terms.push((active, 1));
            dom_mgr_terms.push((mgr, 1));
            dom_mgr_corr_terms.push((mgr_corr, 1));
            mgr_sys_terms.push((mgr, 1));
            mgr_corr_sys_terms.push((mgr_corr, 1));
        }
        expected.push(ExpectedInvariant {
            id: format!("domain-{d}-active-hosts"),
            description: format!("domain {d}: dom_active_hosts vs host_active flags"),
            terms: host_terms,
            target: 0,
        });
        expected.push(ExpectedInvariant {
            id: format!("domain-{d}-managers-active"),
            description: format!("domain {d}: dom_mgrs_active vs mgr_active flags"),
            terms: dom_mgr_terms,
            target: 0,
        });
        expected.push(ExpectedInvariant {
            id: format!("domain-{d}-managers-corrupt"),
            description: format!("domain {d}: dom_mgrs_corrupt vs mgr_corrupt_local flags"),
            terms: dom_mgr_corr_terms,
            target: 0,
        });
        for a in 0..p.num_apps {
            let mut terms = vec![(pid(san, &format!("{}/dom_has_app_{a}", dom_prefix(d))), -1)];
            for h in 0..p.hosts_per_domain {
                terms.push((pid(san, &format!("{}/has_app_{a}", host_prefix(d, h))), 1));
            }
            expected.push(ExpectedInvariant {
                id: format!("domain-{d}-app-{a}-placement"),
                description: format!("domain {d}: dom_has_app_{a} vs host has_app flags"),
                terms,
                target: 0,
            });
        }
    }
    expected.push(ExpectedInvariant {
        id: "managers-active-sys".to_owned(),
        description: "mgrs_active_sys vs all mgr_active flags".to_owned(),
        terms: mgr_sys_terms,
        target: 0,
    });
    expected.push(ExpectedInvariant {
        id: "managers-corrupt-sys".to_owned(),
        description: "mgrs_corrupt_sys vs all mgr_corrupt_local flags".to_owned(),
        terms: mgr_corr_sys_terms,
        target: 0,
    });

    // The replica-blindness law: a clean host shut down by a domain
    // exclusion while carrying an application with undetected-corrupt
    // replicas is not counted in dom_excl_corrupt, although the corrupt
    // replica may be the one it hosts.
    let mut shut_hosts: BTreeMap<usize, ShutHostCtx> = BTreeMap::new();
    for (id, act) in san.activities() {
        let Some(prefix) = act.name().strip_suffix("/shut_host") else {
            continue;
        };
        let Some(dom) = prefix.split_inclusive("/hosts").next() else {
            continue;
        };
        shut_hosts.insert(
            id.index(),
            ShutHostCtx {
                dom_excluding: pid(san, &format!("{dom}/dom_excluding")),
                host_corrupt: pid(san, &format!("{prefix}/host_corrupt")),
                mgr_corrupt: pid(san, &format!("{prefix}/mgr_corrupt_local")),
                dom_excl_corrupt: pid(san, &format!("{dom}/dom_excl_corrupt")),
                apps: (0..p.num_apps)
                    .map(|a| {
                        (
                            pid(san, &format!("{prefix}/has_app_{a}")),
                            pid(san, &format!("{}/rep_corr_undetected", app_prefix(a))),
                        )
                    })
                    .collect(),
            },
        );
    }
    let shut_hosts = Arc::new(shut_hosts);
    let law = FiringLaw {
        id: "frac-corrupt-replica-blind".to_owned(),
        description: "dom_excl_corrupt counts a host only for its own OS/manager state".to_owned(),
        check: Arc::new(move |_san, act, _case, pre, delta| {
            let ctx = shut_hosts.get(&act.index())?;
            if pre.get(ctx.dom_excluding) != 1
                || pre.get(ctx.host_corrupt) != 0
                || pre.get(ctx.mgr_corrupt) != 0
            {
                return None;
            }
            let exposed = ctx
                .apps
                .iter()
                .find(|&&(has_app, corr)| pre.get(has_app) == 1 && pre.get(corr) > 0)?;
            (delta[ctx.dom_excl_corrupt.index()] == 0).then(|| {
                format!(
                    "clean host excluded while hosting an application with {} \
                     undetected-corrupt replica(s); its own replica may be the corrupt \
                     one, but the anonymous matching cannot attribute it",
                    pre.get(exposed.1)
                )
            })
        }),
    };

    AnalysisSpec {
        expected,
        laws: vec![law],
        allow: vec![AllowEntry {
            id: "frac-corrupt-replica-blind".to_owned(),
            reason: "documented undercount: anonymous replica placement cannot attribute \
                     replica corruption to a host (see san_model.rs dom_excl_corrupt)"
                .to_owned(),
        }],
        notes: vec![KnownIssue {
            id: "frac-corrupt-undercount".to_owned(),
            subject: "dom_excl_corrupt".to_owned(),
            detail: "measure-only accumulator undercounts relative to the DES \
                     frac_corrupt measure: replica-only corruption on a clean host is \
                     invisible to the SAN's anonymous replica matching"
                .to_owned(),
        }],
    }
}

/// Runs the full probe-based analysis of `model` under the ITUA spec.
pub fn full_report(model: &ItuaSan, cfg: &AnalysisConfig) -> AnalysisReport {
    analyze(&model.san, &analysis_spec(model), cfg)
}

/// A cheap structural gate: every expected invariant must hold at the
/// initial marking and every timed activity's rate must be finite and
/// nonnegative there. O(places + activities); no state exploration.
///
/// # Errors
///
/// Returns a newline-separated list of violations.
pub fn quick_check(model: &ItuaSan) -> Result<(), String> {
    let san = &model.san;
    let spec = analysis_spec(model);
    let initial = san.initial_marking();
    let mut problems = Vec::new();
    for inv in &spec.expected {
        let got: i64 = inv
            .terms
            .iter()
            .map(|&(p, c)| c * i64::from(initial.get(p)))
            .sum();
        if got != inv.target {
            problems.push(format!(
                "invariant '{}' is {got} at the initial marking, expected {}",
                inv.description, inv.target
            ));
        }
    }
    for (_, act) in san.activities() {
        if let Some(rate) = act.rate(&initial) {
            if !rate.is_finite() || rate < 0.0 {
                problems.push(format!(
                    "activity '{}' has rate {rate} at the initial marking",
                    act.name()
                ));
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::san_model::build;

    fn micro() -> ItuaSan {
        let params = Params::default().with_domains(1, 2).with_applications(1, 2);
        build(&params).unwrap()
    }

    #[test]
    fn spec_invariant_count_matches_structure() {
        let model = micro();
        let spec = analysis_spec(&model);
        // 3 per app + 3 per domain + 1 per (domain, app) + 2 system-wide.
        assert_eq!(spec.expected.len(), 3 + 3 + 1 + 2);
        assert_eq!(spec.laws.len(), 1);
        assert_eq!(spec.allow.len(), 1);
    }

    #[test]
    fn quick_check_accepts_the_micro_model() {
        assert_eq!(quick_check(&micro()), Ok(()));
    }

    #[test]
    fn quick_check_accepts_paper_scale_models() {
        for scheme in [
            crate::params::ManagementScheme::DomainExclusion,
            crate::params::ManagementScheme::HostExclusion,
        ] {
            let params = Params::default()
                .with_domains(4, 3)
                .with_applications(2, 4)
                .with_scheme(scheme);
            let model = build(&params).unwrap();
            assert_eq!(quick_check(&model), Ok(()), "{scheme:?}");
        }
    }

    #[test]
    fn expected_invariants_reference_distinct_places() {
        let model = micro();
        for inv in analysis_spec(&model).expected {
            let mut ids: Vec<_> = inv.terms.iter().map(|&(p, _)| p).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), inv.terms.len(), "duplicate term in '{}'", inv.id);
        }
    }
}

//! Static analysis of the composed ITUA SAN.
//!
//! The generic analyzer (`itua-analyzer`) observes incidence structure by
//! probing; this module supplies the *model-specific* knowledge: the
//! conservation laws the ITUA encoding must satisfy by construction, the
//! one documented measure gap, and two entry points used to gate
//! simulation:
//!
//! * [`quick_check`] — O(places + activities), no probing. Verifies every
//!   expected invariant at the initial marking and rate sanity at the
//!   initial marking. This is the default gate in
//!   `run_measures` (cheap enough to run before every sweep point).
//! * [`full_report`] — the full probe-based analysis behind `--check`:
//!   invariants, structural bounds, dead activities, rate sanity at
//!   reachable markings, plus the expected invariants checked against
//!   every observed firing.
//!
//! # Expected invariants (hand-derived)
//!
//! With `R = reps_per_app`, `H = hosts_per_domain`, per application `a`,
//! domain `d`, host `h`, replica slot `r`:
//!
//! 1. **Replica conservation** (per `a`): `to_start_a + started_clean_a +
//!    started_corrupt_a + need_recovery_a + Σ_r has_started_{a,r} = R`.
//!    Every replica is waiting, in a start handshake, started, or waiting
//!    for recovery; kill/conviction pools carry *signals*, not replicas.
//! 2. **Running count** (per `a`): `replicas_running_a = Σ_r
//!    has_started_{a,r}`.
//! 3. **Corruption count** (per `a`): `rep_corr_undetected_a = Σ_r
//!    replica_attacked_{a,r}`.
//! 4. **Active hosts** (per `d`): `dom_active_hosts_d = Σ_h
//!    host_active_{d,h}`.
//! 5. **Manager counters**: `dom_mgrs_active_d = Σ_h mgr_active_{d,h}`,
//!    `dom_mgrs_corrupt_d = Σ_h mgr_corrupt_local_{d,h}`, and the
//!    system-wide sums `mgrs_active_sys`, `mgrs_corrupt_sys`.
//! 6. **Placement** (per `d`, `a`): `dom_has_app_{d,a} = Σ_h
//!    has_app_{d,h,a}`.
//!
//! Note `dom_corrupt_hosts` is *not* invariant against `Σ host_corrupt`:
//! `shut_host` decrements the counter without clearing the (now inert)
//! `host_corrupt` flag, so the relation only holds over active hosts —
//! a product of places, which a linear invariant cannot express.
//!
//! # The documented gap
//!
//! `dom_excl_corrupt` counts hosts that were compromised (host OS or
//! manager) when a domain exclusion shut them down. The anonymous replica
//! matching means the SAN cannot attribute an undetected-corrupt replica
//! to the specific host it runs on, so a clean host carrying a corrupt
//! replica is not counted — a slight undercount relative to the DES
//! measure, which tracks replica placement. [`analysis_spec`] encodes
//! this as the firing law `frac-corrupt-replica-blind` (allowlisted, so
//! it surfaces as a soft finding with a concrete counterexample firing).

use crate::san_model::ItuaSan;
use itua_analyzer::reach::{
    self, ReachConfig, ReachError, SymmetryGroup, SymmetrySpec, SymmetryUnit,
};
use itua_analyzer::{
    analyze, AllowEntry, AnalysisConfig, AnalysisReport, AnalysisSpec, ExpectedInvariant, Finding,
    FiringLaw, KnownIssue, Severity,
};
use itua_san::marking::PlaceId;
use itua_san::model::San;
use itua_san::statespace::StateSpace;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Looks up a place that the ITUA builder is known to create.
fn pid(san: &San, name: &str) -> PlaceId {
    san.place_id(name)
        .unwrap_or_else(|| panic!("ITUA model is missing place '{name}'"))
}

/// Context the replica-blindness law needs about one `shut_host` copy.
struct ShutHostCtx {
    dom_excluding: PlaceId,
    host_corrupt: PlaceId,
    mgr_corrupt: PlaceId,
    dom_excl_corrupt: PlaceId,
    /// Per application: (this host's `has_app_a`, the app's global
    /// `rep_corr_undetected`).
    apps: Vec<(PlaceId, PlaceId)>,
}

/// The expected invariants, firing laws, and documented issues of the
/// composed ITUA SAN built from `model.params`.
pub fn analysis_spec(model: &ItuaSan) -> AnalysisSpec {
    let san = &model.san;
    let p = &model.params;
    let mut expected = Vec::new();

    let app_prefix = |a: usize| format!("itua/apps[{a}]/app");
    let dom_prefix = |d: usize| format!("itua/domains[{d}]/hosts");
    let host_prefix = |d: usize, h: usize| format!("itua/domains[{d}]/hosts[{h}]/host");

    for a in 0..p.num_apps {
        let has_started: Vec<PlaceId> = (0..p.reps_per_app)
            .map(|r| {
                pid(
                    san,
                    &format!("{}/replicas[{r}]/replica/has_started", app_prefix(a)),
                )
            })
            .collect();

        let mut terms = vec![
            (pid(san, &format!("itua/to_start_{a}")), 1),
            (pid(san, &format!("itua/started_clean_{a}")), 1),
            (pid(san, &format!("itua/started_corrupt_{a}")), 1),
            (pid(san, &format!("{}/need_recovery", app_prefix(a))), 1),
        ];
        terms.extend(has_started.iter().map(|&id| (id, 1)));
        expected.push(ExpectedInvariant {
            id: format!("app-{a}-replica-conservation"),
            description: format!("app {a}: to_start + started + need_recovery + running slots"),
            terms,
            target: p.reps_per_app as i64,
        });

        let mut terms = vec![(pid(san, &format!("{}/replicas_running", app_prefix(a))), 1)];
        terms.extend(has_started.iter().map(|&id| (id, -1)));
        expected.push(ExpectedInvariant {
            id: format!("app-{a}-running-count"),
            description: format!("app {a}: replicas_running vs started slots"),
            terms,
            target: 0,
        });

        let mut terms = vec![(
            pid(san, &format!("{}/rep_corr_undetected", app_prefix(a))),
            1,
        )];
        terms.extend((0..p.reps_per_app).map(|r| {
            (
                pid(
                    san,
                    &format!("{}/replicas[{r}]/replica/replica_attacked", app_prefix(a)),
                ),
                -1,
            )
        }));
        expected.push(ExpectedInvariant {
            id: format!("app-{a}-corruption-count"),
            description: format!("app {a}: rep_corr_undetected vs attacked slots"),
            terms,
            target: 0,
        });
    }

    // Per-domain and system-wide counter consistency.
    let mut mgr_sys_terms = vec![(pid(san, "itua/mgrs_active_sys"), -1)];
    let mut mgr_corr_sys_terms = vec![(pid(san, "itua/mgrs_corrupt_sys"), -1)];
    for d in 0..p.num_domains {
        let mut host_terms = vec![(pid(san, &format!("{}/dom_active_hosts", dom_prefix(d))), -1)];
        let mut dom_mgr_terms = vec![(pid(san, &format!("{}/dom_mgrs_active", dom_prefix(d))), -1)];
        let mut dom_mgr_corr_terms =
            vec![(pid(san, &format!("{}/dom_mgrs_corrupt", dom_prefix(d))), -1)];
        for h in 0..p.hosts_per_domain {
            let active = pid(san, &format!("{}/host_active", host_prefix(d, h)));
            let mgr = pid(san, &format!("{}/mgr_active", host_prefix(d, h)));
            let mgr_corr = pid(san, &format!("{}/mgr_corrupt_local", host_prefix(d, h)));
            host_terms.push((active, 1));
            dom_mgr_terms.push((mgr, 1));
            dom_mgr_corr_terms.push((mgr_corr, 1));
            mgr_sys_terms.push((mgr, 1));
            mgr_corr_sys_terms.push((mgr_corr, 1));
        }
        expected.push(ExpectedInvariant {
            id: format!("domain-{d}-active-hosts"),
            description: format!("domain {d}: dom_active_hosts vs host_active flags"),
            terms: host_terms,
            target: 0,
        });
        expected.push(ExpectedInvariant {
            id: format!("domain-{d}-managers-active"),
            description: format!("domain {d}: dom_mgrs_active vs mgr_active flags"),
            terms: dom_mgr_terms,
            target: 0,
        });
        expected.push(ExpectedInvariant {
            id: format!("domain-{d}-managers-corrupt"),
            description: format!("domain {d}: dom_mgrs_corrupt vs mgr_corrupt_local flags"),
            terms: dom_mgr_corr_terms,
            target: 0,
        });
        for a in 0..p.num_apps {
            let mut terms = vec![(pid(san, &format!("{}/dom_has_app_{a}", dom_prefix(d))), -1)];
            for h in 0..p.hosts_per_domain {
                terms.push((pid(san, &format!("{}/has_app_{a}", host_prefix(d, h))), 1));
            }
            expected.push(ExpectedInvariant {
                id: format!("domain-{d}-app-{a}-placement"),
                description: format!("domain {d}: dom_has_app_{a} vs host has_app flags"),
                terms,
                target: 0,
            });
        }
    }
    expected.push(ExpectedInvariant {
        id: "managers-active-sys".to_owned(),
        description: "mgrs_active_sys vs all mgr_active flags".to_owned(),
        terms: mgr_sys_terms,
        target: 0,
    });
    expected.push(ExpectedInvariant {
        id: "managers-corrupt-sys".to_owned(),
        description: "mgrs_corrupt_sys vs all mgr_corrupt_local flags".to_owned(),
        terms: mgr_corr_sys_terms,
        target: 0,
    });

    // The replica-blindness law: a clean host shut down by a domain
    // exclusion while carrying an application with undetected-corrupt
    // replicas is not counted in dom_excl_corrupt, although the corrupt
    // replica may be the one it hosts.
    let mut shut_hosts: BTreeMap<usize, ShutHostCtx> = BTreeMap::new();
    for (id, act) in san.activities() {
        let Some(prefix) = act.name().strip_suffix("/shut_host") else {
            continue;
        };
        let Some(dom) = prefix.split_inclusive("/hosts").next() else {
            continue;
        };
        shut_hosts.insert(
            id.index(),
            ShutHostCtx {
                dom_excluding: pid(san, &format!("{dom}/dom_excluding")),
                host_corrupt: pid(san, &format!("{prefix}/host_corrupt")),
                mgr_corrupt: pid(san, &format!("{prefix}/mgr_corrupt_local")),
                dom_excl_corrupt: pid(san, &format!("{dom}/dom_excl_corrupt")),
                apps: (0..p.num_apps)
                    .map(|a| {
                        (
                            pid(san, &format!("{prefix}/has_app_{a}")),
                            pid(san, &format!("{}/rep_corr_undetected", app_prefix(a))),
                        )
                    })
                    .collect(),
            },
        );
    }
    let shut_hosts = Arc::new(shut_hosts);
    let law = FiringLaw {
        id: "frac-corrupt-replica-blind".to_owned(),
        description: "dom_excl_corrupt counts a host only for its own OS/manager state".to_owned(),
        check: Arc::new(move |_san, act, _case, pre, delta| {
            let ctx = shut_hosts.get(&act.index())?;
            if pre.get(ctx.dom_excluding) != 1
                || pre.get(ctx.host_corrupt) != 0
                || pre.get(ctx.mgr_corrupt) != 0
            {
                return None;
            }
            let exposed = ctx
                .apps
                .iter()
                .find(|&&(has_app, corr)| pre.get(has_app) == 1 && pre.get(corr) > 0)?;
            (delta[ctx.dom_excl_corrupt.index()] == 0).then(|| {
                format!(
                    "clean host excluded while hosting an application with {} \
                     undetected-corrupt replica(s); its own replica may be the corrupt \
                     one, but the anonymous matching cannot attribute it",
                    pre.get(exposed.1)
                )
            })
        }),
    };

    AnalysisSpec {
        expected,
        laws: vec![law],
        allow: vec![AllowEntry {
            id: "frac-corrupt-replica-blind".to_owned(),
            reason: "documented undercount: anonymous replica placement cannot attribute \
                     replica corruption to a host (see san_model.rs dom_excl_corrupt)"
                .to_owned(),
        }],
        notes: vec![KnownIssue {
            id: "frac-corrupt-undercount".to_owned(),
            subject: "dom_excl_corrupt".to_owned(),
            detail: "measure-only accumulator undercounts relative to the DES \
                     frac_corrupt measure: replica-only corruption on a clean host is \
                     invisible to the SAN's anonymous replica matching"
                .to_owned(),
        }],
    }
}

/// Runs the full probe-based analysis of `model` under the ITUA spec.
pub fn full_report(model: &ItuaSan, cfg: &AnalysisConfig) -> AnalysisReport {
    analyze(&model.san, &analysis_spec(model), cfg)
}

/// A cheap structural gate: every expected invariant must hold at the
/// initial marking and every timed activity's rate must be finite and
/// nonnegative there. O(places + activities); no state exploration.
///
/// # Errors
///
/// Returns a newline-separated list of violations.
pub fn quick_check(model: &ItuaSan) -> Result<(), String> {
    let san = &model.san;
    let spec = analysis_spec(model);
    let initial = san.initial_marking();
    let mut problems = Vec::new();
    for inv in &spec.expected {
        let got: i64 = inv
            .terms
            .iter()
            .map(|&(p, c)| c * i64::from(initial.get(p)))
            .sum();
        if got != inv.target {
            problems.push(format!(
                "invariant '{}' is {got} at the initial marking, expected {}",
                inv.description, inv.target
            ));
        }
    }
    for (_, act) in san.activities() {
        if let Some(rate) = act.rate(&initial) {
            if !rate.is_finite() || rate < 0.0 {
                problems.push(format!(
                    "activity '{}' has rate {rate} at the initial marking",
                    act.name()
                ));
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

// ---------------------------------------------------------------------
// Exhaustive checking (reach-based proofs over the full reachable set)
// ---------------------------------------------------------------------

/// All place ids whose name starts with `prefix`, as raw indices in
/// interning order. The flattening stamps identical templates in
/// identical order, so corresponding copies yield congruent lists.
fn places_under(san: &San, prefix: &str) -> Vec<usize> {
    san.place_ids()
        .filter(|&p| san.place_name(p).starts_with(prefix))
        .map(itua_san::PlaceId::index)
        .collect()
}

/// The ITUA permutation symmetry as a [`SymmetrySpec`]: domains are
/// interchangeable (each carrying its hosts as interchangeable blocks),
/// and replica slots within an application are interchangeable. The
/// composition guarantees equivariance — identical templates per copy,
/// communicating only through shared places the permutations fix — and
/// the initial marking is symmetric (placement happens inside the initial
/// vanishing cascade), so every canonical representative is itself a
/// reachable marking.
///
/// Applications are *not* permuted: their identity is baked into global
/// counter places and per-host `has_app_a` flags, which an application
/// swap would have to permute inside host blocks.
///
/// # Panics
///
/// Panics if the model's place inventory does not have the congruent
/// per-copy shape the builder guarantees.
pub fn symmetry_spec(model: &ItuaSan) -> SymmetrySpec {
    let san = &model.san;
    let p = &model.params;

    let domain_units = (0..p.num_domains)
        .map(|d| SymmetryUnit {
            shared: places_under(san, &format!("itua/domains[{d}]/hosts/")),
            blocks: (0..p.hosts_per_domain)
                .map(|h| places_under(san, &format!("itua/domains[{d}]/hosts[{h}]/host/")))
                .collect(),
        })
        .collect();
    let mut groups = vec![SymmetryGroup {
        units: domain_units,
    }];
    for a in 0..p.num_apps {
        groups.push(SymmetryGroup {
            units: vec![SymmetryUnit {
                shared: vec![],
                blocks: (0..p.reps_per_app)
                    .map(|r| {
                        places_under(san, &format!("itua/apps[{a}]/app/replicas[{r}]/replica/"))
                    })
                    .collect(),
            }],
        });
    }
    SymmetrySpec::new(san.num_places(), groups).expect("ITUA symmetry groups are congruent")
}

/// The result of an exhaustive check: whole-state-space proofs instead of
/// probe samples.
#[derive(Debug)]
pub struct ExhaustiveReport {
    /// Model name.
    pub model_name: String,
    /// Quotient states explored (tangible + vanishing).
    pub states: usize,
    /// Tangible quotient states.
    pub tangible: usize,
    /// Full (unreduced) state count, recovered as the sum of orbit sizes.
    pub full_states: u128,
    /// Full tangible state count by orbit sum.
    pub full_tangible: u128,
    /// Firings explored on the quotient graph.
    pub transitions: usize,
    /// Absorbing tangible states (no enabled timed activity).
    pub deadlocks: usize,
    /// Conservation families proved over every reachable marking.
    pub families_proved: usize,
    /// Largest token count observed in any place at any reachable
    /// marking (an exact bound, not a structural one).
    pub max_tokens: i32,
    /// The place attaining `max_tokens`.
    pub max_tokens_place: String,
    /// Findings, hard first (allowlist applied, notes appended).
    pub findings: Vec<Finding>,
}

impl ExhaustiveReport {
    /// Whether any hard finding is present.
    pub fn has_hard_findings(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Hard)
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "model '{}': exhaustive quotient {} states ({} tangible), full space {} states ({} tangible)",
            self.model_name, self.states, self.tangible, self.full_states, self.full_tangible
        );
        let _ = writeln!(
            out,
            "explored {} firings; {} absorbing state(s)",
            self.transitions, self.deadlocks
        );
        let _ = writeln!(
            out,
            "proved {} conservation families over every reachable marking",
            self.families_proved
        );
        let _ = writeln!(
            out,
            "exact bounds: max {} token(s), in '{}'",
            self.max_tokens, self.max_tokens_place
        );
        let hard = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Hard)
            .count();
        let _ = writeln!(
            out,
            "findings: {hard} hard, {} soft",
            self.findings.len() - hard
        );
        for f in &self.findings {
            let sev = match f.severity {
                Severity::Hard => "HARD",
                Severity::Soft => "soft",
            };
            let _ = writeln!(out, "  [{sev}] {}: {} — {}", f.id, f.subject, f.detail);
        }
        out
    }
}

/// Exhaustively explores the symmetry quotient of the reachable graph and
/// proves the ITUA spec over it: every conservation family at every
/// reachable marking, every firing law at every firing, zero-time
/// livelock freedom, plus dead-activity and absorbing-state detection.
///
/// # Errors
///
/// Propagates the explorer's structured [`ReachError`] (state/work budget,
/// bad rates or weights).
pub fn exhaustive_check(
    model: &ItuaSan,
    max_states: usize,
) -> Result<ExhaustiveReport, ReachError> {
    let san = &model.san;
    let spec = analysis_spec(model);
    let sym = symmetry_spec(model);
    let cfg = ReachConfig::with_max_states(max_states);

    let mut law_hits: Vec<Finding> = Vec::new();
    let graph = reach::explore(san, &cfg, Some(&sym), |san, act, case, pre, delta| {
        for law in &spec.laws {
            if let Some(msg) = (law.check)(san, act, case, pre, delta) {
                let subject = san.activity(act).name().to_owned();
                if !law_hits
                    .iter()
                    .any(|f| f.id == law.id && f.subject == subject)
                {
                    law_hits.push(Finding {
                        id: law.id.clone(),
                        severity: Severity::Hard,
                        subject,
                        detail: format!("{}: {msg}", law.description),
                    });
                }
            }
        }
    })?;

    let mut findings: Vec<Finding> = Vec::new();
    for inv in &spec.expected {
        if let Some((i, got)) = graph.states.iter().enumerate().find_map(|(i, state)| {
            let got: i64 = inv
                .terms
                .iter()
                .map(|&(p, c)| c * i64::from(state[p.index()]))
                .sum();
            (got != inv.target).then_some((i, got))
        }) {
            findings.push(Finding {
                id: inv.id.clone(),
                severity: Severity::Hard,
                subject: format!("reachable state #{i}"),
                detail: format!(
                    "'{}' is {got} at a reachable marking, expected {}",
                    inv.description, inv.target
                ),
            });
        }
    }
    findings.extend(law_hits);

    if !graph.vanishing_cycle.is_empty() {
        findings.push(Finding {
            id: "vanishing-livelock".to_owned(),
            severity: Severity::Hard,
            subject: format!("{} vanishing state(s)", graph.vanishing_cycle.len()),
            detail: "instantaneous activities form a reachable zero-time cycle".to_owned(),
        });
    }

    let dead: Vec<&str> = san
        .activities()
        .filter(|(id, _)| !graph.fired[id.index()])
        .map(|(_, a)| a.name())
        .collect();
    if !dead.is_empty() {
        let shown: Vec<&str> = dead.iter().copied().take(5).collect();
        findings.push(Finding {
            id: "dead-activity-exhaustive".to_owned(),
            severity: Severity::Soft,
            subject: format!("{} activities", dead.len()),
            detail: format!(
                "never fire at any reachable marking: {}{}",
                shown.join(", "),
                if dead.len() > 5 { ", …" } else { "" }
            ),
        });
    }
    if !graph.deadlocks.is_empty() {
        findings.push(Finding {
            id: "absorbing-states".to_owned(),
            severity: Severity::Soft,
            subject: format!("{} tangible state(s)", graph.deadlocks.len()),
            detail: "no timed activity enabled (expected: fully excluded/shut-down markings)"
                .to_owned(),
        });
    }

    for f in &mut findings {
        if let Some(entry) = spec.allow.iter().find(|e| e.id == f.id) {
            f.severity = Severity::Soft;
            f.detail.push_str(&format!(" [allowed: {}]", entry.reason));
        }
    }
    for note in &spec.notes {
        findings.push(Finding {
            id: note.id.clone(),
            severity: Severity::Soft,
            subject: note.subject.clone(),
            detail: note.detail.clone(),
        });
    }
    findings.sort_by_key(|f| match f.severity {
        Severity::Hard => 0,
        Severity::Soft => 1,
    });

    let (max_place, max_tokens) = graph
        .place_max
        .iter()
        .enumerate()
        .max_by_key(|&(_, &v)| v)
        .map_or((0, 0), |(i, &v)| (i, v));
    Ok(ExhaustiveReport {
        model_name: san.name().to_owned(),
        states: graph.num_states(),
        tangible: graph.num_tangible(),
        full_states: graph.orbit_total(),
        full_tangible: graph.tangible_orbit_total(),
        transitions: graph.num_transitions,
        deadlocks: graph.deadlocks.len(),
        families_proved: spec.expected.len(),
        max_tokens,
        max_tokens_place: san.place_name(PlaceId::from_index(max_place)).to_owned(),
        findings,
    })
}

/// Agreement between the quotient explorer and the unreduced oracle.
#[derive(Debug, Clone, Copy)]
pub struct OracleAgreement {
    /// Quotient state count.
    pub quotient_states: usize,
    /// Full state count (explored without symmetry).
    pub full_states: usize,
}

/// Runs the quotient explorer *and* the unreduced explorer and checks
/// that orbit sizes sum to the full state count (total and tangible) and
/// that the exact place bounds agree. Intended for micro configurations,
/// where the full space fits the budget.
///
/// # Errors
///
/// Returns a description of the first disagreement, or of an explorer
/// failure.
pub fn quotient_oracle(model: &ItuaSan, max_states: usize) -> Result<OracleAgreement, String> {
    let cfg = ReachConfig::with_max_states(max_states);
    let sym = symmetry_spec(model);
    let quot = reach::explore(&model.san, &cfg, Some(&sym), |_, _, _, _, _| {})
        .map_err(|e| format!("quotient exploration failed: {e}"))?;
    let full = reach::explore(&model.san, &cfg, None, |_, _, _, _, _| {})
        .map_err(|e| format!("full exploration failed: {e}"))?;
    if quot.orbit_total() != full.num_states() as u128 {
        return Err(format!(
            "orbit sizes sum to {} but the full explorer found {} states",
            quot.orbit_total(),
            full.num_states()
        ));
    }
    if quot.tangible_orbit_total() != full.num_tangible() as u128 {
        return Err(format!(
            "tangible orbit sizes sum to {} but the full explorer found {} tangible states",
            quot.tangible_orbit_total(),
            full.num_tangible()
        ));
    }
    if quot.place_max != full.place_max {
        return Err("exact place bounds disagree between quotient and full explorer".to_owned());
    }
    Ok(OracleAgreement {
        quotient_states: quot.num_states(),
        full_states: full.num_states(),
    })
}

/// Agreement between the checker's tangible projection and the analytic
/// backend's state-space generator.
#[derive(Debug, Clone, Copy)]
pub struct CrossValidation {
    /// Tangible state count (identical in both generators).
    pub tangible_states: usize,
    /// Transition count (identical multiset in both generators).
    pub transitions: usize,
}

/// Cross-validates the two independently written explorers: the checker's
/// tangible projection must match `itua_san::statespace` exactly — same
/// state list in the same order, bit-equal transition rates, bit-equal
/// initial distribution.
///
/// # Errors
///
/// Returns a description of the first mismatch, or of a generator
/// failure.
pub fn cross_validate(model: &ItuaSan, max_states: usize) -> Result<CrossValidation, String> {
    let ours = reach::tangible_projection(&model.san, max_states)
        .map_err(|e| format!("checker projection failed: {e}"))?;
    let theirs = StateSpace::generate(&model.san, max_states)
        .map_err(|e| format!("statespace generator failed: {e}"))?;
    if ours.markings.len() != theirs.num_states() {
        return Err(format!(
            "state counts differ: checker {} vs statespace {}",
            ours.markings.len(),
            theirs.num_states()
        ));
    }
    for (i, m) in ours.markings.iter().enumerate() {
        if m.as_slice() != theirs.marking(i).values() {
            return Err(format!("state #{i} differs between the generators"));
        }
    }
    if ours.transitions.len() != theirs.transitions().len() {
        return Err(format!(
            "transition counts differ: checker {} vs statespace {}",
            ours.transitions.len(),
            theirs.transitions().len()
        ));
    }
    for (k, (a, b)) in ours
        .transitions
        .iter()
        .zip(theirs.transitions())
        .enumerate()
    {
        if a.0 != b.0 || a.1 != b.1 || a.2.to_bits() != b.2.to_bits() {
            return Err(format!(
                "transition #{k} differs: checker {a:?} vs statespace {b:?}"
            ));
        }
    }
    let mut ours_init = vec![0.0f64; ours.markings.len()];
    for &(i, p) in &ours.initial {
        ours_init[i] += p;
    }
    for (i, (x, y)) in ours_init
        .iter()
        .zip(theirs.initial_distribution())
        .enumerate()
    {
        if x.to_bits() != y.to_bits() {
            return Err(format!("initial probability of state #{i} differs"));
        }
    }
    Ok(CrossValidation {
        tangible_states: ours.markings.len(),
        transitions: ours.transitions.len(),
    })
}

/// The deep (opt-in) model-check behind `Backend::self_check_deep`:
/// exhaustive quotient proof plus generator cross-validation.
///
/// # Errors
///
/// Returns a newline-separated description of hard findings, budget
/// errors, or cross-validation mismatches.
pub fn deep_check(model: &ItuaSan, max_states: usize) -> Result<(), String> {
    let report = exhaustive_check(model, max_states).map_err(|e| e.to_string())?;
    if report.has_hard_findings() {
        let lines: Vec<String> = report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Hard)
            .map(|f| format!("[{}] {}: {}", f.id, f.subject, f.detail))
            .collect();
        return Err(lines.join("\n"));
    }
    cross_validate(model, max_states)?;
    Ok(())
}

/// A reachable firing that witnesses the `frac-corrupt-replica-blind`
/// measure gap.
#[derive(Debug, Clone)]
pub struct GapWitness {
    /// The `shut_host` copy that fired.
    pub activity: String,
    /// The reachable pre-marking (canonical representative; genuinely
    /// reachable because the initial marking is symmetric).
    pub marking: Vec<i32>,
    /// The law's counterexample message.
    pub detail: String,
}

/// Searches the full reachable quotient graph for a concrete firing that
/// exhibits the DESIGN.md §8 `dom_excl_corrupt` replica-blindness gap:
/// a clean host, shut down by a domain exclusion, carrying an application
/// with undetected-corrupt replicas, without incrementing
/// `dom_excl_corrupt`. Returns the first witness in BFS order, or `None`
/// if no such firing is reachable under the budget.
///
/// # Errors
///
/// Propagates the explorer's structured [`ReachError`].
pub fn find_replica_blind_witness(
    model: &ItuaSan,
    max_states: usize,
) -> Result<Option<GapWitness>, ReachError> {
    let spec = analysis_spec(model);
    let law = spec
        .laws
        .iter()
        .find(|l| l.id == "frac-corrupt-replica-blind")
        .expect("ITUA spec carries the replica-blindness law");
    let sym = symmetry_spec(model);
    let cfg = ReachConfig::with_max_states(max_states);
    let mut witness: Option<GapWitness> = None;
    reach::explore(
        &model.san,
        &cfg,
        Some(&sym),
        |san, act, case, pre, delta| {
            if witness.is_none() {
                if let Some(msg) = (law.check)(san, act, case, pre, delta) {
                    witness = Some(GapWitness {
                        activity: san.activity(act).name().to_owned(),
                        marking: pre.values().to_vec(),
                        detail: msg,
                    });
                }
            }
        },
    )?;
    Ok(witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::san_model::build;

    fn micro() -> ItuaSan {
        let params = Params::default().with_domains(1, 2).with_applications(1, 2);
        build(&params).unwrap()
    }

    #[test]
    fn spec_invariant_count_matches_structure() {
        let model = micro();
        let spec = analysis_spec(&model);
        // 3 per app + 3 per domain + 1 per (domain, app) + 2 system-wide.
        assert_eq!(spec.expected.len(), 3 + 3 + 1 + 2);
        assert_eq!(spec.laws.len(), 1);
        assert_eq!(spec.allow.len(), 1);
    }

    #[test]
    fn quick_check_accepts_the_micro_model() {
        assert_eq!(quick_check(&micro()), Ok(()));
    }

    #[test]
    fn quick_check_accepts_paper_scale_models() {
        for scheme in [
            crate::params::ManagementScheme::DomainExclusion,
            crate::params::ManagementScheme::HostExclusion,
        ] {
            let params = Params::default()
                .with_domains(4, 3)
                .with_applications(2, 4)
                .with_scheme(scheme);
            let model = build(&params).unwrap();
            assert_eq!(quick_check(&model), Ok(()), "{scheme:?}");
        }
    }

    #[test]
    fn expected_invariants_reference_distinct_places() {
        let model = micro();
        for inv in analysis_spec(&model).expected {
            let mut ids: Vec<_> = inv.terms.iter().map(|&(p, _)| p).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), inv.terms.len(), "duplicate term in '{}'", inv.id);
        }
    }

    #[test]
    fn symmetry_spec_covers_every_replicated_place() {
        let params = Params::default().with_domains(2, 2).with_applications(1, 2);
        let model = build(&params).unwrap();
        let spec = symmetry_spec(&model);
        let classes = spec.classes();
        let san = &model.san;
        // Corresponding places of different copies must share a class;
        // here: host_active across all four hosts, has_started across
        // both replica slots, dom_excluding across both domains.
        let class_of = |name: &str| classes[san.place_id(name).unwrap().index()];
        let host_classes: Vec<usize> = (0..2)
            .flat_map(|d| {
                (0..2).map(move |h| format!("itua/domains[{d}]/hosts[{h}]/host/host_active"))
            })
            .map(|n| class_of(&n))
            .collect();
        assert!(host_classes.iter().all(|&c| c == host_classes[0]));
        assert_eq!(
            class_of("itua/apps[0]/app/replicas[0]/replica/has_started"),
            class_of("itua/apps[0]/app/replicas[1]/replica/has_started")
        );
        assert_eq!(
            class_of("itua/domains[0]/hosts/dom_excluding"),
            class_of("itua/domains[1]/hosts/dom_excluding")
        );
        // Globals stay singletons.
        let g = san.place_id("itua/mgrs_active_sys").unwrap().index();
        assert_eq!(classes[g], g);
    }

    #[test]
    fn exhaustive_check_proves_all_families_on_micro() {
        let model = micro();
        let report = exhaustive_check(&model, 200_000).unwrap();
        assert!(!report.has_hard_findings(), "{}", report.render());
        assert_eq!(report.families_proved, 9);
        assert!(report.states > 0);
        assert!(
            report.full_states > report.states as u128,
            "symmetry must shrink the micro space ({} vs {})",
            report.full_states,
            report.states
        );
        // The documented gap surfaces as an allowlisted soft finding on
        // the full reachable graph, not just on crafted markings.
        assert!(report
            .findings
            .iter()
            .any(|f| f.id == "frac-corrupt-replica-blind" && f.severity == Severity::Soft));
    }

    #[test]
    fn quotient_oracle_agrees_on_micro() {
        let model = micro();
        let agreement = quotient_oracle(&model, 200_000).unwrap();
        assert!(agreement.quotient_states < agreement.full_states);
    }

    #[test]
    fn cross_validation_matches_statespace_on_micro() {
        let model = micro();
        let cv = cross_validate(&model, 200_000).unwrap();
        assert!(cv.tangible_states > 0);
        assert!(cv.transitions > 0);
    }

    #[test]
    fn deep_check_accepts_micro_and_reports_budget() {
        let model = micro();
        assert_eq!(deep_check(&model, 200_000), Ok(()));
        let err = deep_check(&model, 3).unwrap_err();
        assert!(err.contains("state budget"), "{err}");
    }

    #[test]
    fn replica_blind_witness_is_reachable() {
        let model = micro();
        let w = find_replica_blind_witness(&model, 200_000)
            .unwrap()
            .expect("the gap has a reachable witness on the micro config");
        assert!(w.activity.ends_with("/shut_host"));
        assert_eq!(w.marking.len(), model.san.num_places());
    }
}

//! Executes the composed ITUA SAN and reduces each run to the same
//! [`RunOutput`] record the direct DES produces.
//!
//! This is the glue that lets the SAN encoding ride the generic experiment
//! pipeline: [`ItuaSanRunner`] owns the flattened model plus a
//! [`SanSimulator`], and `run_into` drives one replication through a
//! measure observer that tracks improper-service time, Byzantine faults,
//! exclusions, and instant-of-time snapshots — the exact measure
//! definitions of [`crate::measures`].
//!
//! One known semantic gap, inherent to the SAN encoding: the
//! "fraction of corrupt hosts at exclusion" measure counts host-OS and
//! manager corruption, but cannot attribute a convicted *replica*'s
//! corruption to its host (the replica submodel leaves the host before the
//! exclusion cascade reaches it). It therefore slightly undercounts
//! relative to the DES. Cross-backend validation compares the measures
//! that agree exactly in distribution (unavailability, unreliability,
//! excluded-domain fractions).

use crate::measures::{RunOutput, Snapshot};
use crate::params::Params;
use crate::san_model::{self, BuildError, ItuaSan, ItuaSanPlaces};
use itua_san::marking::Marking;
use itua_san::model::{ActivityId, SanError};
use itua_san::simulator::{Observer, RunCursor, SanSimulator, SimScratch};
use itua_sim::rng::stream_seed;
use itua_stats::timeweighted::TimeWeighted;

/// Runs the composed ITUA SAN as a replication backend producing
/// [`RunOutput`]s.
#[derive(Debug, Clone)]
pub struct ItuaSanRunner {
    model: ItuaSan,
    sim: SanSimulator,
}

/// Reusable per-thread state for [`ItuaSanRunner::run_into`]: the
/// simulator's [`SimScratch`] plus the measure observer, whose buffers are
/// reset (not reallocated) for every replication. `Clone` copies the full
/// mid-run state, which is what lets importance splitting fork a run at a
/// level crossing.
#[derive(Clone)]
pub struct SanScratch {
    sim: SimScratch,
    observer: MeasureObserver,
}

impl ItuaSanRunner {
    /// Builds the composed SAN for `params` and wraps it in a runner.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid parameters or construction
    /// failures.
    pub fn new(params: &Params) -> Result<Self, BuildError> {
        Ok(Self::from_model(san_model::build(params)?))
    }

    /// Wraps an already-built model.
    pub fn from_model(model: ItuaSan) -> Self {
        let sim = SanSimulator::new(model.san.clone());
        ItuaSanRunner { model, sim }
    }

    /// The parameter set the model was built from.
    pub fn params(&self) -> &Params {
        &self.model.params
    }

    /// The underlying model and its resolved measure places.
    pub fn model(&self) -> &ItuaSan {
        &self.model
    }

    /// Creates a reusable scratch for [`ItuaSanRunner::run_into`].
    pub fn scratch(&self) -> SanScratch {
        SanScratch {
            sim: self.sim.scratch(),
            observer: MeasureObserver::new(&self.model),
        }
    }

    /// Runs one replication until `horizon`, sampling instant-of-time
    /// measures at `sample_times` (values beyond the horizon are clamped
    /// to it), reusing `scratch`'s allocations.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::Unstabilized`] if instantaneous activities
    /// livelock (indicates a model bug, not a statistical event).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive and finite.
    pub fn run_into(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut SanScratch,
    ) -> Result<RunOutput, SanError> {
        assert!(horizon > 0.0 && horizon.is_finite(), "bad horizon");
        scratch.observer.reset(horizon, sample_times);
        self.sim.run_with_scratch(
            seed,
            horizon,
            &mut [&mut scratch.observer],
            &mut scratch.sim,
        )?;
        Ok(scratch.observer.take_output(horizon))
    }

    /// Runs the half-open replication range `reps`, appending one result
    /// per replication in ascending order; replication `rep` is seeded
    /// `stream_seed(origin_seed, rep)`.
    ///
    /// The per-run sample-time schedule is identical across a batch, so
    /// its clamp/filter/sort/dedup happens once here instead of once per
    /// replication. Outputs are bit-identical to per-replication
    /// [`ItuaSanRunner::run_into`] calls with the same seeds.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive and finite.
    pub fn run_batch_into<E: From<SanError>>(
        &self,
        origin_seed: u64,
        reps: std::ops::Range<u32>,
        horizon: f64,
        sample_times: &[f64],
        scratch: &mut SanScratch,
        out: &mut Vec<Result<RunOutput, E>>,
    ) {
        assert!(horizon > 0.0 && horizon.is_finite(), "bad horizon");
        scratch.observer.prepare_samples(horizon, sample_times);
        for rep in reps {
            scratch.observer.reset_run();
            let result = self
                .sim
                .run_with_scratch(
                    stream_seed(origin_seed, u64::from(rep)),
                    horizon,
                    &mut [&mut scratch.observer],
                    &mut scratch.sim,
                )
                .map(|_| scratch.observer.take_output(horizon))
                .map_err(E::from);
            out.push(result);
        }
    }

    /// Runs one replication with a fresh scratch; see
    /// [`ItuaSanRunner::run_into`].
    ///
    /// # Errors
    ///
    /// Returns [`SanError::Unstabilized`] if instantaneous activities
    /// livelock.
    pub fn run(
        &self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
    ) -> Result<RunOutput, SanError> {
        let mut scratch = self.scratch();
        self.run_into(seed, horizon, sample_times, &mut scratch)
    }

    /// Begins one replication as an importance-splitting branch: the run
    /// is initialized (stabilized initial marking, observer `on_init`,
    /// initial schedule) but no timed event has fired yet. Driving it with
    /// [`itua_rare::run_tree`] and an empty
    /// [`itua_rare::SplitSpec`] reproduces [`ItuaSanRunner::run_into`]
    /// bit for bit: the branch steps through the exact same
    /// [`itua_san::simulator::SanSimulator`] event loop.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::Unstabilized`] if the initial instantaneous
    /// cascade livelocks.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive and finite.
    pub fn split_branch<'a, L>(
        &'a self,
        seed: u64,
        horizon: f64,
        sample_times: &[f64],
        level_fn: &'a L,
    ) -> Result<SanBranch<'a, L>, SanError> {
        assert!(horizon > 0.0 && horizon.is_finite(), "bad horizon");
        let mut scratch = self.scratch();
        scratch.observer.reset(horizon, sample_times);
        let cursor = self.sim.begin_run(
            seed,
            horizon,
            &mut [&mut scratch.observer],
            &mut scratch.sim,
        )?;
        Ok(SanBranch {
            runner: self,
            level_fn,
            scratch,
            cursor,
            horizon,
        })
    }
}

/// Read-only view of a mid-run SAN marking handed to
/// [`itua_rare::LevelFn`] implementations.
pub struct SanStateView<'a> {
    marking: &'a Marking,
    places: &'a ItuaSanPlaces,
}

impl SanStateView<'_> {
    /// Number of security domains that are excluded or currently house a
    /// compromised host OS or a corrupt ITUA manager.
    ///
    /// This is the SAN analog of
    /// [`crate::des::DesStateView::corrupt_domain_count`]. One caveat:
    /// replica-only corruption is not attributable to a domain in the SAN
    /// encoding (replica submodels are anonymous), so a domain whose only
    /// corruption is an intruded replica does not raise the level here.
    /// Level functions only steer the splitting effort — any such
    /// discrepancy affects variance, never the estimate's expectation.
    pub fn corrupt_domain_count(&self) -> u32 {
        let p = self.places;
        (0..p.domain_excluded.len())
            .filter(|&d| {
                self.marking.get(p.domain_excluded[d]) > 0
                    || self.marking.get(p.domain_corrupt_hosts[d]) > 0
                    || self.marking.get(p.domain_mgrs_corrupt[d]) > 0
            })
            .count() as u32
    }
}

/// One importance-splitting branch of a SAN replication: the cloneable
/// mid-run state (scratch + cursor) plus the simulator and level function
/// it steps under. Implements [`itua_rare::SplitBranch`].
pub struct SanBranch<'a, L> {
    runner: &'a ItuaSanRunner,
    level_fn: &'a L,
    scratch: SanScratch,
    cursor: RunCursor,
    horizon: f64,
}

impl<L> Clone for SanBranch<'_, L> {
    fn clone(&self) -> Self {
        SanBranch {
            runner: self.runner,
            level_fn: self.level_fn,
            scratch: self.scratch.clone(),
            cursor: self.cursor.clone(),
            horizon: self.horizon,
        }
    }
}

impl<L> itua_rare::SplitBranch for SanBranch<'_, L>
where
    L: for<'s> itua_rare::LevelFn<SanStateView<'s>>,
{
    type Output = RunOutput;
    type Error = SanError;

    fn step(&mut self) -> Result<bool, SanError> {
        let SanScratch { sim, observer } = &mut self.scratch;
        self.runner
            .sim
            .step_run(self.horizon, &mut [observer], sim, &mut self.cursor)
    }

    fn level(&self) -> u32 {
        self.level_fn.level(&SanStateView {
            marking: self.scratch.sim.marking(),
            places: &self.runner.model.places,
        })
    }

    fn reseed(&mut self, seed: u64) {
        self.cursor.reseed(seed);
        // Decorrelate this branch from its siblings: redraw the pending
        // completion times (memoryless, so the trajectory law given the
        // cloned marking is unchanged) from the new stream.
        self.runner
            .sim
            .resample_pending(&mut self.scratch.sim, &mut self.cursor);
    }

    fn survives(&mut self, p: f64) -> bool {
        self.cursor.survives(p)
    }

    fn finish(mut self) -> RunOutput {
        self.scratch.observer.take_output(self.horizon)
    }
}

/// Observer that evaluates the DES-equivalent measures on the SAN marking.
#[derive(Clone)]
struct MeasureObserver {
    places: ItuaSanPlaces,
    num_apps: usize,
    num_domains: usize,
    hosts_per_domain: usize,
    samples: Vec<f64>,
    improper: Vec<TimeWeighted>,
    byzantine: Vec<bool>,
    first_byzantine_time: Option<f64>,
    first_improper_time: Option<f64>,
    excluded_seen: i32,
    domain_recorded: Vec<bool>,
    exclusion_fractions: Vec<f64>,
    snapshots: Vec<Snapshot>,
}

impl MeasureObserver {
    fn new(model: &ItuaSan) -> Self {
        MeasureObserver {
            places: model.places.clone(),
            num_apps: model.params.num_apps,
            num_domains: model.params.num_domains,
            hosts_per_domain: model.params.hosts_per_domain,
            samples: Vec::new(),
            improper: Vec::new(),
            byzantine: Vec::new(),
            first_byzantine_time: None,
            first_improper_time: None,
            excluded_seen: 0,
            domain_recorded: Vec::new(),
            exclusion_fractions: Vec::new(),
            snapshots: Vec::new(),
        }
    }

    /// Prepares the observer for a fresh replication.
    fn reset(&mut self, horizon: f64, sample_times: &[f64]) {
        self.prepare_samples(horizon, sample_times);
        self.reset_run();
    }

    /// Prepares the sample-time schedule, shared by every replication of
    /// a batch: the same clamp/filter/sort/dedup the DES applies.
    fn prepare_samples(&mut self, horizon: f64, sample_times: &[f64]) {
        self.samples.clear();
        self.samples.extend(
            sample_times
                .iter()
                .map(|&t| t.min(horizon))
                .filter(|&t| t > 0.0),
        );
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN sample times"));
        self.samples.dedup();
    }

    /// Resets the per-replication accumulators, reusing every buffer, and
    /// leaves the sample schedule in place. `take_output` may have
    /// drained some vectors; `resize` after `clear` restores their length
    /// either way.
    fn reset_run(&mut self) {
        self.improper.clear();
        self.improper
            .resize(self.num_apps, TimeWeighted::new(0.0, 1.0));
        self.byzantine.clear();
        self.byzantine.resize(self.num_apps, false);
        self.first_byzantine_time = None;
        self.first_improper_time = None;
        self.excluded_seen = 0;
        self.domain_recorded.clear();
        self.domain_recorded.resize(self.num_domains, false);
        self.exclusion_fractions.clear();
        self.snapshots.clear();
    }

    fn update(&mut self, time: f64, marking: &Marking) {
        for a in 0..self.improper.len() {
            let improper = self.places.improper(marking, a);
            let byz = self.places.byzantine(marking, a);
            if improper && self.first_improper_time.is_none() && time > 0.0 {
                self.first_improper_time = Some(time);
            }
            if byz && self.first_byzantine_time.is_none() {
                self.first_byzantine_time = Some(time);
            }
            self.improper[a].set(time, if improper { 1.0 } else { 0.0 });
            if byz {
                self.byzantine[a] = true;
            }
        }
        // Record newly completed domain exclusions.
        let excluded = marking.get(self.places.excluded_domains);
        if excluded > self.excluded_seen {
            self.excluded_seen = excluded;
            for d in 0..self.num_domains {
                if !self.domain_recorded[d] && marking.get(self.places.domain_excluded[d]) == 1 {
                    self.domain_recorded[d] = true;
                    let corrupt = marking.get(self.places.domain_excl_corrupt[d]);
                    self.exclusion_fractions
                        .push(corrupt as f64 / self.hosts_per_domain as f64);
                }
            }
        }
    }

    /// Extracts the run's measures. Accumulator vectors are moved out (the
    /// output owns them anyway); the next [`MeasureObserver::reset`]
    /// rebuilds them.
    fn take_output(&mut self, horizon: f64) -> RunOutput {
        RunOutput {
            horizon,
            improper_time_per_app: self
                .improper
                .iter()
                .map(|tw| tw.integral_until(horizon))
                .collect(),
            byzantine_per_app: std::mem::take(&mut self.byzantine),
            exclusion_corrupt_fractions: std::mem::take(&mut self.exclusion_fractions),
            snapshots: std::mem::take(&mut self.snapshots),
            first_byzantine_time: self.first_byzantine_time,
            first_improper_time: self.first_improper_time,
        }
    }
}

impl Observer for MeasureObserver {
    fn on_init(&mut self, time: f64, marking: &Marking) {
        self.update(time, marking);
    }

    fn on_event(&mut self, time: f64, _activity: ActivityId, marking: &Marking) {
        self.update(time, marking);
    }

    fn sample_times(&self) -> Vec<f64> {
        self.samples.clone()
    }

    fn append_sample_times(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(&self.samples);
    }

    fn on_sample(&mut self, time: f64, marking: &Marking) {
        let running_total: i32 = self.places.running.iter().map(|&p| marking.get(p)).sum();
        let alive_hosts: i32 = self
            .places
            .domain_active_hosts
            .iter()
            .map(|&p| marking.get(p))
            .sum();
        self.snapshots.push(Snapshot {
            time,
            frac_domains_excluded: marking.get(self.places.excluded_domains) as f64
                / self.num_domains as f64,
            mean_replicas_running: running_total as f64 / self.places.running.len() as f64,
            load_per_host: if alive_hosts == 0 {
                0.0
            } else {
                running_total as f64 / alive_hosts as f64
            },
        });
    }

    fn on_end(&mut self, time: f64, marking: &Marking) {
        self.update(time, marking);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::names;
    use crate::measures::MeasureSet;

    fn small_params() -> Params {
        Params::default().with_domains(3, 2).with_applications(2, 3)
    }

    #[test]
    fn run_is_reproducible_and_scratch_reuse_is_exact() {
        let runner = ItuaSanRunner::new(&small_params()).unwrap();
        let mut scratch = runner.scratch();
        for seed in 0..10 {
            let reused = runner
                .run_into(seed, 5.0, &[1.0, 5.0], &mut scratch)
                .unwrap();
            let fresh = runner.run(seed, 5.0, &[1.0, 5.0]).unwrap();
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn batched_runs_match_per_replication_runs() {
        // The batched entry point must produce byte-identical outputs to
        // one `run_into` call per replication with the same stream seeds,
        // for any way the replication range is split into batches.
        let runner = ItuaSanRunner::new(&small_params()).unwrap();
        let origin = 0xABCD;
        let reps = 12u32;
        let mut scratch = runner.scratch();
        let reference: Vec<RunOutput> = (0..reps)
            .map(|rep| {
                runner
                    .run_into(
                        stream_seed(origin, u64::from(rep)),
                        5.0,
                        &[1.0, 5.0],
                        &mut scratch,
                    )
                    .unwrap()
            })
            .collect();
        for batch in [1u32, 4, 32] {
            let mut out: Vec<Result<RunOutput, SanError>> = Vec::new();
            let mut start = 0;
            while start < reps {
                let end = (start + batch).min(reps);
                runner.run_batch_into(origin, start..end, 5.0, &[1.0, 5.0], &mut scratch, &mut out);
                start = end;
            }
            let got: Vec<RunOutput> = out.into_iter().map(Result::unwrap).collect();
            assert_eq!(got, reference, "batch={batch}");
        }
    }

    #[test]
    fn scratch_reuse_is_exact_across_heterogeneous_runs() {
        // Interleave horizons and sample grids of different lengths so a
        // stale buffer from the previous replication (longer snapshot
        // list, different sample times, leftover exclusion fractions)
        // would corrupt the next output if reset missed anything.
        let runner = ItuaSanRunner::new(&small_params()).unwrap();
        let mut scratch = runner.scratch();
        let configs: [(f64, &[f64]); 3] = [
            (5.0, &[1.0, 5.0]),
            (10.0, &[2.0, 4.0, 6.0, 10.0]),
            (2.0, &[]),
        ];
        for round in 0..4 {
            for (i, &(horizon, samples)) in configs.iter().enumerate() {
                let seed = round * 100 + i as u64;
                let reused = runner
                    .run_into(seed, horizon, samples, &mut scratch)
                    .unwrap();
                let fresh = runner.run(seed, horizon, samples).unwrap();
                assert_eq!(reused, fresh, "round {round}, config {i}");
                assert_eq!(reused.snapshots.len(), samples.len());
            }
        }
    }

    #[test]
    fn split_branch_without_splits_matches_plain_run() {
        // The splitting path reuses the simulator's begin_run/step_run
        // loop, so a tree with no thresholds must reproduce run_into bit
        // for bit (root branch, no reseed, no roulette draws).
        let runner = ItuaSanRunner::new(&small_params()).unwrap();
        let level = crate::split::CorruptDomainCount;
        for seed in 0..15u64 {
            let plain = runner.run(seed, 5.0, &[1.0, 5.0]).unwrap();
            let branch = runner.split_branch(seed, 5.0, &[1.0, 5.0], &level).unwrap();
            let mut leaves = Vec::new();
            let stats =
                itua_rare::run_tree(branch, seed, &itua_rare::SplitSpec::none(), &mut leaves)
                    .unwrap();
            assert_eq!(stats.branches, 1);
            assert_eq!(leaves.len(), 1);
            assert_eq!(leaves[0].0, 1.0);
            assert_eq!(leaves[0].1, plain, "seed {seed}");
        }
    }

    #[test]
    fn split_branch_with_splits_produces_weighted_leaves() {
        let runner = ItuaSanRunner::new(&small_params()).unwrap();
        let level = crate::split::CorruptDomainCount;
        let spec: itua_rare::SplitSpec = "1x4".parse().unwrap();
        let mut split_trees = 0u32;
        for seed in 0..30u64 {
            let branch = runner.split_branch(seed, 5.0, &[5.0], &level).unwrap();
            let mut leaves = Vec::new();
            let stats = itua_rare::run_tree(branch, seed, &spec, &mut leaves).unwrap();
            if stats.branches > 1 {
                split_trees += 1;
            }
            for &(w, ref out) in &leaves {
                assert!(w > 0.0 && w <= 1.0);
                assert!(out.unavailability(5.0) >= 0.0);
            }
            assert_eq!(leaves.len() as u32, stats.leaves);
        }
        assert!(split_trees > 0, "no tree ever crossed level 1");
    }

    #[test]
    fn outputs_are_well_formed() {
        let runner = ItuaSanRunner::new(&small_params()).unwrap();
        let mut scratch = runner.scratch();
        let mut ms = MeasureSet::new(0.95);
        for seed in 0..40 {
            let out = runner
                .run_into(seed, 5.0, &[2.0, 5.0], &mut scratch)
                .unwrap();
            assert_eq!(out.snapshots.len(), 2);
            assert_eq!(out.improper_time_per_app.len(), 2);
            let u = out.unavailability(5.0);
            assert!((0.0..=1.0).contains(&u), "seed {seed}: {u}");
            for &f in &out.exclusion_corrupt_fractions {
                assert!((0.0..=1.0).contains(&f), "seed {seed}: {f}");
            }
            for s in &out.snapshots {
                assert!((0.0..=1.0).contains(&s.frac_domains_excluded));
                assert!(s.mean_replicas_running >= 0.0);
                assert!(s.load_per_host >= 0.0);
            }
            ms.record(&out);
        }
        assert!(ms.mean(names::UNAVAILABILITY).is_some());
    }

    #[test]
    fn exclusion_fraction_counts_match_exclusions() {
        let runner = ItuaSanRunner::new(&small_params()).unwrap();
        let mut scratch = runner.scratch();
        for seed in 0..30 {
            let out = runner.run_into(seed, 10.0, &[10.0], &mut scratch).unwrap();
            let excluded = out.snapshots[0].frac_domains_excluded * 3.0;
            assert_eq!(
                out.exclusion_corrupt_fractions.len(),
                excluded.round() as usize,
                "seed {seed}: one fraction per completed exclusion"
            );
        }
    }

    #[test]
    fn host_exclusion_scheme_records_no_domain_fractions() {
        let params = small_params().with_scheme(crate::params::ManagementScheme::HostExclusion);
        let runner = ItuaSanRunner::new(&params).unwrap();
        let mut scratch = runner.scratch();
        for seed in 0..20 {
            let out = runner.run_into(seed, 10.0, &[], &mut scratch).unwrap();
            assert!(out.exclusion_corrupt_fractions.is_empty());
        }
    }
}

//! The intrusion-tolerance measures of the paper's Section 4.
//!
//! Both model encodings (SAN and direct DES) produce a [`RunOutput`] per
//! replication; [`MeasureSet`] aggregates outputs over replications into
//! named estimates (the values the figures plot).
//!
//! Measure definitions:
//!
//! * **improper service** — an application suffers a Byzantine fault (a
//!   third or more of its currently active replicas are corrupt and
//!   undetected), *or* it has no running replica at all (service cannot be
//!   delivered; this is what degrades when the system runs out of
//!   domains).
//! * **unavailability\[0,T\]** — expected fraction of `[0, T]` with
//!   improper service.
//! * **unreliability\[0,T\]** — probability that a *Byzantine fault*
//!   occurred at least once in `[0, T]` (the paper's `rep_grp_failure`
//!   sticky flag).
//! * **fraction of corrupt hosts in an excluded domain** — measured at
//!   each domain-exclusion event.
//! * **fraction of domains excluded at t**, **replicas running at t**,
//!   **load (replicas per active host) at t** — instant-of-time measures.

use itua_stats::replication::{Estimate, ReplicationEstimator};

/// Canonical measure names used by both encodings and the studies.
pub mod names {
    /// Time-averaged improper-service indicator over `[0, horizon]`.
    pub const UNAVAILABILITY: &str = "unavailability";
    /// Sticky Byzantine-fault indicator over `[0, horizon]`.
    pub const UNRELIABILITY: &str = "unreliability";
    /// Fraction of hosts corrupt in a domain when it is excluded.
    pub const FRAC_CORRUPT_AT_EXCLUSION: &str = "frac_corrupt_hosts_at_exclusion";
    /// Fraction of domains excluded at a sample time (suffix `@t`).
    pub const FRAC_DOMAINS_EXCLUDED: &str = "frac_domains_excluded";
    /// Mean replicas of an application still running at a sample time.
    pub const REPLICAS_RUNNING: &str = "replicas_running";
    /// Replicas per active host at a sample time.
    pub const LOAD_PER_HOST: &str = "load_per_host";
    /// Time of the first Byzantine fault (conditional on one occurring).
    pub const TIME_TO_FIRST_BYZANTINE: &str = "time_to_first_byzantine";
    /// Time service first became improper (conditional on it happening).
    pub const TIME_TO_FIRST_IMPROPER: &str = "time_to_first_improper";
}

/// Instant-of-time snapshot taken during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Sample time.
    pub time: f64,
    /// Fraction of domains excluded.
    pub frac_domains_excluded: f64,
    /// Mean number of running replicas per application.
    pub mean_replicas_running: f64,
    /// Replicas per active host (0 if no host is active).
    pub load_per_host: f64,
}

/// Everything one replication produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Horizon the run covered.
    pub horizon: f64,
    /// Per-application time integral of the improper-service indicator.
    pub improper_time_per_app: Vec<f64>,
    /// Per-application sticky Byzantine-fault flag.
    pub byzantine_per_app: Vec<bool>,
    /// Fraction of corrupt hosts recorded at each domain exclusion.
    pub exclusion_corrupt_fractions: Vec<f64>,
    /// Instant-of-time snapshots at the requested sample times.
    pub snapshots: Vec<Snapshot>,
    /// Time of the first Byzantine fault of any application (`None` if no
    /// application ever suffered one in this run) — the classic
    /// time-to-failure dependability measure.
    pub first_byzantine_time: Option<f64>,
    /// Time at which any application's service first became improper.
    pub first_improper_time: Option<f64>,
}

impl RunOutput {
    /// Mean unavailability over applications for the interval `[0, t]`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive or exceeds the run horizon.
    pub fn unavailability(&self, t: f64) -> f64 {
        assert!(t > 0.0 && t <= self.horizon + 1e-9, "bad interval end {t}");
        let sum: f64 = self.improper_time_per_app.iter().sum();
        (sum / self.improper_time_per_app.len() as f64) / t
    }

    /// Fraction of applications that suffered a Byzantine fault (an
    /// unbiased per-replication estimate of unreliability).
    pub fn unreliability(&self) -> f64 {
        let hits = self.byzantine_per_app.iter().filter(|&&b| b).count();
        hits as f64 / self.byzantine_per_app.len() as f64
    }

    /// Mean fraction of corrupt hosts over this run's domain exclusions
    /// (`None` if no domain was excluded).
    pub fn mean_exclusion_corrupt_fraction(&self) -> Option<f64> {
        if self.exclusion_corrupt_fractions.is_empty() {
            None
        } else {
            Some(
                self.exclusion_corrupt_fractions.iter().sum::<f64>()
                    / self.exclusion_corrupt_fractions.len() as f64,
            )
        }
    }
}

/// Aggregates [`RunOutput`]s over replications into named estimates.
///
/// # Example
///
/// ```
/// use itua_core::measures::{MeasureSet, RunOutput, Snapshot};
///
/// let mut ms = MeasureSet::new(0.95);
/// for rep in 0..10 {
///     ms.record(&RunOutput {
///         horizon: 5.0,
///         improper_time_per_app: vec![0.5 + 0.01 * rep as f64],
///         byzantine_per_app: vec![rep % 2 == 0],
///         exclusion_corrupt_fractions: vec![],
///         snapshots: vec![Snapshot {
///             time: 5.0,
///             frac_domains_excluded: 0.2,
///             mean_replicas_running: 6.0,
///             load_per_host: 1.0,
///         }],
///         first_byzantine_time: None,
///         first_improper_time: None,
///     });
/// }
/// let estimates = ms.estimates();
/// assert!(estimates.iter().any(|e| e.name == "unavailability"));
/// ```
#[derive(Debug, Clone)]
pub struct MeasureSet {
    est: ReplicationEstimator,
}

impl MeasureSet {
    /// Creates an empty aggregate reporting at confidence `level`.
    pub fn new(level: f64) -> Self {
        MeasureSet {
            est: ReplicationEstimator::new(level),
        }
    }

    /// Creates an empty weighted aggregate for importance-splitting runs;
    /// observations are recorded per split tree via
    /// [`MeasureSet::record_tree`].
    pub fn new_weighted(level: f64) -> Self {
        MeasureSet {
            est: ReplicationEstimator::new_weighted(level),
        }
    }

    /// Records one replication's output.
    pub fn record(&mut self, out: &RunOutput) {
        self.est
            .record(names::UNAVAILABILITY, out.unavailability(out.horizon));
        self.est.record(names::UNRELIABILITY, out.unreliability());
        if let Some(f) = out.mean_exclusion_corrupt_fraction() {
            self.est.record(names::FRAC_CORRUPT_AT_EXCLUSION, f);
        }
        if let Some(t) = out.first_byzantine_time {
            self.est.record(names::TIME_TO_FIRST_BYZANTINE, t);
        }
        if let Some(t) = out.first_improper_time {
            self.est.record(names::TIME_TO_FIRST_IMPROPER, t);
        }
        for s in &out.snapshots {
            self.est.record(
                &format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, s.time),
                s.frac_domains_excluded,
            );
            self.est.record(
                &format!("{}@{}", names::REPLICAS_RUNNING, s.time),
                s.mean_replicas_running,
            );
            self.est.record(
                &format!("{}@{}", names::LOAD_PER_HOST, s.time),
                s.load_per_host,
            );
        }
    }

    /// Records one importance-splitting tree's weighted leaves as a single
    /// replication-level observation.
    ///
    /// The weight process of RESTART splitting is a martingale, so for any
    /// *unconditional* horizon measure the per-tree total `Σ_leaves w·x` is
    /// one unbiased iid observation of the plain per-replication value —
    /// those totals are recorded with weight 1, giving an exact t-interval
    /// across trees. *Conditional* measures (observed only in some runs:
    /// exclusion fractions, first-failure times) are recorded as the
    /// weighted ratio `Σw·v / Σw` over the observing leaves, carrying
    /// weight `Σw` so the effective sample size reflects how much of the
    /// tree's probability mass observed the event; trees with no observing
    /// leaf are skipped, mirroring the plain path.
    ///
    /// A tree whose branches were all roulette-killed (`leaves` empty)
    /// still contributes `0` to every unconditional measure — dropping it
    /// would bias the estimator upward. `horizon` and `sample_times` are
    /// the run arguments, used to reconstruct the snapshot schedule for
    /// such empty trees.
    ///
    /// A single-leaf tree with weight 1 (no split fired) reproduces
    /// [`MeasureSet::record`] bit-for-bit: every `w·x` and `Σw·v/Σw`
    /// collapses to `x` exactly at `w == 1.0`.
    ///
    /// # Panics
    ///
    /// Panics if this set was not created with [`MeasureSet::new_weighted`].
    pub fn record_tree(&mut self, leaves: &[(f64, RunOutput)], horizon: f64, sample_times: &[f64]) {
        let mut schedule = Vec::new();
        crate::des::clamp_sample_times(sample_times, horizon, &mut schedule);
        debug_assert!(
            leaves
                .iter()
                .all(|(_, o)| o.snapshots.len() == schedule.len()),
            "leaf snapshots do not match the sample schedule"
        );

        let unavailability: f64 = leaves
            .iter()
            .map(|(w, o)| w * o.unavailability(o.horizon))
            .sum();
        self.est
            .record_weighted(names::UNAVAILABILITY, unavailability, 1.0);
        let unreliability: f64 = leaves.iter().map(|(w, o)| w * o.unreliability()).sum();
        self.est
            .record_weighted(names::UNRELIABILITY, unreliability, 1.0);
        for (i, &t) in schedule.iter().enumerate() {
            let total = |f: fn(&Snapshot) -> f64| -> f64 {
                leaves.iter().map(|(w, o)| w * f(&o.snapshots[i])).sum()
            };
            self.est.record_weighted(
                &format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, t),
                total(|s| s.frac_domains_excluded),
                1.0,
            );
            self.est.record_weighted(
                &format!("{}@{}", names::REPLICAS_RUNNING, t),
                total(|s| s.mean_replicas_running),
                1.0,
            );
            self.est.record_weighted(
                &format!("{}@{}", names::LOAD_PER_HOST, t),
                total(|s| s.load_per_host),
                1.0,
            );
        }

        let mut conditional = |name: &str, value: fn(&RunOutput) -> Option<f64>| {
            let mut wsum = 0.0;
            let mut vsum = 0.0;
            for (w, o) in leaves {
                if let Some(v) = value(o) {
                    wsum += w;
                    vsum += w * v;
                }
            }
            if wsum > 0.0 {
                self.est.record_weighted(name, vsum / wsum, wsum);
            }
        };
        conditional(
            names::FRAC_CORRUPT_AT_EXCLUSION,
            RunOutput::mean_exclusion_corrupt_fraction,
        );
        conditional(names::TIME_TO_FIRST_BYZANTINE, |o| o.first_byzantine_time);
        conditional(names::TIME_TO_FIRST_IMPROPER, |o| o.first_improper_time);
    }

    /// Records an exact (zero-variance) value for one named measure, as
    /// produced by the analytic backend: the estimate comes out as
    /// `value ± 0` (see [`ReplicationEstimator::record_exact`]).
    pub fn record_exact(&mut self, name: &str, value: f64) {
        self.est.record_exact(name, value);
    }

    /// Point estimate for a measure (mean over replications), if at least
    /// two observations exist.
    pub fn mean(&self, name: &str) -> Option<f64> {
        self.est.estimate(name).ok().map(|e| e.ci.mean)
    }

    /// All estimates with confidence intervals.
    pub fn estimates(&self) -> Vec<Estimate> {
        self.est.estimates()
    }

    /// Underlying estimator (for precision-based stopping).
    pub fn estimator(&self) -> &ReplicationEstimator {
        &self.est
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_output() -> RunOutput {
        RunOutput {
            horizon: 5.0,
            improper_time_per_app: vec![1.0, 0.0, 0.5, 0.5],
            byzantine_per_app: vec![true, false, false, false],
            exclusion_corrupt_fractions: vec![0.5, 1.0],
            snapshots: vec![Snapshot {
                time: 5.0,
                frac_domains_excluded: 0.3,
                mean_replicas_running: 5.5,
                load_per_host: 1.2,
            }],
            first_byzantine_time: Some(1.25),
            first_improper_time: Some(1.25),
        }
    }

    #[test]
    fn unavailability_averages_apps() {
        let out = sample_output();
        // Mean improper time = 0.5 over 5 hours → 0.1.
        assert!((out.unavailability(5.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn unreliability_is_app_fraction() {
        assert!((sample_output().unreliability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exclusion_fraction_mean() {
        assert_eq!(
            sample_output().mean_exclusion_corrupt_fraction(),
            Some(0.75)
        );
        let mut out = sample_output();
        out.exclusion_corrupt_fractions.clear();
        assert_eq!(out.mean_exclusion_corrupt_fraction(), None);
    }

    #[test]
    #[should_panic]
    fn unavailability_beyond_horizon_panics() {
        let _ = sample_output().unavailability(10.0);
    }

    #[test]
    fn measure_set_aggregates() {
        let mut ms = MeasureSet::new(0.95);
        for _ in 0..5 {
            ms.record(&sample_output());
        }
        assert!((ms.mean(names::UNAVAILABILITY).unwrap() - 0.1).abs() < 1e-12);
        assert!((ms.mean(names::UNRELIABILITY).unwrap() - 0.25).abs() < 1e-12);
        assert!((ms.mean(names::FRAC_CORRUPT_AT_EXCLUSION).unwrap() - 0.75).abs() < 1e-12);
        assert!(
            (ms.mean(&format!("{}@5", names::FRAC_DOMAINS_EXCLUDED))
                .unwrap()
                - 0.3)
                .abs()
                < 1e-12
        );
        let all = ms.estimates();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn record_exact_gives_degenerate_estimate() {
        let mut ms = MeasureSet::new(0.95);
        ms.record_exact(names::UNAVAILABILITY, 0.0625);
        let e = ms
            .estimates()
            .into_iter()
            .find(|e| e.name == names::UNAVAILABILITY)
            .unwrap();
        assert_eq!(e.ci.mean, 0.0625);
        assert_eq!(e.ci.half_width, 0.0);
        assert_eq!(e.min, e.max);
    }

    #[test]
    fn record_tree_single_leaf_weight_one_matches_record() {
        let mut plain = MeasureSet::new(0.95);
        let mut split = MeasureSet::new_weighted(0.95);
        for rep in 0..6 {
            let mut out = sample_output();
            out.improper_time_per_app[0] += rep as f64 * 0.1;
            plain.record(&out);
            split.record_tree(&[(1.0, out)], 5.0, &[5.0]);
        }
        let (a, b) = (plain.estimates(), split.estimates());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ci.mean.to_bits(), y.ci.mean.to_bits(), "{}", x.name);
            assert_eq!(
                x.ci.half_width.to_bits(),
                y.ci.half_width.to_bits(),
                "{}",
                x.name
            );
            assert_eq!(x.min, y.min);
            assert_eq!(x.max, y.max);
        }
    }

    #[test]
    fn record_tree_empty_tree_still_counts_for_unconditional_measures() {
        let mut ms = MeasureSet::new_weighted(0.95);
        ms.record_tree(&[], 5.0, &[5.0]);
        ms.record_tree(&[(1.0, sample_output())], 5.0, &[5.0]);
        assert_eq!(ms.estimator().count(names::UNAVAILABILITY), 2);
        assert_eq!(
            ms.estimator()
                .count(&format!("{}@5", names::FRAC_DOMAINS_EXCLUDED)),
            2
        );
        // The dead tree observed no exclusion event.
        assert_eq!(ms.estimator().count(names::FRAC_CORRUPT_AT_EXCLUSION), 1);
        assert_eq!(ms.mean(names::UNAVAILABILITY).unwrap(), 0.05);
    }

    #[test]
    fn record_tree_splits_average_with_weights() {
        let mut ms = MeasureSet::new_weighted(0.95);
        // Two half-weight leaves with byzantine flags true/false: the
        // tree's unreliability total is 0.5 * 0.25 + 0.5 * 0.25 with the
        // sample_output flags (1 of 4 apps byzantine each).
        let out = sample_output();
        ms.record_tree(&[(0.5, out.clone()), (0.5, out)], 5.0, &[5.0]);
        ms.record_tree(&[(1.0, sample_output())], 5.0, &[5.0]);
        assert!((ms.mean(names::UNRELIABILITY).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conditional_measure_absent_when_never_observed() {
        let mut ms = MeasureSet::new(0.95);
        let mut out = sample_output();
        out.exclusion_corrupt_fractions.clear();
        ms.record(&out);
        ms.record(&out);
        assert_eq!(ms.mean(names::FRAC_CORRUPT_AT_EXCLUSION), None);
    }
}

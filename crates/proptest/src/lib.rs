//! Vendored property-testing shim.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real `proptest` crate cannot be resolved. This crate
//! provides the *subset* of proptest's API that the workspace's property
//! tests actually use, with identical spellings, so the test files compile
//! unchanged:
//!
//! * `proptest! { #[test] fn name(pat in strategy, ...) { body } }`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//! * `any::<T>()` for primitive `T`
//! * numeric `Range` strategies (`0.0f64..1e6`, `1u64..20`, ...)
//! * tuple strategies up to arity 7
//! * `prop::collection::vec(strategy, sizes)`
//! * `prop::bool::ANY`
//! * `prop::sample::Index` (deferred collection indexing)
//! * `Strategy::prop_map`, `Just`, unweighted `prop_oneof!`
//!
//! Differences from real proptest: failing inputs are **not shrunk** (the
//! failing case index and seed are printed instead, and `PROPTEST_SEED`
//! replays a specific case), and the default case count is 64 (override
//! with `PROPTEST_CASES`). Generation is fully deterministic per test name,
//! so CI failures reproduce locally.

use std::ops::Range;

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

const GOLDEN: u64 = 0x9e3779b97f4a7c15;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; the tiny bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The shim generates; it does not shrink.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (as in proptest).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}
impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: tests feeding `any::<f64>()` into simulators
        // do not want NaN/inf surprises (proptest's default is similar).
        rng.next_f64() * 2e6 - 1e6
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// A strategy that always produces a clone of one value (proptest's
/// `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice among same-valued strategies; the expansion of
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`, which must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Uniform choice among strategies producing the same value type
/// (proptest's `prop_oneof!`, without the weighted form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound (clamped to at least `min + 1`).
    max_excl: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_excl: r.end.max(r.start + 1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

/// Proptest-style namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a size drawn from `sizes`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            sizes: SizeRange,
        }

        /// `prop::collection::vec(element, sizes)`.
        pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                sizes: sizes.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.sizes.max_excl - self.sizes.min) as u64;
                let len = self.sizes.min
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span) as usize
                    };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies (`prop::sample::Index`).
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// A deferred index into a collection whose length is unknown at
        /// generation time: `any::<Index>()` draws raw randomness, and
        /// [`Index::index`] projects it onto a concrete length later.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(usize);

        impl Index {
            /// Maps this index onto a collection of length `len`
            /// (which must be positive).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64() as usize)
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// The strategy behind `prop::bool::ANY`.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Uniform `true`/`false`.
        pub const ANY: AnyBool = AnyBool;
    }
}

/// Per-block configuration, set via
/// `proptest! { #![proptest_config(ProptestConfig::with_cases(64))] … }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u64,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives the generated test body over many generated cases.
///
/// Deterministic: the case seeds depend only on the test name (and
/// `PROPTEST_SEED`, if set, replays exactly one case with that seed).
pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, f: F) {
    run_cases_config(name, ProptestConfig::default(), f);
}

/// [`run_cases`] with an explicit configuration. The `PROPTEST_CASES`
/// environment variable still overrides the configured case count.
pub fn run_cases_config<F: FnMut(&mut TestRng)>(name: &str, config: ProptestConfig, mut f: F) {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        let mut rng = TestRng::new(seed);
        f(&mut rng);
        return;
    }
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases);
    let base = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    for case in 0..cases {
        let seed = mix64(base.wrapping_add(case.wrapping_mul(GOLDEN)));
        let mut rng = TestRng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest shim: `{name}` failed on case {case} \
                 (replay with PROPTEST_SEED={seed})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`ProptestConfig`] for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases_config(stringify!($name), $cfg, |__shim_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __shim_rng);)*
                    $body
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__shim_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __shim_rng);)*
                    $body
                });
            }
        )*
    };
}

/// Proptest-compatible assertion (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Proptest-compatible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::new(42);
        let mut b = super::TestRng::new(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = super::TestRng::new(7);
        for _ in 0..1000 {
            let x = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let y = (-3i32..4).generate(&mut rng);
            assert!((-3..4).contains(&y));
            let z = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&z));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = super::TestRng::new(9);
        for _ in 0..100 {
            let x = (1u64..u64::MAX).generate(&mut rng);
            assert!((1..u64::MAX).contains(&x));
        }
    }

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = super::TestRng::new(11);
        for _ in 0..200 {
            let v = prop::collection::vec(0.0f64..1.0, 2..9).generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
        let exact = prop::collection::vec(any::<u64>(), 6).generate(&mut rng);
        assert_eq!(exact.len(), 6);
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = super::TestRng::new(13);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        /// The macro itself compiles and runs bodies with assumptions.
        #[test]
        fn macro_smoke(x in 0u64..100, mut v in prop::collection::vec(any::<bool>(), 0..5)) {
            prop_assume!(x != 99);
            v.push(true);
            prop_assert!(x < 99);
            prop_assert_eq!(v.last(), Some(&true));
        }

        /// `prop_oneof!` mixes its arms; `Just` is constant; `Index`
        /// projects into arbitrary lengths.
        #[test]
        fn oneof_just_index_smoke(
            ops in prop::collection::vec(
                prop_oneof![(1u8..4).prop_map(i32::from), Just(-1i32)],
                1..50,
            ),
            idx in any::<prop::sample::Index>(),
        ) {
            for &op in &ops {
                prop_assert!(op == -1 || (1..4).contains(&op));
            }
            prop_assert!(idx.index(ops.len()) < ops.len());
        }
    }
}

//! Property-based tests for the SAN framework.

use itua_san::compose::{ComposedModel, Node, SanTemplate, SharedPlace, SubnetBuilder};
use itua_san::marking::Marking;
use itua_san::model::{SanBuilder, SanError};
use itua_san::simulator::SanSimulator;
use itua_san::statespace::StateSpace;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Bit operations on markings behave like u32 bit operations.
    #[test]
    fn marking_bits_match_integer_bits(bits in prop::collection::vec((0u32..15, any::<bool>()), 0..40)) {
        let mut m = Marking::new(&[0]);
        let p = m.place_ids().next().unwrap();
        let mut reference: i32 = 0;
        for (bit, on) in bits {
            m.set_bit(p, bit, on);
            if on {
                reference |= 1 << bit;
            } else {
                reference &= !(1 << bit);
            }
            prop_assert_eq!(m.get(p), reference);
            prop_assert_eq!(m.bit(p, bit), on);
        }
    }

    /// A tandem chain of places conserves tokens under simulation.
    #[test]
    fn token_conservation(stages in 2usize..8, tokens in 1i32..20, seed in any::<u64>()) {
        let mut b = SanBuilder::new("tandem");
        let places: Vec<_> = (0..stages)
            .map(|i| b.place(format!("p{i}"), if i == 0 { tokens } else { 0 }))
            .collect();
        for i in 0..stages - 1 {
            b.timed_activity(format!("move{i}"), 1.0 + i as f64)
                .input_arc(places[i], 1)
                .output_arc(places[i + 1], 1)
                .build()
                .unwrap();
        }
        let san = b.finish().unwrap();
        let sim = SanSimulator::new(san.clone());

        struct Conserve {
            places: Vec<itua_san::marking::PlaceId>,
            total: i32,
        }
        impl itua_san::simulator::Observer for Conserve {
            fn on_event(&mut self, _t: f64, _a: itua_san::model::ActivityId, m: &Marking) {
                let sum: i32 = self.places.iter().map(|&p| m.get(p)).sum();
                assert_eq!(sum, self.total, "tokens not conserved");
            }
        }
        let mut obs = Conserve { places: places.clone(), total: tokens };
        sim.run(seed, 100.0, &mut [&mut obs]).unwrap();
    }

    /// A scratch reused across replications of random tandem models gives
    /// exactly the trajectory a fresh simulator state would: same event
    /// count, same final marking, for every seed in sequence.
    #[test]
    fn reused_scratch_matches_fresh_state(
        stages in 2usize..6,
        tokens in 1i32..5,
        seeds in prop::collection::vec(any::<u64>(), 1..10),
    ) {
        let mut b = SanBuilder::new("tandem");
        let places: Vec<_> = (0..stages)
            .map(|i| b.place(format!("p{i}"), if i == 0 { tokens } else { 0 }))
            .collect();
        for i in 0..stages {
            b.timed_activity(format!("mv{i}"), 1.0 + i as f64)
                .input_arc(places[i], 1)
                .output_arc(places[(i + 1) % stages], 1)
                .build()
                .unwrap();
        }
        let sim = SanSimulator::new(b.finish().unwrap());

        #[derive(Default, PartialEq, Debug, Clone)]
        struct Trace {
            events: usize,
            finals: Vec<i32>,
        }
        impl itua_san::simulator::Observer for Trace {
            fn on_event(&mut self, _t: f64, _a: itua_san::model::ActivityId, _m: &Marking) {
                self.events += 1;
            }
            fn on_end(&mut self, _t: f64, m: &Marking) {
                self.finals = m.place_ids().map(|p| m.get(p)).collect();
            }
        }

        let mut scratch = sim.scratch();
        for seed in seeds {
            let mut reused = Trace::default();
            sim.run_with_scratch(seed, 20.0, &mut [&mut reused], &mut scratch).unwrap();
            let mut fresh = Trace::default();
            sim.run(seed, 20.0, &mut [&mut fresh]).unwrap();
            prop_assert_eq!(&reused, &fresh, "seed {}", seed);
        }
    }

    /// The incremental enabling index drives stabilization through
    /// exactly the trajectory the historical full marking rescan does:
    /// same events at the same (bit-identical) times, same final marking,
    /// on random SANs whose instantaneous activities cascade into each
    /// other (so the index sees insertions, removals, and chains of
    /// newly-enabled activities mid-stabilization).
    #[test]
    fn incremental_enabled_set_matches_full_rescan(
        stages in 2usize..6,
        tokens in 1i32..4,
        seeds in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let build = || {
            let mut b = SanBuilder::new("cascade");
            let ring: Vec<_> = (0..stages)
                .map(|i| b.place(format!("r{i}"), if i == 0 { tokens } else { 0 }))
                .collect();
            let buf: Vec<_> = (0..stages).map(|i| b.place(format!("b{i}"), 0)).collect();
            for i in 0..stages {
                // Timed firings feed the instantaneous layer.
                b.timed_activity(format!("mv{i}"), 1.0 + i as f64)
                    .input_arc(ring[i], 1)
                    .output_arc(buf[i], 1)
                    .build()
                    .unwrap();
                // Each instantaneous activity either returns the token to
                // the ring or cascades it into the next buffer, enabling
                // the next instantaneous activity mid-stabilization.
                let next_ring = ring[(i + 1) % stages];
                let next_buf = buf[(i + 1) % stages];
                b.instantaneous_activity(format!("route{i}"))
                    .input_arc(buf[i], 1)
                    .case(2.0, move |m| m.add(next_ring, 1))
                    .case(1.0, move |m| m.add(next_buf, 1))
                    .build()
                    .unwrap();
            }
            b.finish().unwrap()
        };

        #[derive(Default, PartialEq, Debug)]
        struct Trace {
            events: Vec<(u64, u32)>,
            finals: Vec<i32>,
        }
        impl itua_san::simulator::Observer for Trace {
            fn on_event(&mut self, t: f64, a: itua_san::model::ActivityId, _m: &Marking) {
                self.events.push((t.to_bits(), a.index() as u32));
            }
            fn on_end(&mut self, _t: f64, m: &Marking) {
                self.finals = m.place_ids().map(|p| m.get(p)).collect();
            }
        }

        let incremental = SanSimulator::new(build());
        let mut full_rescan = SanSimulator::new(build());
        full_rescan.set_full_rescan_stabilize(true);
        let mut inc_scratch = incremental.scratch();
        let mut full_scratch = full_rescan.scratch();
        for seed in seeds {
            let mut inc = Trace::default();
            incremental
                .run_with_scratch(seed, 15.0, &mut [&mut inc], &mut inc_scratch)
                .unwrap();
            let mut full = Trace::default();
            full_rescan
                .run_with_scratch(seed, 15.0, &mut [&mut full], &mut full_scratch)
                .unwrap();
            prop_assert_eq!(&inc, &full, "seed {}", seed);
        }
    }

    /// Replicate counts produce exactly count × places/activities for a
    /// template with no shared state.
    #[test]
    fn rep_multiplies_structure(count in 1usize..20) {
        let tpl: Arc<dyn SanTemplate> = Arc::new(|b: &mut SubnetBuilder<'_>| {
            let p = b.place("p", 1);
            b.timed_activity("t", 1.0).input_arc(p, 1).build()?;
            Ok::<(), SanError>(())
        });
        let model = ComposedModel::new("m", Node::rep("r", count, vec![], Node::atomic("x", tpl)));
        let san = model.flatten().unwrap();
        prop_assert_eq!(san.num_places(), count);
        prop_assert_eq!(san.num_activities(), count);
    }

    /// Shared places are allocated exactly once regardless of replication.
    #[test]
    fn shared_place_unique(count in 1usize..20, init in 0i32..100) {
        let tpl: Arc<dyn SanTemplate> = Arc::new(|b: &mut SubnetBuilder<'_>| {
            let shared = b.place("pool", 0);
            let local = b.place("local", 0);
            b.timed_activity("take", 1.0)
                .input_arc(shared, 1)
                .output_arc(local, 1)
                .build()?;
            Ok::<(), SanError>(())
        });
        let model = ComposedModel::new(
            "m",
            Node::rep("r", count, vec![SharedPlace::new("pool", init)], Node::atomic("x", tpl)),
        );
        let san = model.flatten().unwrap();
        prop_assert_eq!(san.num_places(), count + 1);
        let pool = san.place_id("r/pool").unwrap();
        prop_assert_eq!(san.initial_marking().get(pool), init);
    }

    /// State-space exploration of a bounded token ring finds exactly the
    /// compositions of tokens into places.
    #[test]
    fn state_space_size_of_token_ring(places in 2usize..5, tokens in 1i32..4) {
        let mut b = SanBuilder::new("ring");
        let ps: Vec<_> = (0..places)
            .map(|i| b.place(format!("p{i}"), if i == 0 { tokens } else { 0 }))
            .collect();
        for i in 0..places {
            b.timed_activity(format!("mv{i}"), 1.0)
                .input_arc(ps[i], 1)
                .output_arc(ps[(i + 1) % places], 1)
                .build()
                .unwrap();
        }
        let san = b.finish().unwrap();
        let ss = StateSpace::generate(&san, 100_000).unwrap();
        // Number of weak compositions of `tokens` into `places` parts:
        // C(tokens + places - 1, places - 1).
        let expected = {
            let n = (tokens as usize) + places - 1;
            let k = places - 1;
            (0..k).fold(1usize, |acc, i| acc * (n - i) / (i + 1))
        };
        prop_assert_eq!(ss.num_states(), expected);
    }
}

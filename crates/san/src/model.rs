//! SAN structure: activities, cases, gates, and the builder.
//!
//! A stochastic activity network consists of *places* holding tokens,
//! *activities* (timed or instantaneous) that fire and change the marking,
//! *cases* attached to activities modeling probabilistic outcomes, and
//! *input/output gates* giving predicates and marking-change functions.
//!
//! The [`SanBuilder`] produces an immutable [`San`] that the simulator and
//! state-space generator execute.

use crate::marking::{Marking, PlaceId};
use itua_sim::dist::Distribution;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Shared-ownership predicate over a marking.
pub type Predicate = Arc<dyn Fn(&Marking) -> bool + Send + Sync>;
/// Shared-ownership marking-change function.
pub type Effect = Arc<dyn Fn(&mut Marking) + Send + Sync>;
/// Shared-ownership marking-dependent nonnegative value (rates, weights).
pub type ValueFn = Arc<dyn Fn(&Marking) -> f64 + Send + Sync>;

/// Identifier of an activity within a [`San`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) u32);

impl ActivityId {
    /// Raw index of this activity.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id with the given raw index. The caller is responsible for the
    /// index being in range for the model it is used against.
    pub fn from_index(index: usize) -> ActivityId {
        ActivityId(index as u32)
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// How an activity's firing time is determined.
#[derive(Clone)]
pub enum Timing {
    /// Fires immediately upon enabling (zero time). When several
    /// instantaneous activities are enabled simultaneously, the simulator
    /// picks one uniformly at random — the "equally likely to fire first"
    /// rule the ITUA paper relies on for random placement.
    Instantaneous,
    /// Exponential firing time with a marking-dependent rate. The activity
    /// is resampled whenever its dependencies change (statistically
    /// equivalent by memorylessness, and required for correctness when the
    /// rate is marking-dependent).
    Exponential(ValueFn),
    /// A general marking-independent firing-time distribution, sampled at
    /// enabling and kept while the activity stays enabled (race semantics
    /// with *enabling memory*: disabling discards the sampled time).
    General(Arc<dyn Distribution>),
}

impl fmt::Debug for Timing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Timing::Instantaneous => write!(f, "Instantaneous"),
            Timing::Exponential(_) => write!(f, "Exponential(<rate fn>)"),
            Timing::General(d) => write!(f, "General({d:?})"),
        }
    }
}

/// One probabilistic outcome of an activity.
pub struct Case {
    /// Marking-dependent (unnormalized) weight.
    pub(crate) weight: ValueFn,
    /// Marking changes applied when this case is chosen.
    pub(crate) effects: Vec<Effect>,
}

impl fmt::Debug for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Case({} effects)", self.effects.len())
    }
}

/// An activity of a SAN.
pub struct Activity {
    pub(crate) name: String,
    pub(crate) timing: Timing,
    /// All enabling predicates must hold for the activity to be enabled.
    pub(crate) predicates: Vec<Predicate>,
    /// Input-gate functions, applied at firing before the case effects.
    pub(crate) input_effects: Vec<Effect>,
    /// At least one case.
    pub(crate) cases: Vec<Case>,
    /// Places whose change can affect enabling or rate; used for
    /// incremental re-evaluation.
    pub(crate) reads: Vec<PlaceId>,
    /// Declared input arcs `(place, multiplicity)` — structure the builder
    /// recorded alongside the opaque predicate/effect closures.
    pub(crate) declared_inputs: Vec<(PlaceId, i32)>,
    /// Declared output arcs `(place, multiplicity)`.
    pub(crate) declared_outputs: Vec<(PlaceId, i32)>,
    /// Number of opaque input-gate functions (effects the declared arcs do
    /// not describe).
    pub(crate) gate_effects: usize,
}

impl Activity {
    /// The activity's (hierarchical) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The activity's timing discipline.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Number of cases.
    pub fn num_cases(&self) -> usize {
        self.cases.len()
    }

    /// Whether the activity is enabled in `marking`.
    pub fn enabled(&self, marking: &Marking) -> bool {
        self.predicates.iter().all(|p| p(marking))
    }

    /// Case weights in `marking` (unnormalized).
    pub fn case_weights(&self, marking: &Marking) -> Vec<f64> {
        self.cases.iter().map(|c| (c.weight)(marking)).collect()
    }

    /// Whether the activity fires in zero time.
    pub fn is_instantaneous(&self) -> bool {
        matches!(self.timing, Timing::Instantaneous)
    }

    /// Places the activity's enabling predicates or rate function read.
    pub fn reads(&self) -> &[PlaceId] {
        &self.reads
    }

    /// Declared input arcs `(place, multiplicity)`.
    ///
    /// Together with [`Self::declared_output_arcs`] this is the statically
    /// known part of the activity's structure; effects added through
    /// [`ActivityBuilder::input_gate`] or case effects are opaque closures
    /// and are *not* reflected here (see [`Self::num_gate_effects`]).
    pub fn declared_input_arcs(&self) -> &[(PlaceId, i32)] {
        &self.declared_inputs
    }

    /// Declared output arcs `(place, multiplicity)`.
    pub fn declared_output_arcs(&self) -> &[(PlaceId, i32)] {
        &self.declared_outputs
    }

    /// Number of opaque input-gate marking functions attached to this
    /// activity (marking changes the declared arcs do not describe).
    pub fn num_gate_effects(&self) -> usize {
        self.gate_effects
    }

    /// Number of output-gate effects on `case` (beyond declared arcs).
    ///
    /// # Panics
    ///
    /// Panics if `case` is out of range.
    pub fn num_case_effects(&self, case: usize) -> usize {
        self.cases[case].effects.len()
    }

    /// The exponential rate in `marking`, or `None` for non-exponential
    /// timing.
    pub fn rate(&self, marking: &Marking) -> Option<f64> {
        match &self.timing {
            Timing::Exponential(r) => Some(r(marking)),
            _ => None,
        }
    }

    /// Applies input-gate effects then the chosen case's effects.
    ///
    /// # Panics
    ///
    /// Panics if `case` is out of range.
    pub fn fire(&self, case: usize, marking: &mut Marking) {
        for e in &self.input_effects {
            e(marking);
        }
        for e in &self.cases[case].effects {
            e(marking);
        }
    }
}

impl fmt::Debug for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Activity")
            .field("name", &self.name)
            .field("timing", &self.timing)
            .field("cases", &self.cases.len())
            .field("reads", &self.reads)
            .finish()
    }
}

/// Errors from building or validating a SAN.
#[derive(Debug, Clone, PartialEq)]
pub enum SanError {
    /// Two places were given the same name.
    DuplicatePlace(String),
    /// An activity had no cases — impossible to fire.
    NoCases(String),
    /// A rate or weight was invalid (negative/NaN) at the initial marking.
    BadValue(String),
    /// A referenced name was not found.
    UnknownName(String),
    /// The model has no places or no activities.
    EmptyModel,
    /// Instantaneous activities failed to stabilize (livelock) during
    /// simulation or state-space generation.
    Unstabilized {
        /// Marking at which stabilization failed (canonical values).
        marking: Vec<i32>,
    },
    /// The state space exceeded the configured limit.
    StateSpaceTooLarge(usize),
    /// State-space generation requires exponential/instantaneous timing
    /// only; a general distribution was found on the named activity.
    NonMarkovian(String),
}

impl fmt::Display for SanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanError::DuplicatePlace(n) => write!(f, "duplicate place name '{n}'"),
            SanError::NoCases(n) => write!(f, "activity '{n}' has no cases"),
            SanError::BadValue(n) => write!(f, "invalid rate/weight on '{n}'"),
            SanError::UnknownName(n) => write!(f, "unknown name '{n}'"),
            SanError::EmptyModel => write!(f, "model has no places or no activities"),
            SanError::Unstabilized { .. } => {
                write!(f, "instantaneous activities failed to stabilize")
            }
            SanError::StateSpaceTooLarge(n) => write!(f, "state space exceeds {n} states"),
            SanError::NonMarkovian(n) => {
                write!(
                    f,
                    "activity '{n}' has a general distribution; CTMC export impossible"
                )
            }
        }
    }
}

impl std::error::Error for SanError {}

/// An immutable stochastic activity network.
///
/// Build one with [`SanBuilder`] or by flattening a
/// [`crate::compose::ComposedModel`].
#[derive(Debug)]
pub struct San {
    pub(crate) name: String,
    pub(crate) place_names: Vec<String>,
    pub(crate) place_index: BTreeMap<String, PlaceId>,
    pub(crate) initial: Vec<i32>,
    pub(crate) activities: Vec<Activity>,
    /// For each place, the *timed* activities that read it (enabling or
    /// rate). Split by timing class so the simulator's two incremental
    /// re-evaluation loops (timed reschedule, instantaneous enabling
    /// index) each walk exactly the activities they care about.
    pub(crate) timed_dependents: Vec<Vec<ActivityId>>,
    /// For each place, the *instantaneous* activities that read it.
    pub(crate) inst_dependents: Vec<Vec<ActivityId>>,
}

impl San {
    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of activities.
    pub fn num_activities(&self) -> usize {
        self.activities.len()
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        Marking::new(&self.initial)
    }

    /// Looks up a place by its full (hierarchical) name.
    pub fn place_id(&self, name: &str) -> Option<PlaceId> {
        self.place_index.get(name).copied()
    }

    /// All place ids whose full name satisfies `pred` (e.g. all
    /// `replicas_running` places across submodels).
    pub fn places_matching<'a>(
        &'a self,
        mut pred: impl FnMut(&str) -> bool + 'a,
    ) -> impl Iterator<Item = PlaceId> + 'a {
        self.place_names
            .iter()
            .enumerate()
            .filter(move |(_, n)| pred(n))
            .map(|(i, _)| PlaceId(i as u32))
    }

    /// Name of a place.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.place_names[place.index()]
    }

    /// Initial token count of a place.
    pub fn initial_tokens(&self, place: PlaceId) -> i32 {
        self.initial[place.index()]
    }

    /// Iterates over all place ids in index order.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.place_names.len() as u32).map(PlaceId)
    }

    /// The activity with the given id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn activity(&self, id: ActivityId) -> &Activity {
        &self.activities[id.index()]
    }

    /// Looks up an activity by exact name.
    pub fn activity_id(&self, name: &str) -> Option<ActivityId> {
        self.activities
            .iter()
            .position(|a| a.name == name)
            .map(|i| ActivityId(i as u32))
    }

    /// Iterates over `(id, activity)` pairs.
    pub fn activities(&self) -> impl Iterator<Item = (ActivityId, &Activity)> {
        self.activities
            .iter()
            .enumerate()
            .map(|(i, a)| (ActivityId(i as u32), a))
    }

    /// Timed activities that must be re-examined when `place` changes.
    pub(crate) fn timed_dependents_of(&self, place: u32) -> &[ActivityId] {
        &self.timed_dependents[place as usize]
    }

    /// Instantaneous activities whose enabling may change when `place`
    /// changes.
    pub(crate) fn inst_dependents_of(&self, place: u32) -> &[ActivityId] {
        &self.inst_dependents[place as usize]
    }

    /// Collects the instantaneous activities enabled in `marking` into
    /// `out` (cleared first), in ascending activity-id order.
    ///
    /// This is the *reference* enumeration both execution paths share:
    /// the simulator rebuilds (and, in debug builds, cross-checks) its
    /// incremental enabled-instantaneous set against it, and the
    /// state-space generator's vanishing-marking resolution uses it
    /// directly. The ascending-id order is load-bearing — the simulator
    /// draws `enabled[rng.usize_below(len)]`, so any reordering would
    /// change which activity a given RNG draw selects.
    pub(crate) fn enabled_instantaneous_into(&self, marking: &Marking, out: &mut Vec<ActivityId>) {
        out.clear();
        for (id, a) in self.activities() {
            if a.is_instantaneous() && a.enabled(marking) {
                out.push(id);
            }
        }
    }
}

/// Builder for atomic SANs.
///
/// # Example
///
/// ```
/// use itua_san::model::SanBuilder;
///
/// # fn main() -> Result<(), itua_san::model::SanError> {
/// let mut b = SanBuilder::new("demo");
/// let tokens = b.place("tokens", 3);
/// let done = b.place("done", 0);
/// b.timed_activity("consume", 1.0)
///     .input_arc(tokens, 1)
///     .output_arc(done, 1)
///     .build()?;
/// let san = b.finish()?;
/// assert_eq!(san.num_places(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SanBuilder {
    name: String,
    place_names: Vec<String>,
    place_index: BTreeMap<String, PlaceId>,
    initial: Vec<i32>,
    activities: Vec<Activity>,
}

impl SanBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        SanBuilder {
            name: name.into(),
            place_names: Vec::new(),
            place_index: BTreeMap::new(),
            initial: Vec::new(),
            activities: Vec::new(),
        }
    }

    /// Adds a place with an initial marking, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (duplicate places are almost
    /// always a composition bug) or `initial < 0`.
    pub fn place(&mut self, name: impl Into<String>, initial: i32) -> PlaceId {
        let name = name.into();
        assert!(
            !self.place_index.contains_key(&name),
            "duplicate place name '{name}'"
        );
        assert!(initial >= 0, "negative initial marking for '{name}'");
        let id = PlaceId(self.place_names.len() as u32);
        self.place_index.insert(name.clone(), id);
        self.place_names.push(name);
        self.initial.push(initial);
        id
    }

    /// Returns the id of an existing place by name.
    pub fn existing_place(&self, name: &str) -> Option<PlaceId> {
        self.place_index.get(name).copied()
    }

    /// Starts a timed activity with a constant exponential rate.
    pub fn timed_activity(&mut self, name: impl Into<String>, rate: f64) -> ActivityBuilder<'_> {
        assert!(
            rate.is_finite() && rate > 0.0,
            "activity rate must be positive"
        );
        self.activity(name, Timing::Exponential(Arc::new(move |_| rate)))
    }

    /// Starts a timed activity with a marking-dependent exponential rate.
    ///
    /// `reads` must list every place the rate function looks at.
    pub fn timed_activity_fn(
        &mut self,
        name: impl Into<String>,
        rate: ValueFn,
        reads: &[PlaceId],
    ) -> ActivityBuilder<'_> {
        let mut ab = self.activity(name, Timing::Exponential(rate));
        ab.extra_reads.extend_from_slice(reads);
        ab
    }

    /// Starts a timed activity with a general firing-time distribution.
    pub fn general_activity(
        &mut self,
        name: impl Into<String>,
        dist: Arc<dyn Distribution>,
    ) -> ActivityBuilder<'_> {
        self.activity(name, Timing::General(dist))
    }

    /// Starts an instantaneous activity.
    pub fn instantaneous_activity(&mut self, name: impl Into<String>) -> ActivityBuilder<'_> {
        self.activity(name, Timing::Instantaneous)
    }

    fn activity(&mut self, name: impl Into<String>, timing: Timing) -> ActivityBuilder<'_> {
        ActivityBuilder {
            builder: self,
            name: name.into(),
            timing,
            predicates: Vec::new(),
            input_effects: Vec::new(),
            cases: Vec::new(),
            extra_reads: Vec::new(),
            declared_inputs: Vec::new(),
            declared_outputs: Vec::new(),
            gate_effects: 0,
        }
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::EmptyModel`] if there are no places or no
    /// activities.
    pub fn finish(self) -> Result<Arc<San>, SanError> {
        if self.place_names.is_empty() || self.activities.is_empty() {
            return Err(SanError::EmptyModel);
        }
        let mut timed_dependents = vec![Vec::new(); self.place_names.len()];
        let mut inst_dependents = vec![Vec::new(); self.place_names.len()];
        for (i, a) in self.activities.iter().enumerate() {
            let by_timing = if a.is_instantaneous() {
                &mut inst_dependents
            } else {
                &mut timed_dependents
            };
            for p in &a.reads {
                let list: &mut Vec<ActivityId> = &mut by_timing[p.index()];
                if !list.contains(&ActivityId(i as u32)) {
                    list.push(ActivityId(i as u32));
                }
            }
        }
        Ok(Arc::new(San {
            name: self.name,
            place_names: self.place_names,
            place_index: self.place_index,
            initial: self.initial,
            activities: self.activities,
            timed_dependents,
            inst_dependents,
        }))
    }
}

/// Fluent builder for one activity. Obtained from [`SanBuilder`].
pub struct ActivityBuilder<'a> {
    builder: &'a mut SanBuilder,
    name: String,
    timing: Timing,
    predicates: Vec<Predicate>,
    input_effects: Vec<Effect>,
    cases: Vec<Case>,
    extra_reads: Vec<PlaceId>,
    declared_inputs: Vec<(PlaceId, i32)>,
    declared_outputs: Vec<(PlaceId, i32)>,
    gate_effects: usize,
}

impl<'a> ActivityBuilder<'a> {
    /// Standard input arc: requires `k` tokens in `place` and removes them
    /// at firing.
    pub fn input_arc(mut self, place: PlaceId, k: i32) -> Self {
        assert!(k > 0, "input arc multiplicity must be positive");
        self.predicates.push(Arc::new(move |m| m.get(place) >= k));
        self.input_effects.push(Arc::new(move |m| m.add(place, -k)));
        self.extra_reads.push(place);
        self.declared_inputs.push((place, k));
        self
    }

    /// Standard output arc: deposits `k` tokens in `place` at firing (all
    /// cases). Recorded as a default-case effect if no explicit cases are
    /// declared; otherwise applied before case selection is not possible,
    /// so it is added to every case declared so far and every later case.
    pub fn output_arc(mut self, place: PlaceId, k: i32) -> Self {
        assert!(k > 0, "output arc multiplicity must be positive");
        let eff: Effect = Arc::new(move |m| m.add(place, k));
        // Model output arcs as input-side effects applied at firing before
        // the case effect; SAN semantics order is gate-function then case,
        // and token deposits commute with each other.
        self.input_effects.push(eff);
        self.declared_outputs.push((place, k));
        self
    }

    /// Input gate: enabling predicate plus marking function applied at
    /// firing. `reads` must list every place the predicate examines.
    pub fn input_gate(
        mut self,
        reads: &[PlaceId],
        predicate: impl Fn(&Marking) -> bool + Send + Sync + 'static,
        function: impl Fn(&mut Marking) + Send + Sync + 'static,
    ) -> Self {
        self.predicates.push(Arc::new(predicate));
        self.input_effects.push(Arc::new(function));
        self.extra_reads.extend_from_slice(reads);
        self.gate_effects += 1;
        self
    }

    /// Pure enabling predicate (an input gate with identity function).
    pub fn predicate(
        mut self,
        reads: &[PlaceId],
        predicate: impl Fn(&Marking) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.predicates.push(Arc::new(predicate));
        self.extra_reads.extend_from_slice(reads);
        self
    }

    /// Adds a case with constant weight and an output-gate function.
    pub fn case(
        mut self,
        weight: f64,
        effect: impl Fn(&mut Marking) + Send + Sync + 'static,
    ) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "case weight must be nonnegative"
        );
        self.cases.push(Case {
            weight: Arc::new(move |_| weight),
            effects: vec![Arc::new(effect)],
        });
        self
    }

    /// Adds a case with a marking-dependent weight.
    pub fn case_fn(
        mut self,
        weight: ValueFn,
        effect: impl Fn(&mut Marking) + Send + Sync + 'static,
    ) -> Self {
        self.cases.push(Case {
            weight,
            effects: vec![Arc::new(effect)],
        });
        self
    }

    /// Finishes the activity, registering it with the model builder.
    ///
    /// An activity declared without explicit cases gets a single
    /// unit-weight case with no extra effect (its only marking changes come
    /// from arcs and gates).
    ///
    /// # Errors
    ///
    /// Returns [`SanError::NoCases`] if the activity could never fire
    /// meaningfully (no cases, no arcs, no gates).
    pub fn build(self) -> Result<ActivityId, SanError> {
        let mut cases = self.cases;
        if cases.is_empty() {
            if self.input_effects.is_empty() {
                return Err(SanError::NoCases(self.name));
            }
            cases.push(Case {
                weight: Arc::new(|_| 1.0),
                effects: vec![],
            });
        }
        let mut reads = self.extra_reads;
        reads.sort_unstable();
        reads.dedup();
        let id = ActivityId(self.builder.activities.len() as u32);
        self.builder.activities.push(Activity {
            name: self.name,
            timing: self.timing,
            predicates: self.predicates,
            input_effects: self.input_effects,
            cases,
            reads,
            declared_inputs: self.declared_inputs,
            declared_outputs: self.declared_outputs,
            gate_effects: self.gate_effects,
        });
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_model() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 2);
        let q = b.place("q", 0);
        let a = b
            .timed_activity("move", 1.0)
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        assert_eq!(san.num_places(), 2);
        assert_eq!(san.num_activities(), 1);
        assert_eq!(san.place_id("p"), Some(p));
        assert_eq!(san.place_id("nope"), None);
        assert_eq!(san.activity_id("move"), Some(a));
        let act = san.activity(a);
        assert!(act.enabled(&san.initial_marking()));

        let mut m = san.initial_marking();
        act.fire(0, &mut m);
        assert_eq!(m.get(p), 1);
        assert_eq!(m.get(q), 1);
    }

    #[test]
    fn enabling_respects_arcs_and_predicates() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 0);
        let g = b.place("guard", 0);
        let a = b
            .timed_activity("a", 1.0)
            .input_arc(p, 1)
            .predicate(&[g], move |m| m.get(g) == 0)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let mut m = san.initial_marking();
        assert!(!san.activity(a).enabled(&m)); // no token in p
        m.set(p, 1);
        assert!(san.activity(a).enabled(&m));
        m.set(g, 1);
        assert!(!san.activity(a).enabled(&m)); // guard blocks
    }

    #[test]
    fn cases_and_weights() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 1);
        let hit = b.place("hit", 0);
        let miss = b.place("miss", 0);
        let a = b
            .timed_activity("detect", 1.0)
            .input_arc(p, 1)
            .case(0.8, move |m| m.add(hit, 1))
            .case(0.2, move |m| m.add(miss, 1))
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let m = san.initial_marking();
        let w = san.activity(a).case_weights(&m);
        assert_eq!(w, vec![0.8, 0.2]);

        let mut m2 = san.initial_marking();
        san.activity(a).fire(1, &mut m2);
        assert_eq!(m2.get(miss), 1);
        assert_eq!(m2.get(hit), 0);
        assert_eq!(m2.get(p), 0);
    }

    #[test]
    fn dependents_index() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 1);
        let q = b.place("q", 1);
        let a0 = b.timed_activity("a0", 1.0).input_arc(p, 1).build().unwrap();
        let a1 = b.timed_activity("a1", 1.0).input_arc(q, 1).build().unwrap();
        let a2 = b
            .timed_activity("a2", 1.0)
            .input_arc(p, 1)
            .input_arc(q, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        assert_eq!(san.timed_dependents_of(p.0), &[a0, a2]);
        assert_eq!(san.timed_dependents_of(q.0), &[a1, a2]);
        assert!(san.inst_dependents_of(p.0).is_empty());
    }

    #[test]
    fn empty_model_rejected() {
        let b = SanBuilder::new("empty");
        assert_eq!(b.finish().unwrap_err(), SanError::EmptyModel);
    }

    #[test]
    fn activity_without_cases_or_effects_rejected() {
        let mut b = SanBuilder::new("m");
        let _p = b.place("p", 0);
        let err = b.timed_activity("noop", 1.0).build().unwrap_err();
        assert!(matches!(err, SanError::NoCases(_)));
    }

    #[test]
    #[should_panic]
    fn duplicate_place_panics() {
        let mut b = SanBuilder::new("m");
        b.place("p", 0);
        b.place("p", 1);
    }

    #[test]
    fn places_matching_filters_by_name() {
        let mut b = SanBuilder::new("m");
        let _a = b.place("app0/running", 1);
        let _b2 = b.place("app1/running", 1);
        let _c = b.place("other", 0);
        b.timed_activity("t", 1.0).input_arc(_c, 1).build().unwrap();
        let san = b.finish().unwrap();
        let found: Vec<_> = san.places_matching(|n| n.ends_with("/running")).collect();
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn introspection_exposes_declared_structure() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 2);
        let q = b.place("q", 0);
        let g = b.place("g", 1);
        let a = b
            .timed_activity("move", 1.5)
            .input_arc(p, 2)
            .output_arc(q, 1)
            .input_gate(&[g], move |m| m.get(g) > 0, move |m| m.set(g, 0))
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let act = san.activity(a);
        assert_eq!(act.declared_input_arcs(), &[(p, 2)]);
        assert_eq!(act.declared_output_arcs(), &[(q, 1)]);
        assert_eq!(act.num_gate_effects(), 1);
        assert!(!act.is_instantaneous());
        assert_eq!(act.rate(&san.initial_marking()), Some(1.5));
        assert!(act.reads().contains(&p));
        assert!(act.reads().contains(&g));
        assert_eq!(san.initial_tokens(p), 2);
        assert_eq!(san.place_ids().count(), 3);
    }

    #[test]
    fn marking_dependent_rate_reads() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 1);
        let lvl = b.place("level", 0);
        let a = b
            .timed_activity_fn("attack", Arc::new(move |m| 1.0 + m.get(lvl) as f64), &[lvl])
            .input_arc(p, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        // lvl is in the reads, so dependents of lvl include the activity.
        assert!(san.timed_dependents_of(lvl.0).contains(&a));
        match san.activity(a).timing() {
            Timing::Exponential(rate) => {
                let mut m = san.initial_marking();
                assert_eq!(rate(&m), 1.0);
                m.set(lvl, 3);
                assert_eq!(rate(&m), 4.0);
            }
            _ => panic!("wrong timing"),
        }
    }
}

//! Exhaustive state-space generation: SAN → CTMC.
//!
//! Möbius "can solve SANs analytically by converting them into equivalent
//! continuous time Markov chains". This module performs that conversion for
//! SANs whose timed activities are all exponential (rates may be
//! marking-dependent). Instantaneous activities are handled by on-the-fly
//! elimination of *vanishing markings*: a firing that lands on a marking
//! with enabled instantaneous activities is followed through the
//! instantaneous firings (uniform choice among enabled activities, case
//! weights within an activity) until only *tangible* markings remain,
//! accumulating path probabilities.

use crate::marking::Marking;
use crate::model::{ActivityId, San, SanError, Timing};
use crate::sym::SymmetrySpec;
use itua_markov::ctmc::{Ctmc, CtmcError};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Maximum depth of instantaneous-firing chains during vanishing-marking
/// elimination; beyond this the model is declared unstabilized.
const MAX_VANISHING_DEPTH: usize = 10_000;

/// Work-item budget for one vanishing-marking resolution, scaled from the
/// caller's `max_states` bound. A wide instantaneous cascade (many
/// concurrently enabled zero-time activities) branches into a tree of
/// firing orders that can explode combinatorially before a single
/// tangible marking is interned — exceeding this budget is reported as
/// state-space explosion rather than being allowed to exhaust memory.
/// The floor keeps legitimate deep-but-narrow chains (and the livelock
/// detector, which needs `MAX_VANISHING_DEPTH` pops) unaffected by small
/// `max_states` values.
fn vanishing_budget(max_states: usize) -> usize {
    max_states.saturating_mul(10).max(2 * MAX_VANISHING_DEPTH)
}

/// The reachable tangible state space of a SAN, with transition rates.
#[derive(Debug, Clone)]
pub struct StateSpace {
    markings: Vec<Marking>,
    /// `(from, to, rate)` between tangible states; no self-loops.
    transitions: Vec<(usize, usize, f64)>,
    /// Distribution over tangible states equivalent to the (possibly
    /// vanishing) initial marking.
    initial: Vec<(usize, f64)>,
    /// Per-state orbit sizes when generated lumped
    /// ([`StateSpace::generate_lumped`]): state `i` represents
    /// `orbit_sizes[i]` markings of the unreduced chain. `None` for the
    /// plain generator.
    orbit_sizes: Option<Vec<u128>>,
}

impl StateSpace {
    /// Explores the reachable state space of `san`.
    ///
    /// # Errors
    ///
    /// * [`SanError::NonMarkovian`] if any timed activity has a general
    ///   (non-exponential) distribution.
    /// * [`SanError::StateSpaceTooLarge`] if more than `max_states`
    ///   tangible markings are reachable, or a single vanishing-marking
    ///   resolution branches past its expansion budget
    ///   (see [`vanishing_budget`]) — both are forms of state-space
    ///   explosion, and both fail fast instead of exhausting memory.
    /// * [`SanError::Unstabilized`] if instantaneous activities livelock.
    pub fn generate(san: &Arc<San>, max_states: usize) -> Result<Self, SanError> {
        for (_, act) in san.activities() {
            if let Timing::General(_) = act.timing() {
                return Err(SanError::NonMarkovian(act.name().to_owned()));
            }
        }

        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut markings: Vec<Marking> = Vec::new();
        let mut transitions: Vec<(usize, usize, f64)> = Vec::new();
        let mut frontier: VecDeque<usize> = VecDeque::new();

        let intern = |m: Marking,
                      markings: &mut Vec<Marking>,
                      index: &mut HashMap<Marking, usize>,
                      frontier: &mut VecDeque<usize>|
         -> Result<usize, SanError> {
            if let Some(&i) = index.get(&m) {
                return Ok(i);
            }
            if markings.len() >= max_states {
                return Err(SanError::StateSpaceTooLarge(max_states));
            }
            let i = markings.len();
            index.insert(m.clone(), i);
            markings.push(m);
            frontier.push_back(i);
            Ok(i)
        };

        // Resolve the initial marking.
        let init_marking = san.initial_marking().canonical();
        let resolved = resolve_vanishing(san, &init_marking, max_states)?;
        let mut initial = Vec::new();
        for (m, p) in resolved {
            let i = intern(m, &mut markings, &mut index, &mut frontier)?;
            initial.push((i, p));
        }
        // Merge duplicate initial entries.
        initial.sort_by_key(|&(i, _)| i);
        initial.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });

        while let Some(s) = frontier.pop_front() {
            let marking = markings[s].clone();
            for (_, act) in san.activities() {
                let rate_fn = match act.timing() {
                    Timing::Exponential(r) => r,
                    Timing::Instantaneous => continue,
                    Timing::General(_) => unreachable!("checked above"),
                };
                if !act.enabled(&marking) {
                    continue;
                }
                let rate = rate_fn(&marking);
                if !(rate.is_finite() && rate >= 0.0) {
                    return Err(SanError::BadValue(act.name().to_owned()));
                }
                if rate == 0.0 {
                    continue;
                }
                let weights = act.case_weights(&marking);
                let total: f64 = weights.iter().sum();
                if !(total.is_finite() && total > 0.0) {
                    return Err(SanError::BadValue(act.name().to_owned()));
                }
                for (case, &w) in weights.iter().enumerate() {
                    if w <= 0.0 {
                        continue;
                    }
                    let mut next = marking.clone();
                    act.fire(case, &mut next);
                    let next = next.canonical();
                    for (tangible, p) in resolve_vanishing(san, &next, max_states)? {
                        let t = intern(tangible, &mut markings, &mut index, &mut frontier)?;
                        if t != s {
                            transitions.push((s, t, rate * (w / total) * p));
                        }
                    }
                }
            }
        }

        Ok(StateSpace {
            markings,
            transitions,
            initial,
            orbit_sizes: None,
        })
    }

    /// Explores the reachable tangible state space *in canonical form*
    /// under `sym`, producing the exactly-lumped CTMC: every state is the
    /// lexicographically least member of its orbit, and summing a
    /// representative's outgoing rates by target orbit (done when the
    /// transition list is assembled into a [`Ctmc`]) yields the quotient
    /// chain. Exact lumpability holds because a [`SymmetrySpec`] asserts
    /// the group action is a model automorphism; any orbit-invariant
    /// reward is then solved exactly on the quotient.
    ///
    /// [`StateSpace::orbit_sizes`] reports how many markings of the
    /// unreduced chain each representative stands for, so
    /// `Σ orbit_sizes = full tangible state count` — the cross-check the
    /// analyzer's unreduced explorer provides on micro configurations.
    ///
    /// # Errors
    ///
    /// The same family as [`StateSpace::generate`], with `max_states`
    /// bounding the number of *orbits* interned.
    pub fn generate_lumped(
        san: &Arc<San>,
        sym: &SymmetrySpec,
        max_states: usize,
    ) -> Result<Self, SanError> {
        for (_, act) in san.activities() {
            if let Timing::General(_) = act.timing() {
                return Err(SanError::NonMarkovian(act.name().to_owned()));
            }
        }

        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut markings: Vec<Marking> = Vec::new();
        let mut orbit_sizes: Vec<u128> = Vec::new();
        let mut transitions: Vec<(usize, usize, f64)> = Vec::new();
        let mut frontier: VecDeque<usize> = VecDeque::new();

        // Canonicalize *before* interning: two tangible successors in the
        // same orbit merge into one state, and their probabilities/rates
        // sum when the transition list is assembled into a CTMC.
        let intern = |m: Marking,
                      markings: &mut Vec<Marking>,
                      orbit_sizes: &mut Vec<u128>,
                      index: &mut HashMap<Marking, usize>,
                      frontier: &mut VecDeque<usize>|
         -> Result<usize, SanError> {
            let mut vals = m.values().to_vec();
            sym.canonicalize(&mut vals);
            let m = Marking::new(&vals);
            if let Some(&i) = index.get(&m) {
                return Ok(i);
            }
            if markings.len() >= max_states {
                return Err(SanError::StateSpaceTooLarge(max_states));
            }
            let i = markings.len();
            orbit_sizes.push(sym.orbit_size(&vals));
            index.insert(m.clone(), i);
            markings.push(m);
            frontier.push_back(i);
            Ok(i)
        };

        let init_marking = san.initial_marking().canonical();
        let resolved = resolve_vanishing(san, &init_marking, max_states)?;
        let mut initial = Vec::new();
        for (m, p) in resolved {
            let i = intern(
                m,
                &mut markings,
                &mut orbit_sizes,
                &mut index,
                &mut frontier,
            )?;
            initial.push((i, p));
        }
        initial.sort_by_key(|&(i, _)| i);
        initial.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });

        while let Some(s) = frontier.pop_front() {
            let marking = markings[s].clone();
            for (_, act) in san.activities() {
                let rate_fn = match act.timing() {
                    Timing::Exponential(r) => r,
                    Timing::Instantaneous => continue,
                    Timing::General(_) => unreachable!("checked above"),
                };
                if !act.enabled(&marking) {
                    continue;
                }
                let rate = rate_fn(&marking);
                if !(rate.is_finite() && rate >= 0.0) {
                    return Err(SanError::BadValue(act.name().to_owned()));
                }
                if rate == 0.0 {
                    continue;
                }
                let weights = act.case_weights(&marking);
                let total: f64 = weights.iter().sum();
                if !(total.is_finite() && total > 0.0) {
                    return Err(SanError::BadValue(act.name().to_owned()));
                }
                for (case, &w) in weights.iter().enumerate() {
                    if w <= 0.0 {
                        continue;
                    }
                    let mut next = marking.clone();
                    act.fire(case, &mut next);
                    let next = next.canonical();
                    for (tangible, p) in resolve_vanishing(san, &next, max_states)? {
                        let t = intern(
                            tangible,
                            &mut markings,
                            &mut orbit_sizes,
                            &mut index,
                            &mut frontier,
                        )?;
                        // A transition into the representative's own orbit
                        // is a self-loop of the quotient chain — a no-op
                        // for CTMC dynamics, dropped like `generate` drops
                        // literal self-loops.
                        if t != s {
                            transitions.push((s, t, rate * (w / total) * p));
                        }
                    }
                }
            }
        }

        Ok(StateSpace {
            markings,
            transitions,
            initial,
            orbit_sizes: Some(orbit_sizes),
        })
    }

    /// Number of tangible states.
    pub fn num_states(&self) -> usize {
        self.markings.len()
    }

    /// Per-state orbit sizes for a lumped space
    /// ([`StateSpace::generate_lumped`]); `None` for the plain generator.
    pub fn orbit_sizes(&self) -> Option<&[u128]> {
        self.orbit_sizes.as_deref()
    }

    /// For a lumped space, the tangible state count of the *unreduced*
    /// chain (`Σ orbit_sizes`, saturating); `None` for the plain
    /// generator (where it would equal [`StateSpace::num_states`]).
    pub fn full_state_total(&self) -> Option<u128> {
        self.orbit_sizes
            .as_ref()
            .map(|o| o.iter().fold(0u128, |acc, &x| acc.saturating_add(x)))
    }

    /// The marking of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn marking(&self, i: usize) -> &Marking {
        &self.markings[i]
    }

    /// The `(from, to, rate)` transitions.
    pub fn transitions(&self) -> &[(usize, usize, f64)] {
        &self.transitions
    }

    /// Initial distribution as a dense probability vector.
    pub fn initial_distribution(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.markings.len()];
        for &(i, p) in &self.initial {
            v[i] += p;
        }
        v
    }

    /// Builds the equivalent CTMC.
    ///
    /// # Errors
    ///
    /// Propagates matrix construction failures.
    pub fn to_ctmc(&self) -> Result<Ctmc, CtmcError> {
        Ctmc::from_rates(self.markings.len(), &self.transitions)
    }

    /// Evaluates `f` on every state, producing a reward vector aligned with
    /// the CTMC's state indices.
    pub fn reward_vector(&self, f: impl FnMut(&Marking) -> f64) -> Vec<f64> {
        self.markings.iter().map(f).collect()
    }

    /// Builds a CTMC in which every state satisfying `is_absorbing` is made
    /// absorbing (its outgoing transitions dropped), plus the per-state
    /// absorbing flags.
    ///
    /// Summing the transient mass over the flagged states then gives
    /// `P[the predicate has held at some point by time t]` — the analytic
    /// counterpart of a sticky ever-true reward variable such as
    /// per-application unreliability.
    ///
    /// # Errors
    ///
    /// Propagates matrix construction failures.
    pub fn absorbing_ctmc(
        &self,
        is_absorbing: impl FnMut(&Marking) -> bool,
    ) -> Result<(Ctmc, Vec<bool>), CtmcError> {
        let flags: Vec<bool> = self.markings.iter().map(is_absorbing).collect();
        let kept: Vec<(usize, usize, f64)> = self
            .transitions
            .iter()
            .copied()
            .filter(|&(from, _, _)| !flags[from])
            .collect();
        Ok((Ctmc::from_rates(self.markings.len(), &kept)?, flags))
    }

    /// Expected value of `f` under a distribution over states (e.g. a
    /// transient solution): `Σ_s p[s]·f(marking(s))`.
    ///
    /// # Panics
    ///
    /// Panics if `distribution` does not have one entry per state.
    pub fn expected_reward(&self, distribution: &[f64], mut f: impl FnMut(&Marking) -> f64) -> f64 {
        assert_eq!(
            distribution.len(),
            self.markings.len(),
            "distribution length must match the state count"
        );
        self.markings
            .iter()
            .zip(distribution)
            .map(|(m, &p)| p * f(m))
            .sum()
    }
}

/// Distributes a marking over its tangible successors: follows enabled
/// instantaneous activities (uniform among activities, weight-proportional
/// among cases) until no instantaneous activity is enabled.
fn resolve_vanishing(
    san: &San,
    marking: &Marking,
    max_states: usize,
) -> Result<Vec<(Marking, f64)>, SanError> {
    let budget = vanishing_budget(max_states);
    let mut pops = 0usize;
    let mut result: Vec<(Marking, f64)> = Vec::new();
    // Reused across pops; the same "enabled instantaneous activities of a
    // marking" definition the simulator's enabling index maintains.
    let mut enabled: Vec<ActivityId> = Vec::new();
    // Work queue of (marking, probability, depth).
    let mut work: Vec<(Marking, f64, usize)> = vec![(marking.clone(), 1.0, 0)];
    while let Some((m, p, depth)) = work.pop() {
        pops += 1;
        if pops > budget {
            return Err(SanError::StateSpaceTooLarge(max_states));
        }
        if depth > MAX_VANISHING_DEPTH {
            return Err(SanError::Unstabilized {
                marking: m.values().to_vec(),
            });
        }
        san.enabled_instantaneous_into(&m, &mut enabled);
        if enabled.is_empty() {
            result.push((m, p));
            continue;
        }
        let share = p / enabled.len() as f64;
        for &id in &enabled {
            let act = san.activity(id);
            let weights = act.case_weights(&m);
            let total: f64 = weights.iter().sum();
            if !(total.is_finite() && total > 0.0) {
                return Err(SanError::BadValue(act.name().to_owned()));
            }
            for (case, &w) in weights.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                let mut next = m.clone();
                act.fire(case, &mut next);
                work.push((next.canonical(), share * (w / total), depth + 1));
            }
        }
    }
    // Merge identical tangible markings, keeping first-encounter order:
    // a randomly-seeded HashMap iteration here would scramble state
    // numbering (and thus floating-point summation order) from run to
    // run, breaking the byte-identical result stores the analytic
    // backend promises.
    let mut index: HashMap<Marking, usize> = HashMap::new();
    let mut merged: Vec<(Marking, f64)> = Vec::new();
    for (m, p) in result {
        match index.get(&m) {
            Some(&i) => merged[i].1 += p,
            None => {
                index.insert(m.clone(), merged.len());
                merged.push((m, p));
            }
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SanBuilder;
    use std::sync::Arc as StdArc;

    fn repairable(fail: f64, fix: f64) -> StdArc<San> {
        let mut b = SanBuilder::new("m");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", fail)
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("fix", fix)
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn two_state_space() {
        let san = repairable(1.0, 9.0);
        let ss = StateSpace::generate(&san, 100).unwrap();
        assert_eq!(ss.num_states(), 2);
        assert_eq!(ss.transitions().len(), 2);
        let ctmc = ss.to_ctmc().unwrap();
        let pi = ctmc.steady_state(1e-12, 100_000).unwrap();
        let down = san.place_id("down").unwrap();
        let unavail: f64 = (0..ss.num_states())
            .map(|s| pi[s] * ss.marking(s).get(down) as f64)
            .sum();
        assert!((unavail - 0.1).abs() < 1e-8);
    }

    #[test]
    fn initial_distribution_is_point_mass_for_tangible_start() {
        let san = repairable(1.0, 1.0);
        let ss = StateSpace::generate(&san, 100).unwrap();
        let d = ss.initial_distribution();
        assert_eq!(d.iter().filter(|&&p| p > 0.0).count(), 1);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vanishing_initial_marking_is_resolved() {
        // Instantaneous branch from the start: token goes to a or b with
        // probability 0.3 / 0.7, then a timed sink keeps the model alive.
        let mut bld = SanBuilder::new("v");
        let start = bld.place("start", 1);
        let a = bld.place("a", 0);
        let b = bld.place("b", 0);
        let sink = bld.place("sink", 0);
        bld.instantaneous_activity("branch")
            .input_arc(start, 1)
            .case(0.3, move |m| m.add(a, 1))
            .case(0.7, move |m| m.add(b, 1))
            .build()
            .unwrap();
        bld.timed_activity("tick", 1.0)
            .input_arc(a, 1)
            .output_arc(sink, 1)
            .build()
            .unwrap();
        let san = bld.finish().unwrap();
        let ss = StateSpace::generate(&san, 100).unwrap();
        let d = ss.initial_distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Two tangible initial states with probabilities 0.3 / 0.7.
        let mut probs: Vec<f64> = d.iter().copied().filter(|&p| p > 0.0).collect();
        probs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(probs.len(), 2);
        assert!((probs[0] - 0.3).abs() < 1e-12);
        assert!((probs[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn case_weights_split_rates() {
        // One timed activity with two cases 80/20 leading to different
        // states: the CTMC must have rates 0.8λ and 0.2λ.
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 1);
        let hit = b.place("hit", 0);
        let miss = b.place("miss", 0);
        b.timed_activity("detect", 2.0)
            .input_arc(p, 1)
            .case(0.8, move |m| m.add(hit, 1))
            .case(0.2, move |m| m.add(miss, 1))
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let ss = StateSpace::generate(&san, 100).unwrap();
        assert_eq!(ss.num_states(), 3);
        let mut rates: Vec<f64> = ss.transitions().iter().map(|&(_, _, r)| r).collect();
        rates.sort_by(|a, c| a.partial_cmp(c).unwrap());
        assert!((rates[0] - 0.4).abs() < 1e-12);
        assert!((rates[1] - 1.6).abs() < 1e-12);
    }

    #[test]
    fn marking_dependent_rates_expand_correctly() {
        // Birth-death with rate depending on population.
        let mut b = SanBuilder::new("m");
        let n = b.place("n", 0);
        let nn = n;
        b.timed_activity_fn("birth", StdArc::new(move |m| 1.0 + m.get(nn) as f64), &[n])
            .predicate(&[n], move |m| m.get(n) < 3)
            .output_arc(n, 1)
            .build()
            .unwrap();
        b.timed_activity("death", 1.0)
            .input_arc(n, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let ss = StateSpace::generate(&san, 100).unwrap();
        assert_eq!(ss.num_states(), 4);
        // Find the 2→3 birth transition; its rate must be 1 + 2 = 3.
        let np = san.place_id("n").unwrap();
        let idx_of = |v: i32| {
            (0..ss.num_states())
                .find(|&s| ss.marking(s).get(np) == v)
                .unwrap()
        };
        let (s2, s3) = (idx_of(2), idx_of(3));
        let rate = ss
            .transitions()
            .iter()
            .find(|&&(f, t, _)| f == s2 && t == s3)
            .map(|&(_, _, r)| r)
            .unwrap();
        assert!((rate - 3.0).abs() < 1e-12);
    }

    #[test]
    fn state_space_limit_enforced() {
        // Unbounded birth process.
        let mut b = SanBuilder::new("m");
        let n = b.place("n", 0);
        b.timed_activity("birth", 1.0)
            .output_arc(n, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        assert!(matches!(
            StateSpace::generate(&san, 50),
            Err(SanError::StateSpaceTooLarge(50))
        ));
    }

    #[test]
    fn general_distribution_rejected() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 1);
        b.general_activity(
            "det",
            StdArc::new(itua_sim::dist::Deterministic::new(1.0).unwrap()),
        )
        .input_arc(p, 1)
        .build()
        .unwrap();
        let san = b.finish().unwrap();
        assert!(matches!(
            StateSpace::generate(&san, 100),
            Err(SanError::NonMarkovian(_))
        ));
    }

    #[test]
    fn wide_vanishing_cascade_reported_as_explosion() {
        // Ten concurrently enabled instantaneous activities: the firing
        // orders form a tree of >10! work items, all reaching the same
        // tangible marking. The expansion budget must report this as
        // state-space explosion in milliseconds instead of walking the
        // whole tree.
        let mut b = SanBuilder::new("wide");
        for i in 0..10 {
            let src = b.place(format!("src{i}"), 1);
            let dst = b.place(format!("dst{i}"), 0);
            b.instantaneous_activity(format!("move{i}"))
                .input_arc(src, 1)
                .output_arc(dst, 1)
                .build()
                .unwrap();
        }
        let san = b.finish().unwrap();
        assert!(matches!(
            StateSpace::generate(&san, 100),
            Err(SanError::StateSpaceTooLarge(100))
        ));
    }

    #[test]
    fn vanishing_livelock_detected() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        // Two instantaneous activities that toggle forever.
        b.instantaneous_activity("ab")
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build()
            .unwrap();
        b.instantaneous_activity("ba")
            .input_arc(q, 1)
            .output_arc(p, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        assert!(matches!(
            StateSpace::generate(&san, 100),
            Err(SanError::Unstabilized { .. })
        ));
    }

    #[test]
    fn absorbing_ctmc_gives_first_passage_probability() {
        // Repairable system with "ever down by t": making the down state
        // absorbing turns the transient mass there into the first-passage
        // probability 1 − e^{−λt} (repair can no longer mask the visit).
        let (lambda, mu) = (0.5, 2.0);
        let san = repairable(lambda, mu);
        let ss = StateSpace::generate(&san, 10).unwrap();
        let down = san.place_id("down").unwrap();
        let (ctmc, flags) = ss.absorbing_ctmc(|m| m.get(down) > 0).unwrap();
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
        for &t in &[0.3, 1.0, 4.0] {
            let p = ctmc
                .transient(&ss.initial_distribution(), t, 1e-12)
                .unwrap();
            let ever_down: f64 = flags
                .iter()
                .zip(&p)
                .filter(|&(&f, _)| f)
                .map(|(_, &pi)| pi)
                .sum();
            let closed = 1.0 - (-lambda * t).exp();
            assert!((ever_down - closed).abs() < 1e-9, "t = {t}");
        }
    }

    #[test]
    fn expected_reward_is_dot_product() {
        let san = repairable(1.0, 9.0);
        let ss = StateSpace::generate(&san, 10).unwrap();
        let down = san.place_id("down").unwrap();
        let pi = ss.to_ctmc().unwrap().steady_state(1e-12, 100_000).unwrap();
        let unavail = ss.expected_reward(&pi, |m| m.get(down) as f64);
        assert!((unavail - 0.1).abs() < 1e-8);
    }

    /// `n` independent repairable components, plus the spec making them
    /// exchangeable — full space 2^n, quotient n+1.
    fn n_components(n: usize) -> (StdArc<San>, crate::sym::SymmetrySpec) {
        use crate::sym::{SymmetryGroup, SymmetrySpec, SymmetryUnit};
        let mut b = SanBuilder::new("multi");
        for i in 0..n {
            let up = b.place(format!("c{i}/up"), 1);
            let down = b.place(format!("c{i}/down"), 0);
            b.timed_activity(format!("c{i}/fail"), 1.0)
                .input_arc(up, 1)
                .output_arc(down, 1)
                .build()
                .unwrap();
            b.timed_activity(format!("c{i}/fix"), 2.0)
                .input_arc(down, 1)
                .output_arc(up, 1)
                .build()
                .unwrap();
        }
        let units = (0..n)
            .map(|i| SymmetryUnit {
                shared: vec![2 * i, 2 * i + 1],
                blocks: vec![],
            })
            .collect();
        let spec = SymmetrySpec::new(2 * n, vec![SymmetryGroup { units }]).unwrap();
        (b.finish().unwrap(), spec)
    }

    #[test]
    fn lumped_counts_and_orbit_totals_match_full() {
        let n = 4;
        let (san, spec) = n_components(n);
        let full = StateSpace::generate(&san, 1 << 10).unwrap();
        let lumped = StateSpace::generate_lumped(&san, &spec, 1 << 10).unwrap();
        assert_eq!(full.num_states(), 1 << n);
        assert_eq!(lumped.num_states(), n + 1);
        assert_eq!(lumped.full_state_total(), Some((1 << n) as u128));
        assert!(full.orbit_sizes().is_none());
        assert!(full.full_state_total().is_none());
    }

    #[test]
    fn lumped_transient_measures_match_full() {
        // Expected number of down components at several horizons: the
        // orbit-invariant reward must come out (near) identical on the
        // quotient chain.
        let n = 5;
        let (san, spec) = n_components(n);
        let full = StateSpace::generate(&san, 1 << 10).unwrap();
        let lumped = StateSpace::generate_lumped(&san, &spec, 1 << 10).unwrap();
        let downs = |ss: &StateSpace, s: usize| {
            (0..n)
                .map(|i| {
                    ss.marking(s)
                        .get(crate::marking::PlaceId::from_index(2 * i + 1))
                        as f64
                })
                .sum::<f64>()
        };
        for &t in &[0.1, 0.7, 2.5] {
            let pf = full
                .to_ctmc()
                .unwrap()
                .transient(&full.initial_distribution(), t, 1e-12)
                .unwrap();
            let pl = lumped
                .to_ctmc()
                .unwrap()
                .transient(&lumped.initial_distribution(), t, 1e-12)
                .unwrap();
            let ef: f64 = (0..full.num_states())
                .map(|s| pf[s] * downs(&full, s))
                .sum();
            let el: f64 = (0..lumped.num_states())
                .map(|s| pl[s] * downs(&lumped, s))
                .sum();
            assert!(
                (ef - el).abs() <= 1e-12 * ef.abs().max(1.0),
                "t = {t}: {ef} vs {el}"
            );
        }
    }

    #[test]
    fn lumped_resolves_vanishing_through_canonical_form() {
        use crate::sym::{SymmetryGroup, SymmetrySpec, SymmetryUnit};
        // Two exchangeable lanes whose tokens pass through an
        // instantaneous stage: the vanishing resolution must land on the
        // same quotient regardless of which lane fires.
        let mut b = SanBuilder::new("lanes");
        let mut places = Vec::new();
        for i in 0..2 {
            let src = b.place(format!("l{i}/src"), 1);
            let mid = b.place(format!("l{i}/mid"), 0);
            let dst = b.place(format!("l{i}/dst"), 0);
            b.timed_activity(format!("l{i}/go"), 1.0)
                .input_arc(src, 1)
                .output_arc(mid, 1)
                .build()
                .unwrap();
            b.instantaneous_activity(format!("l{i}/land"))
                .input_arc(mid, 1)
                .output_arc(dst, 1)
                .build()
                .unwrap();
            b.timed_activity(format!("l{i}/back"), 3.0)
                .input_arc(dst, 1)
                .output_arc(src, 1)
                .build()
                .unwrap();
            places.push((src, mid, dst));
        }
        let san = b.finish().unwrap();
        let units = (0..2)
            .map(|i| SymmetryUnit {
                shared: vec![3 * i, 3 * i + 1, 3 * i + 2],
                blocks: vec![],
            })
            .collect();
        let spec = SymmetrySpec::new(6, vec![SymmetryGroup { units }]).unwrap();

        let full = StateSpace::generate(&san, 1 << 10).unwrap();
        let lumped = StateSpace::generate_lumped(&san, &spec, 1 << 10).unwrap();
        assert_eq!(full.num_states(), 4);
        assert_eq!(lumped.num_states(), 3);
        assert_eq!(lumped.full_state_total(), Some(4));

        // P(both landed by t) agrees between the chains.
        let both = |ss: &StateSpace, s: usize| {
            places
                .iter()
                .map(|&(_, _, d)| ss.marking(s).get(d))
                .sum::<i32>()
                == 2
        };
        let t = 1.3;
        let pf = full
            .to_ctmc()
            .unwrap()
            .transient(&full.initial_distribution(), t, 1e-12)
            .unwrap();
        let pl = lumped
            .to_ctmc()
            .unwrap()
            .transient(&lumped.initial_distribution(), t, 1e-12)
            .unwrap();
        let ef: f64 = (0..full.num_states())
            .filter(|&s| both(&full, s))
            .map(|s| pf[s])
            .sum();
        let el: f64 = (0..lumped.num_states())
            .filter(|&s| both(&lumped, s))
            .map(|s| pl[s])
            .sum();
        assert!((ef - el).abs() < 1e-12, "{ef} vs {el}");
    }

    #[test]
    fn lumped_with_empty_spec_matches_plain_bit_for_bit() {
        use crate::sym::SymmetrySpec;
        // An empty spec has only the identity: the "quotient" is the full
        // chain, and every operation runs in the same order as the plain
        // generator — states, rates, and initial mass must be bit-equal.
        let san = repairable(0.7, 2.3);
        let spec = SymmetrySpec::new(2, vec![]).unwrap();
        let plain = StateSpace::generate(&san, 100).unwrap();
        let lumped = StateSpace::generate_lumped(&san, &spec, 100).unwrap();
        assert_eq!(plain.num_states(), lumped.num_states());
        for s in 0..plain.num_states() {
            assert_eq!(plain.marking(s).values(), lumped.marking(s).values());
        }
        assert_eq!(plain.transitions().len(), lumped.transitions().len());
        for (a, b) in plain.transitions().iter().zip(lumped.transitions()) {
            assert_eq!((a.0, a.1), (b.0, b.1));
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
        assert_eq!(lumped.orbit_sizes().unwrap(), &[1, 1]);
    }

    #[test]
    fn lumped_state_budget_bounds_orbits() {
        let (san, spec) = n_components(6);
        // 7 orbits exist; a budget of 3 must trip.
        assert!(matches!(
            StateSpace::generate_lumped(&san, &spec, 3),
            Err(SanError::StateSpaceTooLarge(3))
        ));
    }

    #[test]
    fn transient_matches_simulation() {
        // Sanity: CTMC transient P(down at t) ≈ simulation estimate.
        let san = repairable(1.0, 3.0);
        let ss = StateSpace::generate(&san, 10).unwrap();
        let ctmc = ss.to_ctmc().unwrap();
        let down = san.place_id("down").unwrap();
        let t = 0.8;
        let p = ctmc
            .transient(&ss.initial_distribution(), t, 1e-12)
            .unwrap();
        let analytic: f64 = (0..ss.num_states())
            .map(|s| p[s] * ss.marking(s).get(down) as f64)
            .sum();

        use crate::reward::{InstantOfTime, RewardVariable};
        use crate::simulator::SanSimulator;
        let sim = SanSimulator::new(san);
        let mut hits = 0u32;
        let n = 3000;
        for seed in 0..n {
            let mut rv = InstantOfTime::new("down", vec![t], move |m| m.get(down) as f64);
            sim.run(seed as u64, 1.0, &mut [&mut rv]).unwrap();
            if rv.observations()[0].value > 0.5 {
                hits += 1;
            }
        }
        let est = hits as f64 / n as f64;
        assert!((est - analytic).abs() < 0.025, "{est} vs {analytic}");
    }
}

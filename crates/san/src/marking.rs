//! Places and markings.
//!
//! A SAN's state is its *marking*: the number of tokens in each place.
//! Markings here are vectors of `i32` (the paper's "short integers"),
//! constrained to be nonnegative. Mutations are logged so the simulator can
//! incrementally re-evaluate only the activities that depend on changed
//! places.

use std::fmt;

/// Identifier of a place in a (flattened) SAN.
///
/// Obtained from [`crate::model::SanBuilder::place`] or by name lookup on a
/// built model; valid only for the model it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) u32);

impl PlaceId {
    /// The raw index of this place.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id with the given raw index. The caller is responsible for the
    /// index being in range for the model it is used against.
    pub fn from_index(index: usize) -> PlaceId {
        PlaceId(index as u32)
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The token counts of every place.
///
/// Mutating methods record which places changed in an internal dirty log,
/// drained by the simulator after each firing.
///
/// # Example
///
/// ```
/// use itua_san::marking::{Marking, PlaceId};
///
/// let mut m = Marking::new(&[1, 0, 3]);
/// let p1 = m.place_ids().nth(1).unwrap();
/// m.set(p1, 5);
/// assert_eq!(m.get(p1), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking {
    values: Vec<i32>,
    #[doc(hidden)]
    dirty: Vec<u32>,
}

impl Marking {
    /// Creates a marking from initial token counts.
    ///
    /// # Panics
    ///
    /// Panics if any initial count is negative.
    pub fn new(initial: &[i32]) -> Self {
        assert!(
            initial.iter().all(|&v| v >= 0),
            "markings must be nonnegative"
        );
        Marking {
            values: initial.to_vec(),
            dirty: Vec::new(),
        }
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the marking has no places.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over all place ids of this marking.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.values.len() as u32).map(PlaceId)
    }

    /// Tokens in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is not a place of this marking.
    #[inline]
    pub fn get(&self, place: PlaceId) -> i32 {
        self.values[place.0 as usize]
    }

    /// Sets the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `value < 0` or the place is out of range.
    #[inline]
    pub fn set(&mut self, place: PlaceId, value: i32) {
        assert!(value >= 0, "negative marking for {place}");
        let slot = &mut self.values[place.0 as usize];
        if *slot != value {
            *slot = value;
            self.dirty.push(place.0);
        }
    }

    /// Adds `delta` tokens (may be negative).
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative.
    #[inline]
    pub fn add(&mut self, place: PlaceId, delta: i32) {
        let v = self.get(place) + delta;
        self.set(place, v);
    }

    /// Whether bit `bit` of the place value is set (the ITUA model uses
    /// places as bit vectors of application identifiers).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 31`.
    #[inline]
    pub fn bit(&self, place: PlaceId, bit: u32) -> bool {
        assert!(bit < 31);
        self.get(place) & (1 << bit) != 0
    }

    /// Sets or clears bit `bit` of the place value.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 31`.
    #[inline]
    pub fn set_bit(&mut self, place: PlaceId, bit: u32, on: bool) {
        assert!(bit < 31);
        let v = self.get(place);
        let nv = if on { v | (1 << bit) } else { v & !(1 << bit) };
        self.set(place, nv);
    }

    /// Raw values, for hashing and state-space storage.
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Number of entries in the dirty log (monotone between clears).
    ///
    /// Together with [`Marking::dirty_since`] this lets two independent
    /// consumers (the simulator's instantaneous-enabling index and its
    /// timed-reschedule loop) each read the log with their own cursor,
    /// without draining it out from under the other.
    pub(crate) fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// The dirty-log entries appended since index `from` (places may
    /// repeat; consumers dedupe).
    pub(crate) fn dirty_since(&self, from: usize) -> &[u32] {
        &self.dirty[from..]
    }

    /// Clears the dirty log without returning it.
    pub(crate) fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// A copy of this marking with an empty dirty log (canonical form for
    /// state-space hashing).
    pub(crate) fn canonical(&self) -> Marking {
        Marking {
            values: self.values.clone(),
            dirty: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> PlaceId {
        PlaceId(i)
    }

    #[test]
    fn get_set_add() {
        let mut m = Marking::new(&[1, 2]);
        assert_eq!(m.get(pid(0)), 1);
        m.set(pid(0), 7);
        assert_eq!(m.get(pid(0)), 7);
        m.add(pid(1), 3);
        assert_eq!(m.get(pid(1)), 5);
        m.add(pid(1), -5);
        assert_eq!(m.get(pid(1)), 0);
    }

    #[test]
    #[should_panic]
    fn negative_set_panics() {
        let mut m = Marking::new(&[0]);
        m.set(pid(0), -1);
    }

    #[test]
    #[should_panic]
    fn negative_add_panics() {
        let mut m = Marking::new(&[1]);
        m.add(pid(0), -2);
    }

    #[test]
    #[should_panic]
    fn negative_initial_panics() {
        let _ = Marking::new(&[-1]);
    }

    #[test]
    fn dirty_log_tracks_changes() {
        let mut m = Marking::new(&[0, 0, 0]);
        m.set(pid(1), 4);
        m.set(pid(1), 4); // no-op: value unchanged
        m.add(pid(2), 1);
        assert_eq!(m.dirty_since(0), &[1, 2]);
        assert_eq!(m.dirty_len(), 2);
        assert_eq!(m.dirty_since(1), &[2]);
        m.clear_dirty();
        assert_eq!(m.dirty_len(), 0);
        assert!(m.dirty_since(0).is_empty());
    }

    #[test]
    fn bit_operations() {
        let mut m = Marking::new(&[0]);
        m.set_bit(pid(0), 3, true);
        assert!(m.bit(pid(0), 3));
        assert_eq!(m.get(pid(0)), 8);
        m.set_bit(pid(0), 0, true);
        assert_eq!(m.get(pid(0)), 9);
        m.set_bit(pid(0), 3, false);
        assert_eq!(m.get(pid(0)), 1);
        assert!(!m.bit(pid(0), 3));
    }

    #[test]
    fn canonical_strips_dirty() {
        let mut m = Marking::new(&[0]);
        m.set(pid(0), 1);
        let c = m.canonical();
        assert_eq!(c.values(), &[1]);
        assert_eq!(c.dirty_len(), 0);
    }

    #[test]
    fn equality_ignores_nothing_but_values() {
        // Two markings with same values but different dirty logs are equal
        // only in canonical form; the simulator always compares canonical
        // markings.
        let a = Marking::new(&[1, 2]);
        let mut b = Marking::new(&[1, 0]);
        b.set(PlaceId(1), 2);
        assert_eq!(a, b.canonical());
    }
}

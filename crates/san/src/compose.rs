//! Composed models: Replicate and Join with shared places.
//!
//! Möbius builds system models from atomic SANs with two operators:
//!
//! * **Replicate** — `n` copies of a submodel, with a designated subset of
//!   places *shared* (a single place common to all copies);
//! * **Join** — several submodels glued together by sharing designated
//!   places.
//!
//! The ITUA composed model (paper Figure 2(a)) is
//!
//! ```text
//! Join1(
//!   Rep1(num_apps,  Join2( Rep(num_reps, Replica), Management )),
//!   Rep2(num_domains, RepH(num_hosts, Host)),
//! )
//! ```
//!
//! This module flattens such a tree into a single [`San`]: shared places
//! are allocated once at the level that declares them, local places get
//! hierarchical names like `apps[2]/replica[4]/has_started`.

use crate::marking::PlaceId;
use crate::model::{ActivityBuilder, San, SanBuilder, SanError, ValueFn};
use itua_sim::dist::Distribution;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A place shared among the children of a composition node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPlace {
    /// The local name submodels use to refer to it.
    pub name: String,
    /// Initial marking.
    pub init: i32,
}

impl SharedPlace {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, init: i32) -> Self {
        SharedPlace {
            name: name.into(),
            init,
        }
    }
}

/// A template that knows how to populate one atomic submodel.
///
/// The same template is invoked once per replica when placed under a
/// [`Node::Rep`]; `builder.rep_indices()` tells it which copy it is.
pub trait SanTemplate: Send + Sync {
    /// Adds this submodel's places and activities to the builder.
    ///
    /// # Errors
    ///
    /// Returns [`SanError`] if an activity definition is invalid.
    fn build(&self, builder: &mut SubnetBuilder<'_>) -> Result<(), SanError>;
}

impl<F> SanTemplate for F
where
    F: Fn(&mut SubnetBuilder<'_>) -> Result<(), SanError> + Send + Sync,
{
    fn build(&self, builder: &mut SubnetBuilder<'_>) -> Result<(), SanError> {
        self(builder)
    }
}

/// A node in the composed-model tree.
pub enum Node {
    /// An atomic SAN produced by a template.
    Atomic {
        /// Submodel name (used in hierarchical place names).
        name: String,
        /// The template that builds it.
        template: Arc<dyn SanTemplate>,
    },
    /// `count` copies of `child`, with `shared` places common to all copies.
    Rep {
        /// Node name.
        name: String,
        /// Number of copies.
        count: usize,
        /// Places shared across the copies.
        shared: Vec<SharedPlace>,
        /// The replicated submodel.
        child: Box<Node>,
    },
    /// Several submodels with `shared` places common to all of them.
    Join {
        /// Node name.
        name: String,
        /// Places shared across the children.
        shared: Vec<SharedPlace>,
        /// The joined submodels.
        children: Vec<Node>,
    },
}

impl Node {
    /// Convenience constructor for an atomic node.
    pub fn atomic(name: impl Into<String>, template: Arc<dyn SanTemplate>) -> Node {
        Node::Atomic {
            name: name.into(),
            template,
        }
    }

    /// Convenience constructor for a Rep node.
    pub fn rep(
        name: impl Into<String>,
        count: usize,
        shared: Vec<SharedPlace>,
        child: Node,
    ) -> Node {
        Node::Rep {
            name: name.into(),
            count,
            shared,
            child: Box::new(child),
        }
    }

    /// Convenience constructor for a Join node.
    pub fn join(name: impl Into<String>, shared: Vec<SharedPlace>, children: Vec<Node>) -> Node {
        Node::Join {
            name: name.into(),
            shared,
            children,
        }
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Atomic { name, .. } => write!(f, "Atomic({name})"),
            Node::Rep {
                name, count, child, ..
            } => write!(f, "Rep({name} × {count}, {child:?})"),
            Node::Join { name, children, .. } => write!(f, "Join({name}, {children:?})"),
        }
    }
}

/// A composed model: a tree of Rep/Join/Atomic nodes.
#[derive(Debug)]
pub struct ComposedModel {
    name: String,
    root: Node,
}

impl ComposedModel {
    /// Creates a composed model with the given root.
    pub fn new(name: impl Into<String>, root: Node) -> Self {
        ComposedModel {
            name: name.into(),
            root,
        }
    }

    /// Flattens the tree into a single solvable [`San`].
    ///
    /// # Errors
    ///
    /// Propagates template errors and rejects empty models.
    pub fn flatten(&self) -> Result<Arc<San>, SanError> {
        let mut builder = SanBuilder::new(self.name.clone());
        let mut rep_indices = Vec::new();
        Self::walk(
            &self.root,
            &mut builder,
            String::new(),
            &BTreeMap::new(),
            &mut rep_indices,
        )?;
        builder.finish()
    }

    fn walk(
        node: &Node,
        builder: &mut SanBuilder,
        prefix: String,
        env: &BTreeMap<String, PlaceId>,
        rep_indices: &mut Vec<usize>,
    ) -> Result<(), SanError> {
        match node {
            Node::Atomic { name, template } => {
                let full = join_path(&prefix, name);
                let mut sb = SubnetBuilder {
                    builder,
                    prefix: full,
                    env: env.clone(),
                    rep_indices: rep_indices.clone(),
                };
                template.build(&mut sb)
            }
            Node::Rep {
                name,
                count,
                shared,
                child,
            } => {
                let full = join_path(&prefix, name);
                let mut child_env = env.clone();
                bind_shared(builder, &full, shared, &mut child_env);
                for i in 0..*count {
                    rep_indices.push(i);
                    Self::walk(
                        child,
                        builder,
                        format!("{full}[{i}]"),
                        &child_env,
                        rep_indices,
                    )?;
                    rep_indices.pop();
                }
                Ok(())
            }
            Node::Join {
                name,
                shared,
                children,
            } => {
                let full = join_path(&prefix, name);
                let mut child_env = env.clone();
                bind_shared(builder, &full, shared, &mut child_env);
                for child in children {
                    Self::walk(child, builder, full.clone(), &child_env, rep_indices)?;
                }
                Ok(())
            }
        }
    }
}

fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix}/{name}")
    }
}

/// Allocates any shared places not already bound by an enclosing node.
fn bind_shared(
    builder: &mut SanBuilder,
    path: &str,
    shared: &[SharedPlace],
    env: &mut BTreeMap<String, PlaceId>,
) {
    for sp in shared {
        if !env.contains_key(&sp.name) {
            let id = builder.place(format!("{path}/{}", sp.name), sp.init);
            env.insert(sp.name.clone(), id);
        }
    }
}

/// The builder handed to [`SanTemplate::build`]: a view of the global
/// [`SanBuilder`] with hierarchical naming and shared-place resolution.
pub struct SubnetBuilder<'a> {
    builder: &'a mut SanBuilder,
    prefix: String,
    env: BTreeMap<String, PlaceId>,
    rep_indices: Vec<usize>,
}

impl<'a> SubnetBuilder<'a> {
    /// This submodel's position under each enclosing Rep node (outermost
    /// first).
    pub fn rep_indices(&self) -> &[usize] {
        &self.rep_indices
    }

    /// This submodel's hierarchical name prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Resolves `name` to a place: a shared binding if one is in scope,
    /// otherwise a fresh local place named `{prefix}/{name}` with marking
    /// `init`.
    ///
    /// The `init` of a shared place is fixed where the sharing is declared;
    /// the value passed here is ignored for shared resolutions.
    pub fn place(&mut self, name: &str, init: i32) -> PlaceId {
        if let Some(&id) = self.env.get(name) {
            return id;
        }
        self.builder.place(format!("{}/{name}", self.prefix), init)
    }

    /// Whether `name` refers to a shared place in scope.
    pub fn is_shared(&self, name: &str) -> bool {
        self.env.contains_key(name)
    }

    /// Starts a timed activity with constant rate (named
    /// `{prefix}/{name}`).
    pub fn timed_activity(&mut self, name: &str, rate: f64) -> ActivityBuilder<'_> {
        let full = format!("{}/{name}", self.prefix);
        self.builder.timed_activity(full, rate)
    }

    /// Starts a timed activity with a marking-dependent rate.
    pub fn timed_activity_fn(
        &mut self,
        name: &str,
        rate: ValueFn,
        reads: &[PlaceId],
    ) -> ActivityBuilder<'_> {
        let full = format!("{}/{name}", self.prefix);
        self.builder.timed_activity_fn(full, rate, reads)
    }

    /// Starts a timed activity with a general firing-time distribution.
    pub fn general_activity(
        &mut self,
        name: &str,
        dist: Arc<dyn Distribution>,
    ) -> ActivityBuilder<'_> {
        let full = format!("{}/{name}", self.prefix);
        self.builder.general_activity(full, dist)
    }

    /// Starts an instantaneous activity.
    pub fn instantaneous_activity(&mut self, name: &str) -> ActivityBuilder<'_> {
        let full = format!("{}/{name}", self.prefix);
        self.builder.instantaneous_activity(full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::SanSimulator;

    /// A template with one local counter and one shared pool: the activity
    /// moves tokens from the shared pool into the local counter.
    fn worker_template() -> Arc<dyn SanTemplate> {
        Arc::new(|b: &mut SubnetBuilder<'_>| {
            let pool = b.place("pool", 0); // shared (bound by parent)
            let got = b.place("got", 0); // local
            b.timed_activity("take", 1.0)
                .input_arc(pool, 1)
                .output_arc(got, 1)
                .build()?;
            Ok(())
        })
    }

    #[test]
    fn rep_shares_declared_places_only() {
        let model = ComposedModel::new(
            "m",
            Node::rep(
                "workers",
                3,
                vec![SharedPlace::new("pool", 5)],
                Node::atomic("w", worker_template()),
            ),
        );
        let san = model.flatten().unwrap();
        // 1 shared pool + 3 local "got" places.
        assert_eq!(san.num_places(), 4);
        assert_eq!(san.num_activities(), 3);
        assert!(san.place_id("workers/pool").is_some());
        assert!(san.place_id("workers[0]/w/got").is_some());
        assert!(san.place_id("workers[2]/w/got").is_some());
        assert!(san.activity_id("workers[1]/w/take").is_some());

        // All tokens drain from the shared pool into exactly one of the
        // local counters each.
        let sim = SanSimulator::new(san.clone());
        let stats = sim.run(1, 1000.0, &mut []).unwrap();
        assert_eq!(stats.timed_firings, 5);
    }

    #[test]
    fn join_shares_across_children() {
        let model = ComposedModel::new(
            "m",
            Node::join(
                "top",
                vec![SharedPlace::new("pool", 2)],
                vec![
                    Node::atomic("a", worker_template()),
                    Node::atomic("b", worker_template()),
                ],
            ),
        );
        let san = model.flatten().unwrap();
        assert_eq!(san.num_places(), 3); // pool + 2 locals
        assert!(san.place_id("top/pool").is_some());
        assert!(san.place_id("top/a/got").is_some());
        assert!(san.place_id("top/b/got").is_some());
    }

    #[test]
    fn nested_sharing_outer_binding_wins() {
        // The outer Join declares "pool"; the inner Rep also declares it.
        // The outer binding must be used (one single pool).
        let model = ComposedModel::new(
            "m",
            Node::join(
                "sys",
                vec![SharedPlace::new("pool", 7)],
                vec![Node::rep(
                    "grp",
                    2,
                    vec![SharedPlace::new("pool", 99)],
                    Node::atomic("w", worker_template()),
                )],
            ),
        );
        let san = model.flatten().unwrap();
        let pool = san.place_id("sys/pool").unwrap();
        assert_eq!(san.initial_marking().get(pool), 7);
        // No second pool was created.
        assert!(san.place_id("sys/grp/pool").is_none());
    }

    #[test]
    fn rep_indices_visible_to_templates() {
        let template: Arc<dyn SanTemplate> = Arc::new(|b: &mut SubnetBuilder<'_>| {
            let idx = *b.rep_indices().last().unwrap() as i32;
            let marker = b.place("marker", idx);
            b.timed_activity("t", 1.0).input_arc(marker, 1).build()?;
            Ok(())
        });
        let model = ComposedModel::new("m", Node::rep("r", 3, vec![], Node::atomic("x", template)));
        let san = model.flatten().unwrap();
        for i in 0..3 {
            let p = san.place_id(&format!("r[{i}]/x/marker")).unwrap();
            assert_eq!(san.initial_marking().get(p), i);
        }
    }

    #[test]
    fn paper_shaped_tree_flattens() {
        // Join1(Rep1(apps, Join2(Rep(replicas), Mgmt)), Rep2(domains, RepH(hosts)))
        let replica: Arc<dyn SanTemplate> = Arc::new(|b: &mut SubnetBuilder<'_>| {
            let running = b.place("replicas_running", 0); // shared per app
            let started = b.place("has_started", 0); // local
            let sys = b.place("start_pool", 0); // global
            b.timed_activity("start", 1.0)
                .input_arc(sys, 1)
                .output_arc(running, 1)
                .output_arc(started, 1)
                .build()?;
            Ok(())
        });
        let mgmt: Arc<dyn SanTemplate> = Arc::new(|b: &mut SubnetBuilder<'_>| {
            let running = b.place("replicas_running", 0);
            let sys = b.place("start_pool", 0);
            b.timed_activity("recover", 1.0)
                .predicate(&[running], move |m| m.get(running) < 3)
                .output_arc(sys, 1)
                .build()?;
            Ok(())
        });
        let host: Arc<dyn SanTemplate> = Arc::new(|b: &mut SubnetBuilder<'_>| {
            let excluded = b.place("domain_excluded", 0); // shared per domain
            let up = b.place("up", 1); // local
            b.timed_activity("attack", 0.1)
                .input_arc(up, 1)
                .output_arc(excluded, 1)
                .build()?;
            Ok(())
        });

        let tree = Node::join(
            "itua",
            vec![SharedPlace::new("start_pool", 0)],
            vec![
                Node::rep(
                    "apps",
                    2,
                    vec![],
                    Node::join(
                        "app",
                        vec![SharedPlace::new("replicas_running", 0)],
                        vec![
                            Node::rep("reps", 3, vec![], Node::atomic("replica", replica)),
                            Node::atomic("mgmt", mgmt),
                        ],
                    ),
                ),
                Node::rep(
                    "domains",
                    2,
                    vec![],
                    Node::rep(
                        "hosts",
                        2,
                        vec![SharedPlace::new("domain_excluded", 0)],
                        Node::atomic("host", host),
                    ),
                ),
            ],
        );
        let san = ComposedModel::new("itua", tree).flatten().unwrap();
        // Places: start_pool (1) + per-app replicas_running (2) +
        // per-replica has_started (6) + per-domain domain_excluded (2) +
        // per-host up (4) = 15.
        assert_eq!(san.num_places(), 15);
        // Activities: 6 replica starts + 2 mgmt + 4 hosts = 12.
        assert_eq!(san.num_activities(), 12);
        // Distinct replicas_running per app.
        let r0 = san.place_id("itua/apps[0]/app/replicas_running").unwrap();
        let r1 = san.place_id("itua/apps[1]/app/replicas_running").unwrap();
        assert_ne!(r0, r1);
        // The model runs.
        let sim = SanSimulator::new(san);
        sim.run(1, 5.0, &mut []).unwrap();
    }
}

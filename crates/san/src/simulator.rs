//! Discrete-event execution of a SAN.
//!
//! Implements the standard SAN execution semantics:
//!
//! * **Timed activities** race: each enabled activity holds a sampled
//!   completion time; the earliest fires. Exponential activities are
//!   resampled whenever a place they read changes (valid by memorylessness
//!   and required for marking-dependent rates); generally distributed
//!   activities keep their sample while continuously enabled and lose it
//!   when disabled (enabling memory policy).
//! * **Instantaneous activities** fire in zero time whenever enabled. When
//!   several are enabled at once, one is chosen uniformly at random — the
//!   "identical copies equally likely to fire first" rule the ITUA model
//!   uses for random replica placement. The marking must stabilize (no
//!   enabled instantaneous activity) within a bounded number of firings.
//! * **Cases** are selected with probability proportional to their
//!   (marking-dependent) weights, evaluated just before firing.

use crate::marking::Marking;
use crate::model::{Activity, ActivityId, San, SanError, Timing};
use itua_sim::queue::{EventKey, EventQueue};
use itua_sim::rng::Rng;
use std::sync::Arc;

/// Maximum instantaneous firings processed per stabilization before the
/// simulator declares a livelock.
const MAX_STABILIZATION_FIRINGS: usize = 100_000;

/// Receives simulation callbacks; reward variables implement this.
pub trait Observer {
    /// Called once after the initial marking has stabilized.
    fn on_init(&mut self, _time: f64, _marking: &Marking) {}

    /// Called after each activity firing (timed or instantaneous) once the
    /// marking has stabilized again.
    fn on_event(&mut self, _time: f64, _activity: ActivityId, _marking: &Marking) {}

    /// Extra time points at which [`Observer::on_sample`] should be called
    /// (for instant-of-time variables). Must be sorted ascending.
    fn sample_times(&self) -> Vec<f64> {
        Vec::new()
    }

    /// Appends the observer's requested sample times to `out`. The default
    /// delegates to [`Observer::sample_times`]; observers that keep their
    /// times in a buffer can override this to avoid the per-run `Vec`
    /// allocation (the simulator only ever calls this form).
    fn append_sample_times(&self, out: &mut Vec<f64>) {
        out.extend(self.sample_times());
    }

    /// Called at each requested sample time with the marking then in force.
    fn on_sample(&mut self, _time: f64, _marking: &Marking) {}

    /// Called when the run ends (horizon reached or queue drained).
    fn on_end(&mut self, _time: f64, _marking: &Marking) {}
}

/// Statistics from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Timed activity firings.
    pub timed_firings: u64,
    /// Instantaneous activity firings.
    pub instantaneous_firings: u64,
    /// Simulation time at which the run ended.
    pub end_time: f64,
}

/// A discrete-event simulator for one [`San`].
///
/// The simulator is stateless between runs; each [`SanSimulator::run`] is an
/// independent replication determined entirely by its seed.
#[derive(Debug, Clone)]
pub struct SanSimulator {
    san: Arc<San>,
    full_rescan: bool,
    full_rescan_resched: bool,
}

/// Once the marking's dirty log holds this many entries, the simulator
/// clears it and restarts both index cursors. Clearing less often than
/// every step amortizes the log lifecycle across the two consumers (the
/// instantaneous enabling index and the timed reschedule index) while
/// keeping the log's memory bounded.
const DIRTY_LOG_CLEAR_LEN: usize = 512;

/// Inserts a completion event for `id` at absolute time `time`.
fn schedule_at(
    id: ActivityId,
    time: f64,
    queue: &mut EventQueue<ActivityId>,
    keys: &mut [Option<EventKey>],
) {
    keys[id.index()] = Some(queue.schedule(time, id));
}

/// Persistent sorted set of the enabled instantaneous activities, kept in
/// sync with the marking's dirty log.
///
/// `enabled` is ordered by ascending [`ActivityId`] — exactly the order a
/// full scan over the model produces. That ordering is load-bearing:
/// `stabilize` draws `enabled[rng.usize_below(len)]`, so any deviation
/// would change which activity a given uniform selects and break the
/// bit-identical determinism contract. `synced` is this index's private
/// cursor into the marking's dirty log; the timed-reschedule loop reads
/// the same log with its own cursor (always 0), which is why the log is
/// cursored rather than drained.
#[derive(Clone)]
struct InstIndex {
    enabled: Vec<ActivityId>,
    candidates: Vec<ActivityId>,
    synced: usize,
}

impl InstIndex {
    fn new() -> Self {
        InstIndex {
            enabled: Vec::new(),
            candidates: Vec::new(),
            synced: 0,
        }
    }

    /// Recomputes the set with a full scan (run reset; dirty log empty).
    fn rebuild(&mut self, san: &San, marking: &Marking) {
        san.enabled_instantaneous_into(marking, &mut self.enabled);
        self.synced = 0;
    }

    /// Re-checks only the instantaneous activities that read a place
    /// dirtied since the last sync, splicing them in or out of the sorted
    /// set.
    fn sync(&mut self, san: &San, marking: &Marking) {
        if self.synced == marking.dirty_len() {
            return;
        }
        self.candidates.clear();
        for &p in marking.dirty_since(self.synced) {
            self.candidates.extend_from_slice(san.inst_dependents_of(p));
        }
        self.synced = marking.dirty_len();
        self.candidates.sort_unstable();
        self.candidates.dedup();
        for &id in &self.candidates {
            let enabled_now = san.activity(id).enabled(marking);
            match self.enabled.binary_search(&id) {
                Ok(pos) if !enabled_now => {
                    self.enabled.remove(pos);
                }
                Err(pos) if enabled_now => {
                    self.enabled.insert(pos, id);
                }
                _ => {}
            }
        }
    }

    /// Tells the index the dirty log is being cleared. The set itself
    /// stays valid (clearing the log does not change the marking); only
    /// the cursor must restart. Callers must be fully synced first.
    fn note_cleared(&mut self) {
        self.synced = 0;
    }
}

/// Persistent reschedule index for the timed activities, the counterpart
/// of [`InstIndex`] on the timed side of the per-place dependent split
/// (`San::timed_dependents_of`).
///
/// After each firing the simulator must re-examine exactly the timed
/// activities whose enabling or rate may have changed: the fired activity
/// plus every timed activity reading a place the firing (and its
/// instantaneous cascade) dirtied. `collect` derives that set from the
/// marking's dirty log through this index's private cursor — the
/// instantaneous index reads the same log through its own cursor, so the
/// log is cleared only when it grows past [`DIRTY_LOG_CLEAR_LEN`], not
/// per step. The `affected` set is kept in ascending [`ActivityId`]
/// order: the reschedule loop draws exponential variates in iteration
/// order, so the ordering pins the RNG stream and with it bit-identical
/// trajectories.
#[derive(Clone)]
struct TimedIndex {
    affected: Vec<ActivityId>,
    /// Cursor into the marking's dirty log (entries before it are
    /// already reflected in past reschedules).
    synced: usize,
    /// Per-place dirt flags, scratch for the full-rescan oracle scan.
    /// All-false between uses.
    dirt: Vec<bool>,
}

impl TimedIndex {
    fn new() -> Self {
        TimedIndex {
            affected: Vec::new(),
            synced: 0,
            dirt: Vec::new(),
        }
    }

    /// Tells the index the dirty log is being cleared (see
    /// [`InstIndex::note_cleared`]).
    fn note_cleared(&mut self) {
        self.synced = 0;
    }

    /// Rebuilds `affected` for the step that fired `fired`: the fired
    /// activity plus the timed dependents of every place dirtied since
    /// the last collect, ascending and deduped. Advances the cursor.
    ///
    /// With `full_rescan` the set is instead derived by scanning *every*
    /// timed activity's read set against the dirtied places — the same
    /// set computed from the forward (activity → reads) map instead of
    /// the inverse (place → dependents) index. Tests use that mode as
    /// the oracle; debug builds cross-check every step against it.
    fn collect(&mut self, san: &San, marking: &Marking, fired: ActivityId, full_rescan: bool) {
        let from = self.synced;
        self.synced = marking.dirty_len();
        if full_rescan {
            let mut scanned = std::mem::take(&mut self.affected);
            self.scan_into(san, marking, from, fired, &mut scanned);
            self.affected = scanned;
            return;
        }
        self.affected.clear();
        self.affected.push(fired);
        for &p in marking.dirty_since(from) {
            self.affected.extend_from_slice(san.timed_dependents_of(p));
        }
        self.affected.sort_unstable();
        self.affected.dedup();
        #[cfg(debug_assertions)]
        {
            let mut check = Vec::new();
            self.scan_into(san, marking, from, fired, &mut check);
            debug_assert_eq!(
                self.affected, check,
                "incremental timed reschedule index diverged from full rescan"
            );
        }
    }

    /// The full-rescan enumeration: walks all activities in id order and
    /// collects the timed ones that are `fired` or read a dirtied place.
    fn scan_into(
        &mut self,
        san: &San,
        marking: &Marking,
        from: usize,
        fired: ActivityId,
        out: &mut Vec<ActivityId>,
    ) {
        self.dirt.resize(marking.len(), false);
        for &p in marking.dirty_since(from) {
            self.dirt[p as usize] = true;
        }
        out.clear();
        for (id, act) in san.activities() {
            if act.is_instantaneous() {
                continue;
            }
            if id == fired || act.reads().iter().any(|p| self.dirt[p.index()]) {
                out.push(id);
            }
        }
        for &p in marking.dirty_since(from) {
            self.dirt[p as usize] = false;
        }
    }
}

/// Deferred exponential-delay draws for the (re)scheduling loops.
///
/// Exponential delays within one scheduling pass are sampled as a block:
/// `schedule` records `(activity, rate)` pairs, and `flush` draws all
/// pending uniforms with one [`Rng::fill_f64_open`] call and converts
/// them with a branch-free `-ln(u)/rate` pass over the slice. A flush
/// happens before any general-distribution sample, so the global RNG
/// draw order — and with it the event-queue insertion order and every
/// estimate — is bit-identical to unbatched scheduling.
#[derive(Clone)]
struct ExpoBatch {
    now: f64,
    pending: Vec<(ActivityId, f64)>,
    uniforms: Vec<f64>,
}

impl ExpoBatch {
    fn new() -> Self {
        ExpoBatch {
            now: 0.0,
            pending: Vec::new(),
            uniforms: Vec::new(),
        }
    }

    /// Starts a scheduling pass at simulation time `now`.
    fn begin(&mut self, now: f64) {
        self.pending.clear();
        self.now = now;
    }

    /// Schedules a timed activity: exponential draws are deferred into
    /// the batch; general distributions flush the batch first (preserving
    /// the global draw order) and sample immediately.
    fn schedule(
        &mut self,
        act: &Activity,
        id: ActivityId,
        marking: &Marking,
        rng: &mut Rng,
        queue: &mut EventQueue<ActivityId>,
        keys: &mut [Option<EventKey>],
    ) {
        match act.timing() {
            Timing::Exponential(rate) => {
                let r = rate(marking);
                assert!(
                    r.is_finite() && r >= 0.0,
                    "activity '{}' produced invalid rate {r}",
                    act.name()
                );
                if r == 0.0 {
                    return; // rate 0 = effectively disabled; draws nothing
                }
                self.pending.push((id, r));
            }
            Timing::General(dist) => {
                self.flush(rng, queue, keys);
                let delay = dist.sample(rng);
                schedule_at(id, self.now + delay, queue, keys);
            }
            Timing::Instantaneous => unreachable!("instantaneous activities are not scheduled"),
        }
    }

    /// Samples every pending exponential delay in one block and inserts
    /// the events in the order they were scheduled.
    fn flush(
        &mut self,
        rng: &mut Rng,
        queue: &mut EventQueue<ActivityId>,
        keys: &mut [Option<EventKey>],
    ) {
        if self.pending.is_empty() {
            return;
        }
        self.uniforms.resize(self.pending.len(), 0.0);
        rng.fill_f64_open(&mut self.uniforms);
        for (u, &(_, rate)) in self.uniforms.iter_mut().zip(&self.pending) {
            *u = -u.ln() / rate;
        }
        for (&(id, _), &delay) in self.pending.iter().zip(&self.uniforms) {
            schedule_at(id, self.now + delay, queue, keys);
        }
        self.pending.clear();
    }
}

/// Reusable per-thread simulation state for [`SanSimulator::run_with_scratch`].
///
/// Owns the marking, event queue, per-activity schedule table, merged
/// sample-time buffer, the incremental enabling index, and the batched
/// exponential-sampling buffers, plus a cached copy of the initial
/// marking, so a worker thread can run many replications without
/// reallocating any of them. Every run fully resets the state; reuse
/// never changes results.
///
/// `Clone` deep-copies the entire mid-run state (marking, queue, schedule
/// table, batching buffers); together with a cloned [`RunCursor`] the copy
/// continues the run independently — the basis of importance splitting.
#[derive(Clone)]
pub struct SimScratch {
    initial: Marking,
    marking: Marking,
    queue: EventQueue<ActivityId>,
    keys: Vec<Option<EventKey>>,
    sample_times: Vec<f64>,
    inst: InstIndex,
    timed: TimedIndex,
    expo: ExpoBatch,
}

impl SimScratch {
    /// The current marking (importance level functions read this between
    /// [`SanSimulator::step_run`] calls; the marking is stabilized then).
    pub fn marking(&self) -> &Marking {
        &self.marking
    }
}

/// Execution cursor for a run driven stepwise through
/// [`SanSimulator::begin_run`] / [`SanSimulator::step_run`].
///
/// Owns the run-local random stream, the sample-delivery position, and the
/// firing statistics. Cloning a cursor together with its [`SimScratch`]
/// snapshots a run mid-flight; the importance-splitting scheduler clones
/// both at level crossings and reseeds the copy.
#[derive(Debug, Clone)]
pub struct RunCursor {
    rng: Rng,
    next_sample: usize,
    stats: RunStats,
    /// Simulation time of the last fired event (0 before the first).
    /// [`SanSimulator::resample_pending`] needs the current time to
    /// redraw remaining delays from "now".
    now: f64,
}

impl RunCursor {
    /// Firing statistics accumulated so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Replaces the run's random stream with one seeded from `seed`.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = Rng::seed_from_u64(seed);
    }

    /// Draws one Bernoulli(`p`) from the run's stream (Russian roulette).
    pub fn survives(&mut self, p: f64) -> bool {
        self.rng.bernoulli(p)
    }
}

impl SanSimulator {
    /// Creates a simulator for the given model.
    pub fn new(san: Arc<San>) -> Self {
        SanSimulator {
            san,
            full_rescan: false,
            full_rescan_resched: false,
        }
    }

    /// The underlying model.
    pub fn san(&self) -> &Arc<San> {
        &self.san
    }

    /// Forces `stabilize` to recompute the enabled-instantaneous set with
    /// a full scan each iteration instead of the incremental enabling
    /// index. Results are identical either way; tests use this mode as
    /// the oracle the incremental index is checked against.
    #[doc(hidden)]
    pub fn set_full_rescan_stabilize(&mut self, on: bool) {
        self.full_rescan = on;
    }

    /// Forces the timed reschedule loop to derive its affected set by
    /// scanning every timed activity's read set instead of the
    /// incremental [`TimedIndex`]. Results are identical either way;
    /// tests use this mode as the oracle the index is checked against.
    #[doc(hidden)]
    pub fn set_full_rescan_reschedule(&mut self, on: bool) {
        self.full_rescan_resched = on;
    }

    /// Creates a reusable scratch for [`SanSimulator::run_with_scratch`].
    pub fn scratch(&self) -> SimScratch {
        let initial = self.san.initial_marking();
        SimScratch {
            marking: initial.clone(),
            initial,
            queue: EventQueue::new(),
            keys: vec![None; self.san.num_activities()],
            sample_times: Vec::new(),
            inst: InstIndex::new(),
            timed: TimedIndex::new(),
            expo: ExpoBatch::new(),
        }
    }

    /// Runs one replication with the given seed until `horizon`.
    ///
    /// Equivalent to [`SanSimulator::run_with_scratch`] with a fresh
    /// scratch; use that form to amortise state allocation across
    /// replications.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::Unstabilized`] if instantaneous activities
    /// livelock.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is negative or NaN.
    pub fn run(
        &self,
        seed: u64,
        horizon: f64,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunStats, SanError> {
        let mut scratch = self.scratch();
        self.run_with_scratch(seed, horizon, observers, &mut scratch)
    }

    /// Runs one replication, reusing `scratch`'s allocations.
    ///
    /// The scratch is reset first, so the run is byte-identical to
    /// [`SanSimulator::run`] with the same arguments, regardless of what
    /// the scratch was previously used for.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::Unstabilized`] if instantaneous activities
    /// livelock.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is negative or NaN, or if `scratch` was created
    /// for a structurally different model.
    pub fn run_with_scratch(
        &self,
        seed: u64,
        horizon: f64,
        observers: &mut [&mut dyn Observer],
        scratch: &mut SimScratch,
    ) -> Result<RunStats, SanError> {
        let mut cursor = self.begin_run(seed, horizon, observers, scratch)?;
        while self.step_run(horizon, observers, scratch, &mut cursor)? {}
        Ok(cursor.stats)
    }

    /// Resets `scratch`, performs the time-zero stabilization and initial
    /// scheduling, and returns the cursor from which the run proceeds one
    /// event at a time via [`SanSimulator::step_run`].
    ///
    /// `run_with_scratch` is exactly `begin_run` followed by `step_run`
    /// until it returns `false`, so stepwise execution is bit-identical to
    /// the monolithic loop by construction.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::Unstabilized`] if instantaneous activities
    /// livelock during the initial stabilization.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is negative or NaN, or if `scratch` was created
    /// for a structurally different model.
    pub fn begin_run(
        &self,
        seed: u64,
        horizon: f64,
        observers: &mut [&mut dyn Observer],
        scratch: &mut SimScratch,
    ) -> Result<RunCursor, SanError> {
        assert!(horizon >= 0.0 && !horizon.is_nan(), "bad horizon");
        let san = &*self.san;
        assert!(
            scratch.keys.len() == san.num_activities() && scratch.initial == san.initial_marking(),
            "scratch does not match this model"
        );
        let mut rng = Rng::seed_from_u64(seed);

        // Reset the scratch to the pristine time-zero state, keeping the
        // backing allocations.
        let SimScratch {
            initial,
            marking,
            queue,
            keys,
            sample_times,
            inst,
            timed,
            expo,
        } = scratch;
        let marking = &mut *marking;
        marking.clone_from(initial);
        queue.clear();
        for k in keys.iter_mut() {
            *k = None;
        }

        let mut stats = RunStats {
            timed_firings: 0,
            instantaneous_firings: 0,
            end_time: 0.0,
        };

        // Collect and merge requested sample times.
        sample_times.clear();
        for o in observers.iter() {
            o.append_sample_times(sample_times);
        }
        sample_times.retain(|&t| t <= horizon);
        sample_times.sort_by(|a, b| a.partial_cmp(b).expect("sample times are not NaN"));
        sample_times.dedup();

        // Initial stabilization. Firings before time zero are not
        // observable events, hence the empty observer slice.
        marking.clear_dirty();
        inst.rebuild(san, marking);
        self.stabilize(marking, &mut rng, 0.0, &mut [], &mut stats, inst)?;
        marking.clear_dirty();
        inst.note_cleared();
        timed.note_cleared();
        for o in observers.iter_mut() {
            o.on_init(0.0, marking);
        }
        // Schedule every enabled timed activity.
        expo.begin(0.0);
        for (id, act) in san.activities() {
            if matches!(act.timing(), Timing::Instantaneous) {
                continue;
            }
            if act.enabled(marking) {
                expo.schedule(act, id, marking, &mut rng, queue, keys);
            }
        }
        expo.flush(&mut rng, queue, keys);

        Ok(RunCursor {
            rng,
            next_sample: 0,
            stats,
            now: 0.0,
        })
    }

    /// Advances the run by one event-queue entry: delivers due sample
    /// points, then pops and fires the next timed activity (with its
    /// zero-time stabilization cascade and rescheduling). Returns
    /// `Ok(false)` once the horizon is reached or the queue drains —
    /// `cursor.stats()` is final at that point.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::Unstabilized`] if instantaneous activities
    /// livelock.
    pub fn step_run(
        &self,
        horizon: f64,
        observers: &mut [&mut dyn Observer],
        scratch: &mut SimScratch,
        cursor: &mut RunCursor,
    ) -> Result<bool, SanError> {
        let san = &*self.san;
        let SimScratch {
            initial: _,
            marking,
            queue,
            keys,
            sample_times,
            inst,
            timed,
            expo,
        } = scratch;
        let marking = &mut *marking;
        let rng = &mut cursor.rng;

        let next_time = queue.peek_time();
        // Deliver sample points that precede the next event (or all
        // remaining ones if the queue is drained / past horizon).
        let cutoff = match next_time {
            Some(t) if t <= horizon => t,
            _ => horizon,
        };
        while cursor.next_sample < sample_times.len() && sample_times[cursor.next_sample] <= cutoff
        {
            let st = sample_times[cursor.next_sample];
            for o in observers.iter_mut() {
                o.on_sample(st, marking);
            }
            cursor.next_sample += 1;
        }

        match next_time {
            // No more events (the marking is frozen, but the observation
            // interval still runs to the horizon), or the next event lies
            // beyond it: the run is over.
            None => {
                cursor.stats.end_time = horizon;
                for o in observers.iter_mut() {
                    o.on_end(horizon, marking);
                }
                return Ok(false);
            }
            Some(t) if t > horizon => {
                cursor.stats.end_time = horizon;
                for o in observers.iter_mut() {
                    o.on_end(horizon, marking);
                }
                return Ok(false);
            }
            Some(_) => {}
        }

        let (now, act_id) = queue.pop().expect("peeked event exists");
        cursor.now = now;
        debug_assert!(
            keys[act_id.index()].is_some(),
            "popped activity must have been scheduled"
        );
        keys[act_id.index()] = None;

        let act = san.activity(act_id);
        debug_assert!(act.enabled(marking), "scheduled activity must be enabled");

        // Fire.
        let case = Self::choose_case(act.case_weights(marking), rng);
        act.fire(case, marking);
        cursor.stats.timed_firings += 1;

        // Zero-time stabilization of instantaneous activities.
        self.stabilize(marking, rng, now, observers, &mut cursor.stats, inst)?;

        // Incrementally update the timed activities affected by the
        // firing and its cascade, batching the exponential resamples.
        // `timed` consumes only the dirty-log suffix past its cursor, so
        // the log itself is cleared lazily (below) once it grows past the
        // threshold — both cursors share one log lifecycle.
        timed.collect(san, marking, act_id, self.full_rescan_resched);
        expo.begin(now);
        for &id in &timed.affected {
            let act = san.activity(id);
            let enabled = act.enabled(marking);
            let scheduled = keys[id.index()].is_some();
            match (enabled, scheduled) {
                (true, false) => {
                    expo.schedule(act, id, marking, rng, queue, keys);
                }
                (true, true) => {
                    // Resample exponentials (marking-dependent rates);
                    // keep general samples (enabling memory).
                    if matches!(act.timing(), Timing::Exponential(_)) {
                        Self::cancel(id, queue, keys);
                        expo.schedule(act, id, marking, rng, queue, keys);
                    }
                }
                (false, true) => {
                    Self::cancel(id, queue, keys);
                }
                (false, false) => {}
            }
        }
        expo.flush(rng, queue, keys);
        if marking.dirty_len() >= DIRTY_LOG_CLEAR_LEN {
            // Every cursor is fully synced here, so dropping the log is
            // invisible to both indices.
            marking.clear_dirty();
            inst.note_cleared();
            timed.note_cleared();
        }

        for o in observers.iter_mut() {
            o.on_event(now, act_id, marking);
        }
        Ok(true)
    }

    fn cancel(id: ActivityId, queue: &mut EventQueue<ActivityId>, keys: &mut [Option<EventKey>]) {
        if let Some(key) = keys[id.index()].take() {
            queue.cancel(key);
        }
    }

    /// Redraws the completion time of every scheduled exponential
    /// activity from the cursor's stream, anchored at the current
    /// simulation time.
    ///
    /// Exponential distributions are memoryless, so conditioned on the
    /// current marking the redrawn schedule has exactly the law of the
    /// old one — this changes *which* future gets sampled, never its
    /// distribution. An importance-splitting branch calls this after
    /// [`RunCursor::reseed`]: without it, sibling branches would inherit
    /// the parent's already-drawn completion times from the cloned queue
    /// and replay near-identical futures, defeating the variance
    /// reduction splitting exists for. Generally distributed activities
    /// (none in the ITUA model) keep their samples: their enabling memory
    /// is not memoryless, so a redraw would change the law.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` does not belong to this model.
    pub fn resample_pending(&self, scratch: &mut SimScratch, cursor: &mut RunCursor) {
        let san = &*self.san;
        assert!(
            scratch.keys.len() == san.num_activities(),
            "scratch does not match this model"
        );
        let SimScratch {
            marking,
            queue,
            keys,
            expo,
            ..
        } = scratch;
        expo.begin(cursor.now);
        for (id, act) in san.activities() {
            if keys[id.index()].is_some() && matches!(act.timing(), Timing::Exponential(_)) {
                Self::cancel(id, queue, keys);
                expo.schedule(act, id, marking, &mut cursor.rng, queue, keys);
            }
        }
        expo.flush(&mut cursor.rng, queue, keys);
    }

    fn choose_case(weights: Vec<f64>, rng: &mut Rng) -> usize {
        if weights.len() == 1 {
            0
        } else {
            rng.weighted_choice(&weights)
        }
    }

    /// Fires enabled instantaneous activities (uniform random choice)
    /// until none is enabled, keeping `idx` in sync with the dirty log.
    ///
    /// For the initial stabilization the caller passes an empty observer
    /// slice: firings before time zero are not observable events.
    fn stabilize(
        &self,
        marking: &mut Marking,
        rng: &mut Rng,
        now: f64,
        observers: &mut [&mut dyn Observer],
        stats: &mut RunStats,
        idx: &mut InstIndex,
    ) -> Result<(), SanError> {
        let san = &*self.san;
        let mut firings = 0usize;
        loop {
            if self.full_rescan {
                san.enabled_instantaneous_into(marking, &mut idx.enabled);
                idx.synced = marking.dirty_len();
            } else {
                idx.sync(san, marking);
                #[cfg(debug_assertions)]
                {
                    let mut check = Vec::new();
                    san.enabled_instantaneous_into(marking, &mut check);
                    debug_assert_eq!(
                        idx.enabled, check,
                        "incremental enabling index diverged from full rescan"
                    );
                }
            }
            if idx.enabled.is_empty() {
                return Ok(());
            }
            firings += 1;
            if firings > MAX_STABILIZATION_FIRINGS {
                return Err(SanError::Unstabilized {
                    marking: marking.values().to_vec(),
                });
            }
            let id = idx.enabled[rng.usize_below(idx.enabled.len())];
            let act = san.activity(id);
            let case = Self::choose_case(act.case_weights(marking), rng);
            act.fire(case, marking);
            stats.instantaneous_firings += 1;
            for o in observers.iter_mut() {
                o.on_event(now, id, marking);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SanBuilder;
    use std::sync::Arc as StdArc;

    /// Counts firings per activity.
    #[derive(Default)]
    struct FiringCounter {
        counts: std::collections::HashMap<u32, u64>,
        end_time: f64,
    }

    impl Observer for FiringCounter {
        fn on_event(&mut self, _time: f64, activity: ActivityId, _m: &Marking) {
            *self.counts.entry(activity.0).or_insert(0) += 1;
        }
        fn on_end(&mut self, time: f64, _m: &Marking) {
            self.end_time = time;
        }
    }

    fn poisson_model(rate: f64) -> StdArc<San> {
        let mut b = SanBuilder::new("poisson");
        let count = b.place("count", 0);
        b.timed_activity("arrive", rate)
            .output_arc(count, 1)
            .build()
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn poisson_firing_count() {
        let san = poisson_model(5.0);
        let sim = SanSimulator::new(san);
        let mut obs = FiringCounter::default();
        let stats = sim.run(42, 100.0, &mut [&mut obs]).unwrap();
        // ~500 firings expected; 5-sigma ≈ 112.
        assert!(
            (stats.timed_firings as f64 - 500.0).abs() < 120.0,
            "{stats:?}"
        );
        assert_eq!(stats.end_time, 100.0);
        assert_eq!(obs.end_time, 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let san = poisson_model(2.0);
        let sim = SanSimulator::new(san);
        let a = sim.run(7, 50.0, &mut []).unwrap();
        let b = sim.run(7, 50.0, &mut []).unwrap();
        assert_eq!(a, b);
        let c = sim.run(8, 50.0, &mut []).unwrap();
        assert_ne!(a.timed_firings, c.timed_firings);
    }

    #[test]
    fn reused_scratch_matches_fresh_runs() {
        let san = poisson_model(3.0);
        let sim = SanSimulator::new(san);
        let mut scratch = sim.scratch();
        for seed in 0..30 {
            let mut obs_reused = FiringCounter::default();
            let reused = sim
                .run_with_scratch(seed, 20.0, &mut [&mut obs_reused], &mut scratch)
                .unwrap();
            let mut obs_fresh = FiringCounter::default();
            let fresh = sim.run(seed, 20.0, &mut [&mut obs_fresh]).unwrap();
            assert_eq!(reused, fresh, "seed {seed}");
            assert_eq!(obs_reused.counts, obs_fresh.counts, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn scratch_from_other_model_is_rejected() {
        let sim_a = SanSimulator::new(poisson_model(3.0));
        let mut b = SanBuilder::new("other");
        let p = b.place("p", 7);
        b.timed_activity("t", 1.0).input_arc(p, 1).build().unwrap();
        let sim_b = SanSimulator::new(b.finish().unwrap());
        let mut scratch = sim_b.scratch();
        let _ = sim_a.run_with_scratch(0, 1.0, &mut [], &mut scratch);
    }

    #[test]
    fn queue_drains_when_nothing_enabled() {
        let mut b = SanBuilder::new("finite");
        let p = b.place("p", 3);
        let done = b.place("done", 0);
        b.timed_activity("consume", 10.0)
            .input_arc(p, 1)
            .output_arc(done, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let sim = SanSimulator::new(san.clone());
        let stats = sim.run(1, 1000.0, &mut []).unwrap();
        assert_eq!(stats.timed_firings, 3);
        // The queue drained early, but the observation window is [0, 1000].
        assert_eq!(stats.end_time, 1000.0);
    }

    #[test]
    fn instantaneous_stabilization_and_uniform_choice() {
        // Two instantaneous activities race for one token; over many seeds
        // each should win about half the time.
        let mut wins_a = 0;
        for seed in 0..400 {
            let mut b = SanBuilder::new("race");
            let token = b.place("token", 1);
            let a = b.place("a", 0);
            let c = b.place("c", 0);
            b.instantaneous_activity("take_a")
                .input_arc(token, 1)
                .output_arc(a, 1)
                .build()
                .unwrap();
            b.instantaneous_activity("take_c")
                .input_arc(token, 1)
                .output_arc(c, 1)
                .build()
                .unwrap();
            // A timed activity so the model is not empty of timed events.
            let sink = b.place("sink", 0);
            b.timed_activity("tick", 1.0)
                .output_arc(sink, 1)
                .build()
                .unwrap();
            let san = b.finish().unwrap();
            let sim = SanSimulator::new(san.clone());

            struct Final(i32);
            impl Observer for Final {
                fn on_end(&mut self, _t: f64, m: &Marking) {
                    self.0 = m.get(crate::marking::PlaceId(1));
                }
            }
            let mut f = Final(-1);
            sim.run(seed, 0.5, &mut [&mut f]).unwrap();
            if f.0 == 1 {
                wins_a += 1;
            }
        }
        assert!(
            (wins_a as f64 / 400.0 - 0.5).abs() < 0.1,
            "a won {wins_a}/400"
        );
    }

    #[test]
    fn livelock_detected() {
        let mut b = SanBuilder::new("livelock");
        let p = b.place("p", 1);
        // Instantaneous activity that never consumes its enabling token.
        b.instantaneous_activity("spin")
            .predicate(&[p], move |m| m.get(p) > 0)
            .input_gate(&[], |_| true, |_m| {})
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let sim = SanSimulator::new(san);
        let err = sim.run(1, 1.0, &mut []).unwrap_err();
        assert!(matches!(err, SanError::Unstabilized { .. }));
    }

    #[test]
    fn case_probabilities_respected() {
        let mut b = SanBuilder::new("cases");
        let hit = b.place("hit", 0);
        let miss = b.place("miss", 0);
        b.timed_activity("flip", 10.0)
            .case(0.8, move |m| m.add(hit, 1))
            .case(0.2, move |m| m.add(miss, 1))
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let sim = SanSimulator::new(san.clone());
        struct Ratio {
            hit: i32,
            miss: i32,
        }
        impl Observer for Ratio {
            fn on_end(&mut self, _t: f64, m: &Marking) {
                self.hit = m.get(crate::marking::PlaceId(0));
                self.miss = m.get(crate::marking::PlaceId(1));
            }
        }
        let mut r = Ratio { hit: 0, miss: 0 };
        sim.run(3, 1000.0, &mut [&mut r]).unwrap();
        let frac = r.hit as f64 / (r.hit + r.miss) as f64;
        assert!((frac - 0.8).abs() < 0.02, "hit fraction {frac}");
    }

    #[test]
    fn disabled_activity_is_cancelled() {
        // Two activities compete for a token; the loser must not fire.
        let mut b = SanBuilder::new("race2");
        let p = b.place("p", 1);
        let a_out = b.place("a_out", 0);
        let b_out = b.place("b_out", 0);
        b.timed_activity("fast", 1000.0)
            .input_arc(p, 1)
            .output_arc(a_out, 1)
            .build()
            .unwrap();
        b.timed_activity("slow", 0.001)
            .input_arc(p, 1)
            .output_arc(b_out, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let sim = SanSimulator::new(san.clone());
        struct Final(i32, i32);
        impl Observer for Final {
            fn on_end(&mut self, _t: f64, m: &Marking) {
                self.0 = m.get(crate::marking::PlaceId(1));
                self.1 = m.get(crate::marking::PlaceId(2));
            }
        }
        let mut f = Final(0, 0);
        let stats = sim.run(5, 10_000.0, &mut [&mut f]).unwrap();
        assert_eq!(stats.timed_firings, 1);
        assert_eq!(f.0 + f.1, 1);
    }

    #[test]
    fn marking_dependent_rate_updates() {
        // Rate doubles when "boost" place has a token; verify the mean
        // firing count responds.
        let mut b = SanBuilder::new("mdr");
        let boost = b.place("boost", 0);
        let count = b.place("count", 0);
        let boost_c = boost;
        b.timed_activity_fn(
            "tick",
            StdArc::new(move |m| if m.get(boost_c) > 0 { 20.0 } else { 1.0 }),
            &[boost],
        )
        .output_arc(count, 1)
        .build()
        .unwrap();
        b.timed_activity("boost_on", 1000.0)
            .predicate(&[boost], move |m| m.get(boost) == 0)
            .output_arc(boost, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let sim = SanSimulator::new(san.clone());
        let stats = sim.run(11, 10.0, &mut []).unwrap();
        // boost turns on almost immediately → ≈ 200 ticks + 1 boost firing.
        assert!(
            stats.timed_firings > 120,
            "rate did not increase: {stats:?}"
        );
    }

    #[test]
    fn sample_times_delivered_in_order() {
        struct Sampler {
            times: Vec<f64>,
        }
        impl Observer for Sampler {
            fn sample_times(&self) -> Vec<f64> {
                vec![1.0, 2.0, 5.0, 50.0]
            }
            fn on_sample(&mut self, time: f64, _m: &Marking) {
                self.times.push(time);
            }
        }
        let san = poisson_model(3.0);
        let sim = SanSimulator::new(san);
        let mut s = Sampler { times: vec![] };
        sim.run(1, 10.0, &mut [&mut s]).unwrap();
        // 50.0 lies beyond the horizon and must not be delivered.
        assert_eq!(s.times, vec![1.0, 2.0, 5.0]);
    }

    #[test]
    fn zero_rate_activity_never_fires() {
        let mut b = SanBuilder::new("zr");
        let p = b.place("p", 1);
        let out = b.place("out", 0);
        let pc = p;
        b.timed_activity_fn("never", StdArc::new(move |_| 0.0), &[pc])
            .input_arc(p, 1)
            .output_arc(out, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let sim = SanSimulator::new(san);
        let stats = sim.run(1, 100.0, &mut []).unwrap();
        assert_eq!(stats.timed_firings, 0);
    }
}

//! Wreath-product marking symmetries: specification, canonicalization,
//! and orbit sizes.
//!
//! A [`SymmetrySpec`] asserts that permuting whole *units* within a
//! group, and whole *blocks* within a unit, maps the model onto itself
//! (same activities, rates, and weights under the induced place
//! permutation). The ITUA composition guarantees this by construction —
//! identical templates are stamped per domain/host/replica and
//! communicate through shared places that the permutation fixes.
//!
//! Two consumers share this module so there is exactly one
//! canonicalization to trust:
//!
//! * `itua_analyzer::reach::explore` explores the quotient reachability
//!   graph (tangible *and* vanishing markings) to prove properties on
//!   orbit representatives.
//! * [`crate::statespace::StateSpace::generate_lumped`] generates the
//!   tangible CTMC directly in canonical form — the exactly-lumped chain
//!   the analytic backend solves.
//!
//! Exact lumpability holds because the group action is a model
//! automorphism: every marking in an orbit has the same total rate into
//! any *other* orbit, so summing a representative's outgoing rates by
//! target orbit yields the quotient CTMC, and any orbit-invariant reward
//! is solved exactly on it.

// ---------------------------------------------------------------------
// Symmetry specification
// ---------------------------------------------------------------------

/// One interchangeable slot inside a [`SymmetryGroup`]: `shared` places
/// belong to the unit as a whole; `blocks` are sub-slots (all of the same
/// length) that are themselves interchangeable *within* the unit.
///
/// For ITUA's domain group, a unit is a domain (`shared` = the
/// domain-level places) and each block is one host's local places. For a
/// replica group, a single unit holds one block per replica slot.
#[derive(Debug, Clone)]
pub struct SymmetryUnit {
    /// Place indices owned by the unit as a whole.
    pub shared: Vec<usize>,
    /// Interchangeable sub-slots; every block has the same length, and
    /// position `j` of one block corresponds to position `j` of every
    /// other (same local place of a different copy).
    pub blocks: Vec<Vec<usize>>,
}

/// A set of interchangeable units. Units must be *congruent*: the same
/// shared length, block count, and block length, with position `j` of one
/// unit corresponding to position `j` of every other.
#[derive(Debug, Clone)]
pub struct SymmetryGroup {
    /// The interchangeable units.
    pub units: Vec<SymmetryUnit>,
}

/// Invalid [`SymmetrySpec`] construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymmetryError {
    /// A group has no units.
    EmptyGroup,
    /// Units within a group (or blocks within a unit) differ in shape.
    ShapeMismatch,
    /// A place index is out of range.
    IndexOutOfRange(usize),
    /// A place index appears in more than one slot.
    Overlap(usize),
}

impl std::fmt::Display for SymmetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetryError::EmptyGroup => write!(f, "symmetry group has no units"),
            SymmetryError::ShapeMismatch => {
                write!(f, "symmetry units/blocks within a group must be congruent")
            }
            SymmetryError::IndexOutOfRange(p) => {
                write!(f, "symmetry spec references place index {p} out of range")
            }
            SymmetryError::Overlap(p) => {
                write!(f, "place index {p} appears in more than one symmetry slot")
            }
        }
    }
}

impl std::error::Error for SymmetryError {}

/// A direct product of wreath-product symmetry groups over disjoint place
/// sets, with canonicalization and orbit-size computation.
#[derive(Debug, Clone)]
pub struct SymmetrySpec {
    groups: Vec<SymmetryGroup>,
    num_places: usize,
}

impl SymmetrySpec {
    /// Validates shapes and disjointness.
    ///
    /// # Errors
    ///
    /// Returns a [`SymmetryError`] if a group is empty, units or blocks
    /// are not congruent, an index is out of range, or a place appears in
    /// more than one slot.
    pub fn new(num_places: usize, groups: Vec<SymmetryGroup>) -> Result<Self, SymmetryError> {
        let mut used = vec![false; num_places];
        let claim = |p: usize, used: &mut Vec<bool>| -> Result<(), SymmetryError> {
            if p >= num_places {
                return Err(SymmetryError::IndexOutOfRange(p));
            }
            if used[p] {
                return Err(SymmetryError::Overlap(p));
            }
            used[p] = true;
            Ok(())
        };
        for g in &groups {
            let Some(first) = g.units.first() else {
                return Err(SymmetryError::EmptyGroup);
            };
            let block_len = first.blocks.first().map_or(0, Vec::len);
            for u in &g.units {
                if u.shared.len() != first.shared.len() || u.blocks.len() != first.blocks.len() {
                    return Err(SymmetryError::ShapeMismatch);
                }
                for b in &u.blocks {
                    if b.len() != block_len {
                        return Err(SymmetryError::ShapeMismatch);
                    }
                    for &p in b {
                        claim(p, &mut used)?;
                    }
                }
                for &p in &u.shared {
                    claim(p, &mut used)?;
                }
            }
        }
        Ok(SymmetrySpec { groups, num_places })
    }

    /// Number of places the spec was built for.
    pub fn num_places(&self) -> usize {
        self.num_places
    }

    /// Rewrites `values` in place to the lexicographically least member of
    /// its orbit: blocks are sorted within each unit, then units are
    /// sorted by their full value key. Idempotent, and invariant under
    /// any permutation of units or of blocks within a unit.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the spec's place count.
    pub fn canonicalize(&self, values: &mut [i32]) {
        assert!(
            values.len() >= self.num_places,
            "marking too short for spec"
        );
        for g in &self.groups {
            for u in &g.units {
                if u.blocks.len() > 1 {
                    let mut blocks: Vec<Vec<i32>> = u
                        .blocks
                        .iter()
                        .map(|b| b.iter().map(|&p| values[p]).collect())
                        .collect();
                    blocks.sort_unstable();
                    for (slot, vals) in u.blocks.iter().zip(&blocks) {
                        for (&p, &x) in slot.iter().zip(vals) {
                            values[p] = x;
                        }
                    }
                }
            }
            if g.units.len() > 1 {
                let mut keys: Vec<Vec<i32>> = g.units.iter().map(|u| unit_key(u, values)).collect();
                keys.sort_unstable();
                for (u, k) in g.units.iter().zip(&keys) {
                    let mut it = k.iter();
                    for &p in &u.shared {
                        values[p] = *it.next().expect("key length matches unit");
                    }
                    for b in &u.blocks {
                        for &p in b {
                            values[p] = *it.next().expect("key length matches unit");
                        }
                    }
                }
            }
        }
    }

    /// The size of the orbit of `values` under the symmetry group:
    /// `Π_groups [ U!/Π cᵢ! · Π_units B!/Π kⱼ! ]` where the `cᵢ` are
    /// multiplicities of identical unit keys and the `kⱼ` multiplicities
    /// of identical blocks within a unit. Saturates at `u128::MAX` for
    /// astronomically symmetric markings.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the spec's place count.
    pub fn orbit_size(&self, values: &[i32]) -> u128 {
        assert!(
            values.len() >= self.num_places,
            "marking too short for spec"
        );
        let mut orbit = 1u128;
        for g in &self.groups {
            let mut keys: Vec<Vec<i32>> = Vec::with_capacity(g.units.len());
            for u in &g.units {
                let mut blocks: Vec<Vec<i32>> = u
                    .blocks
                    .iter()
                    .map(|b| b.iter().map(|&p| values[p]).collect())
                    .collect();
                blocks.sort_unstable();
                orbit = orbit.saturating_mul(distinct_arrangements(&blocks));
                let mut k: Vec<i32> = u.shared.iter().map(|&p| values[p]).collect();
                for b in &blocks {
                    k.extend_from_slice(b);
                }
                keys.push(k);
            }
            keys.sort_unstable();
            orbit = orbit.saturating_mul(distinct_arrangements(&keys));
        }
        orbit
    }

    /// Symmetry class of each place: places mapped onto each other by some
    /// group element share a class id (the smallest member's index);
    /// ungrouped places are singletons. Used to propagate exact per-place
    /// bounds computed on canonical representatives back to every member
    /// of the class.
    pub fn classes(&self) -> Vec<usize> {
        let mut class: Vec<usize> = (0..self.num_places).collect();
        for g in &self.groups {
            let first = &g.units[0];
            for j in 0..first.shared.len() {
                let rep = g
                    .units
                    .iter()
                    .map(|u| u.shared[j])
                    .min()
                    .expect("non-empty");
                for u in &g.units {
                    class[u.shared[j]] = rep;
                }
            }
            let block_len = first.blocks.first().map_or(0, Vec::len);
            for j in 0..block_len {
                let rep = g
                    .units
                    .iter()
                    .flat_map(|u| u.blocks.iter().map(|b| b[j]))
                    .min()
                    .expect("non-empty");
                for u in &g.units {
                    for b in &u.blocks {
                        class[b[j]] = rep;
                    }
                }
            }
        }
        class
    }
}

/// Builds the per-unit sort key: shared values then block values in slot
/// order (blocks are assumed already sorted by [`SymmetrySpec::canonicalize`]).
fn unit_key(u: &SymmetryUnit, values: &[i32]) -> Vec<i32> {
    let mut k: Vec<i32> = u.shared.iter().map(|&p| values[p]).collect();
    for b in &u.blocks {
        k.extend(b.iter().map(|&p| values[p]));
    }
    k
}

/// `n! / Π(run lengths)!` for a *sorted* slice — the number of distinct
/// arrangements of its elements. Saturating.
fn distinct_arrangements<T: Eq>(sorted: &[T]) -> u128 {
    let mut total = 0usize;
    let mut out = 1u128;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        let run = j - i;
        total += run;
        out = out.saturating_mul(binomial(total, run));
        i = j;
    }
    out
}

/// Binomial coefficient with saturating arithmetic.
fn binomial(n: usize, k: usize) -> u128 {
    let k = k.min(n - k);
    let mut res = 1u128;
    for i in 1..=k {
        res = res.saturating_mul((n - k + i) as u128) / (i as u128);
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spec for `n` exchangeable two-place components.
    fn component_spec(n: usize) -> SymmetrySpec {
        let units = (0..n)
            .map(|i| SymmetryUnit {
                shared: vec![2 * i, 2 * i + 1],
                blocks: vec![],
            })
            .collect();
        SymmetrySpec::new(2 * n, vec![SymmetryGroup { units }]).unwrap()
    }

    #[test]
    fn canonicalize_is_idempotent_and_sorts_units() {
        let spec = component_spec(3);
        let mut v = vec![1, 0, 0, 1, 1, 0];
        spec.canonicalize(&mut v);
        // Keys (0,1) < (1,0): the down component sorts first.
        assert_eq!(v, vec![0, 1, 1, 0, 1, 0]);
        let again = {
            let mut w = v.clone();
            spec.canonicalize(&mut w);
            w
        };
        assert_eq!(v, again);
    }

    #[test]
    fn canonicalize_sorts_blocks_within_units_before_units() {
        // One group, two units; each unit: one shared place, two blocks of
        // one place each.
        let units = vec![
            SymmetryUnit {
                shared: vec![0],
                blocks: vec![vec![1], vec![2]],
            },
            SymmetryUnit {
                shared: vec![3],
                blocks: vec![vec![4], vec![5]],
            },
        ];
        let spec = SymmetrySpec::new(6, vec![SymmetryGroup { units }]).unwrap();
        let mut v = vec![7, 5, 2, 7, 9, 1];
        spec.canonicalize(&mut v);
        // Blocks sort within units: (2,5) and (1,9); unit keys
        // (7,2,5) > (7,1,9), so the second unit sorts first.
        assert_eq!(v, vec![7, 1, 9, 7, 2, 5]);
    }

    #[test]
    fn orbit_size_counts_distinct_arrangements() {
        let spec = component_spec(4);
        // All four units identical: orbit 1.
        assert_eq!(spec.orbit_size(&[1, 0, 1, 0, 1, 0, 1, 0]), 1);
        // One down, three up: 4 arrangements.
        assert_eq!(spec.orbit_size(&[0, 1, 1, 0, 1, 0, 1, 0]), 4);
        // Two down, two up: C(4,2) = 6.
        assert_eq!(spec.orbit_size(&[0, 1, 0, 1, 1, 0, 1, 0]), 6);
    }

    #[test]
    fn spec_validation_rejects_bad_shapes() {
        assert_eq!(
            SymmetrySpec::new(2, vec![SymmetryGroup { units: vec![] }]).unwrap_err(),
            SymmetryError::EmptyGroup
        );
        let units = vec![
            SymmetryUnit {
                shared: vec![0],
                blocks: vec![],
            },
            SymmetryUnit {
                shared: vec![1, 2],
                blocks: vec![],
            },
        ];
        assert_eq!(
            SymmetrySpec::new(3, vec![SymmetryGroup { units }]).unwrap_err(),
            SymmetryError::ShapeMismatch
        );
        let units = vec![SymmetryUnit {
            shared: vec![5],
            blocks: vec![],
        }];
        assert_eq!(
            SymmetrySpec::new(3, vec![SymmetryGroup { units }]).unwrap_err(),
            SymmetryError::IndexOutOfRange(5)
        );
        let units = vec![SymmetryUnit {
            shared: vec![0, 0],
            blocks: vec![],
        }];
        assert_eq!(
            SymmetrySpec::new(3, vec![SymmetryGroup { units }]).unwrap_err(),
            SymmetryError::Overlap(0)
        );
    }

    #[test]
    fn classes_unify_corresponding_positions() {
        let units = vec![
            SymmetryUnit {
                shared: vec![0],
                blocks: vec![vec![1], vec![2]],
            },
            SymmetryUnit {
                shared: vec![3],
                blocks: vec![vec![4], vec![5]],
            },
        ];
        let spec = SymmetrySpec::new(7, vec![SymmetryGroup { units }]).unwrap();
        let classes = spec.classes();
        assert_eq!(classes[0], classes[3]); // shared position 0
        assert_eq!(classes[1], classes[2]); // block position 0, unit 0
        assert_eq!(classes[1], classes[4]); // across units
        assert_eq!(classes[1], classes[5]);
        assert_ne!(classes[0], classes[1]);
        assert_eq!(classes[6], 6); // ungrouped singleton
    }
}

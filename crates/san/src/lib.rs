//! Stochastic Activity Networks (SANs), in the style of Möbius.
//!
//! This crate implements the modeling formalism of Sanders & Meyer,
//! *Stochastic Activity Networks: Formal Definitions and Concepts* — the
//! formalism the ITUA paper uses — together with the composition and
//! solution machinery that the (closed-source) Möbius tool provided:
//!
//! * [`marking`] — places and markings (the state of a SAN).
//! * [`model`] — activities (timed and instantaneous), cases, input and
//!   output gates, and the [`model::SanBuilder`].
//! * [`compose`] — **Replicate/Join composed models** with shared places,
//!   flattened into a single SAN for solution.
//! * [`simulator`] — a discrete-event simulator implementing SAN execution
//!   semantics (activity races, reactivation, instantaneous stabilization).
//! * [`reward`] — reward variables: instant-of-time, interval-of-time
//!   (time-averaged), sticky indicators, and event-triggered observations.
//! * [`statespace`] — exhaustive state-space generation that flattens an
//!   all-exponential SAN into a CTMC for `itua-markov` (with on-the-fly
//!   elimination of vanishing markings), plain or symmetry-lumped.
//! * [`sym`] — wreath-product marking symmetries: canonicalization and
//!   orbit sizes, shared by the lumped generator and the analyzer's
//!   quotient explorer.
//!
//! # Example
//!
//! A machine that fails and gets repaired, with availability estimated two
//! ways (simulation and numerical CTMC solution):
//!
//! ```
//! use itua_san::model::SanBuilder;
//! use itua_san::simulator::SanSimulator;
//! use itua_san::reward::TimeAveraged;
//! use itua_san::statespace::StateSpace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SanBuilder::new("machine");
//! let up = b.place("up", 1);
//! let down = b.place("down", 0);
//! b.timed_activity("fail", 1.0)
//!     .input_arc(up, 1)
//!     .output_arc(down, 1)
//!     .build()?;
//! b.timed_activity("repair", 9.0)
//!     .input_arc(down, 1)
//!     .output_arc(up, 1)
//!     .build()?;
//! let san = b.finish()?;
//!
//! // Simulation estimate of unavailability over [0, 50].
//! let sim = SanSimulator::new(san.clone());
//! let mut reward = TimeAveraged::new("unavail", move |m| m.get(down) as f64);
//! sim.run(1, 50.0, &mut [&mut reward])?;
//!
//! // Exact CTMC solution.
//! let ss = StateSpace::generate(&san, 10_000)?;
//! let ctmc = ss.to_ctmc()?;
//! let pi = ctmc.steady_state(1e-12, 100_000)?;
//! let exact: f64 = (0..ss.num_states())
//!     .map(|s| pi[s] * ss.marking(s).get(down) as f64)
//!     .sum();
//! assert!((exact - 0.1).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod marking;
pub mod model;
pub mod reward;
pub mod simulator;
pub mod statespace;
pub mod sym;

pub use compose::{ComposedModel, Node};
pub use marking::{Marking, PlaceId};
pub use model::{San, SanBuilder, SanError};
pub use simulator::SanSimulator;

//! Reward variables: the measures defined on a SAN model.
//!
//! The paper defines measures such as *unavailability for an interval*
//! (time-averaged indicator), *unreliability for an interval* (probability
//! the indicator was ever 1), *number of replicas running at an instant*
//! (instant-of-time), and *fraction of corrupt hosts in an excluded domain*
//! (event-triggered). Each kind is an [`crate::simulator::Observer`] that
//! turns one simulation run into one or more named observations.

use crate::marking::Marking;
use crate::model::ActivityId;
use crate::simulator::Observer;
use itua_stats::timeweighted::TimeWeighted;
use std::sync::Arc;

/// Shared-ownership reward function over a marking.
pub type RewardFn = Arc<dyn Fn(&Marking) -> f64 + Send + Sync>;

/// A named observation produced by a reward variable at the end of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Measure name (may include a suffix such as `@5`).
    pub name: String,
    /// Observed value for this replication.
    pub value: f64,
}

/// A reward variable that can be harvested after a run.
pub trait RewardVariable: Observer {
    /// The observations this variable produced during the last run.
    fn observations(&self) -> Vec<Observation>;

    /// Resets internal state so the variable can observe another run.
    fn reset(&mut self);
}

/// Interval-of-time variable: the time average of `f(marking)` over
/// `[0, horizon]` (e.g. unavailability when `f` is an indicator).
pub struct TimeAveraged {
    name: String,
    f: RewardFn,
    acc: Option<TimeWeighted>,
    result: Option<f64>,
}

impl TimeAveraged {
    /// Creates a time-averaged variable named `name`.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        TimeAveraged {
            name: name.into(),
            f: Arc::new(f),
            acc: None,
            result: None,
        }
    }
}

impl Observer for TimeAveraged {
    fn on_init(&mut self, time: f64, marking: &Marking) {
        self.acc = Some(TimeWeighted::new(time, (self.f)(marking)));
    }

    fn on_event(&mut self, time: f64, _activity: ActivityId, marking: &Marking) {
        if let Some(acc) = &mut self.acc {
            acc.set(time, (self.f)(marking));
        }
    }

    fn on_end(&mut self, time: f64, _marking: &Marking) {
        if let Some(acc) = &self.acc {
            self.result = Some(acc.mean_until(time));
        }
    }
}

impl RewardVariable for TimeAveraged {
    fn observations(&self) -> Vec<Observation> {
        self.result
            .map(|value| Observation {
                name: self.name.clone(),
                value,
            })
            .into_iter()
            .collect()
    }

    fn reset(&mut self) {
        self.acc = None;
        self.result = None;
    }
}

/// Sticky indicator over an interval: 1 if `f(marking) > 0` at any point in
/// `[0, horizon]`, else 0. Averaged over replications this estimates
/// *unreliability*.
pub struct EverTrue {
    name: String,
    f: RewardFn,
    hit: bool,
    done: bool,
}

impl EverTrue {
    /// Creates a sticky-indicator variable named `name`.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        EverTrue {
            name: name.into(),
            f: Arc::new(f),
            hit: false,
            done: false,
        }
    }
}

impl Observer for EverTrue {
    fn on_init(&mut self, _time: f64, marking: &Marking) {
        if (self.f)(marking) > 0.0 {
            self.hit = true;
        }
    }

    fn on_event(&mut self, _time: f64, _activity: ActivityId, marking: &Marking) {
        if !self.hit && (self.f)(marking) > 0.0 {
            self.hit = true;
        }
    }

    fn on_end(&mut self, _time: f64, _marking: &Marking) {
        self.done = true;
    }
}

impl RewardVariable for EverTrue {
    fn observations(&self) -> Vec<Observation> {
        if self.done {
            vec![Observation {
                name: self.name.clone(),
                value: if self.hit { 1.0 } else { 0.0 },
            }]
        } else {
            vec![]
        }
    }

    fn reset(&mut self) {
        self.hit = false;
        self.done = false;
    }
}

/// Instant-of-time variable: the value of `f(marking)` at each time in
/// `times`; produces observations named `name@t`.
pub struct InstantOfTime {
    name: String,
    f: RewardFn,
    times: Vec<f64>,
    samples: Vec<(f64, f64)>,
}

impl InstantOfTime {
    /// Creates an instant-of-time variable sampling at `times` (sorted
    /// ascending).
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty or not sorted.
    pub fn new(
        name: impl Into<String>,
        times: Vec<f64>,
        f: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        assert!(!times.is_empty(), "need at least one sample time");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "sample times must be sorted"
        );
        InstantOfTime {
            name: name.into(),
            f: Arc::new(f),
            times,
            samples: Vec::new(),
        }
    }
}

impl Observer for InstantOfTime {
    fn sample_times(&self) -> Vec<f64> {
        self.times.clone()
    }

    fn on_sample(&mut self, time: f64, marking: &Marking) {
        if self.times.contains(&time) {
            self.samples.push((time, (self.f)(marking)));
        }
    }

    fn on_end(&mut self, time: f64, marking: &Marking) {
        // A run may end (queue drained) before later sample points; the
        // marking can no longer change, so the final value stands in.
        for &t in &self.times {
            if t >= time && !self.samples.iter().any(|&(st, _)| st == t) {
                self.samples.push((t, (self.f)(marking)));
            }
        }
    }
}

impl RewardVariable for InstantOfTime {
    fn observations(&self) -> Vec<Observation> {
        self.samples
            .iter()
            .map(|&(t, v)| Observation {
                name: format!("{}@{t}", self.name),
                value: v,
            })
            .collect()
    }

    fn reset(&mut self) {
        self.samples.clear();
    }
}

/// Event-triggered variable: evaluates `f(marking)` each time one of the
/// named activities fires and reports the *mean* over those firings (no
/// observation if none fired — the estimator handles conditional measures).
pub struct OnActivity {
    name: String,
    activities: Vec<ActivityId>,
    f: RewardFn,
    sum: f64,
    count: u64,
}

impl OnActivity {
    /// Creates an event-triggered variable watching `activities`.
    pub fn new(
        name: impl Into<String>,
        activities: Vec<ActivityId>,
        f: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        OnActivity {
            name: name.into(),
            activities,
            f: Arc::new(f),
            sum: 0.0,
            count: 0,
        }
    }
}

impl Observer for OnActivity {
    fn on_event(&mut self, _time: f64, activity: ActivityId, marking: &Marking) {
        if self.activities.contains(&activity) {
            self.sum += (self.f)(marking);
            self.count += 1;
        }
    }
}

impl RewardVariable for OnActivity {
    fn observations(&self) -> Vec<Observation> {
        if self.count == 0 {
            vec![]
        } else {
            vec![Observation {
                name: self.name.clone(),
                value: self.sum / self.count as f64,
            }]
        }
    }

    fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }
}

/// Accumulated reward: `∫₀ᵀ f(marking) dt` (not divided by the horizon).
///
/// The raw integral behind [`TimeAveraged`]; useful for measures like
/// "expected total replica-hours lost".
pub struct Accumulated {
    name: String,
    f: RewardFn,
    acc: Option<TimeWeighted>,
    result: Option<f64>,
}

impl Accumulated {
    /// Creates an accumulated-reward variable named `name`.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Accumulated {
            name: name.into(),
            f: Arc::new(f),
            acc: None,
            result: None,
        }
    }
}

impl Observer for Accumulated {
    fn on_init(&mut self, time: f64, marking: &Marking) {
        self.acc = Some(TimeWeighted::new(time, (self.f)(marking)));
    }

    fn on_event(&mut self, time: f64, _activity: ActivityId, marking: &Marking) {
        if let Some(acc) = &mut self.acc {
            acc.set(time, (self.f)(marking));
        }
    }

    fn on_end(&mut self, time: f64, _marking: &Marking) {
        if let Some(acc) = &self.acc {
            self.result = Some(acc.integral_until(time));
        }
    }
}

impl RewardVariable for Accumulated {
    fn observations(&self) -> Vec<Observation> {
        self.result
            .map(|value| Observation {
                name: self.name.clone(),
                value,
            })
            .into_iter()
            .collect()
    }

    fn reset(&mut self) {
        self.acc = None;
        self.result = None;
    }
}

/// Time-to-first-event variable: the first time `f(marking) > 0`
/// (conditional — produces no observation in runs where it never
/// happens). Averaged over replications this estimates a mean time to
/// failure restricted to the horizon.
pub struct TimeToFirst {
    name: String,
    f: RewardFn,
    time: Option<f64>,
    done: bool,
}

impl TimeToFirst {
    /// Creates a time-to-first variable named `name`.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        TimeToFirst {
            name: name.into(),
            f: Arc::new(f),
            time: None,
            done: false,
        }
    }
}

impl Observer for TimeToFirst {
    fn on_init(&mut self, time: f64, marking: &Marking) {
        if self.time.is_none() && (self.f)(marking) > 0.0 {
            self.time = Some(time);
        }
    }

    fn on_event(&mut self, time: f64, _activity: ActivityId, marking: &Marking) {
        if self.time.is_none() && (self.f)(marking) > 0.0 {
            self.time = Some(time);
        }
    }

    fn on_end(&mut self, _time: f64, _marking: &Marking) {
        self.done = true;
    }
}

impl RewardVariable for TimeToFirst {
    fn observations(&self) -> Vec<Observation> {
        match (self.done, self.time) {
            (true, Some(t)) => vec![Observation {
                name: self.name.clone(),
                value: t,
            }],
            _ => vec![],
        }
    }

    fn reset(&mut self) {
        self.time = None;
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SanBuilder;
    use crate::simulator::SanSimulator;

    /// p starts 1; activity moves the token to q at rate 1.
    fn flip_model() -> std::sync::Arc<crate::model::San> {
        let mut b = SanBuilder::new("flip");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.timed_activity("move", 1.0)
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build()
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn time_averaged_indicator() {
        let san = flip_model();
        let q = san.place_id("q").unwrap();
        let sim = SanSimulator::new(san);
        // E[fraction of [0,T] with q = 1] = 1 - (1 - e^{-T})/T for rate 1.
        let horizon = 2.0;
        let mut est = itua_stats::online::OnlineStats::new();
        for seed in 0..4000 {
            let mut rv = TimeAveraged::new("frac_q", move |m| m.get(q) as f64);
            sim.run(seed, horizon, &mut [&mut rv]).unwrap();
            let obs = rv.observations();
            assert_eq!(obs.len(), 1);
            est.push(obs[0].value);
        }
        let expected = 1.0 - (1.0 - (-horizon).exp()) / horizon;
        assert!(
            (est.mean() - expected).abs() < 0.01,
            "{} vs {expected}",
            est.mean()
        );
    }

    #[test]
    fn ever_true_estimates_unreliability() {
        let san = flip_model();
        let q = san.place_id("q").unwrap();
        let sim = SanSimulator::new(san);
        // P[token moved by T] = 1 - e^{-T}.
        let horizon = 1.0;
        let mut hits = 0u32;
        let n = 4000;
        for seed in 0..n {
            let mut rv = EverTrue::new("moved", move |m| m.get(q) as f64);
            sim.run(seed, horizon, &mut [&mut rv]).unwrap();
            if rv.observations()[0].value > 0.5 {
                hits += 1;
            }
        }
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (hits as f64 / n as f64 - expected).abs() < 0.02,
            "{hits}/{n}"
        );
    }

    #[test]
    fn instant_of_time_samples() {
        let san = flip_model();
        let q = san.place_id("q").unwrap();
        let sim = SanSimulator::new(san);
        let mut p_at = [0u32; 2]; // estimates at t = 0.5 and 1.5
        let n = 4000;
        for seed in 0..n {
            let mut rv = InstantOfTime::new("q", vec![0.5, 1.5], move |m| m.get(q) as f64);
            sim.run(seed, 2.0, &mut [&mut rv]).unwrap();
            let obs = rv.observations();
            assert_eq!(obs.len(), 2);
            for o in &obs {
                let idx = if o.name == "q@0.5" { 0 } else { 1 };
                if o.value > 0.5 {
                    p_at[idx] += 1;
                }
            }
        }
        let p05 = p_at[0] as f64 / n as f64;
        let p15 = p_at[1] as f64 / n as f64;
        assert!((p05 - (1.0 - (-0.5f64).exp())).abs() < 0.02, "{p05}");
        assert!((p15 - (1.0 - (-1.5f64).exp())).abs() < 0.02, "{p15}");
    }

    #[test]
    fn on_activity_means_over_firings() {
        let mut b = SanBuilder::new("count");
        let total = b.place("total", 0);
        b.timed_activity("tick", 4.0)
            .output_arc(total, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let tick = san.activity_id("tick").unwrap();
        let total = san.place_id("total").unwrap();
        let sim = SanSimulator::new(san);
        let mut rv = OnActivity::new("mean_total", vec![tick], move |m| m.get(total) as f64);
        sim.run(9, 10.0, &mut [&mut rv]).unwrap();
        let obs = rv.observations();
        assert_eq!(obs.len(), 1);
        // After k-th firing total = k, so the mean over n firings is (n+1)/2.
        assert!(obs[0].value > 5.0, "{obs:?}");
    }

    #[test]
    fn on_activity_no_firings_yields_no_observation() {
        let san = flip_model();
        let mv = san.activity_id("move").unwrap();
        let sim = SanSimulator::new(san);
        let mut rv = OnActivity::new("x", vec![mv], |_| 1.0);
        // Horizon 0: nothing fires.
        sim.run(1, 0.0, &mut [&mut rv]).unwrap();
        assert!(rv.observations().is_empty());
    }

    #[test]
    fn accumulated_is_horizon_times_average() {
        let san = flip_model();
        let q = san.place_id("q").unwrap();
        let sim = SanSimulator::new(san);
        let mut acc = Accumulated::new("int_q", move |m| m.get(q) as f64);
        let mut avg = TimeAveraged::new("avg_q", move |m| m.get(q) as f64);
        sim.run(5, 4.0, &mut [&mut acc, &mut avg]).unwrap();
        let a = acc.observations()[0].value;
        let v = avg.observations()[0].value;
        assert!((a - 4.0 * v).abs() < 1e-12, "{a} vs {v}");
    }

    #[test]
    fn time_to_first_matches_exponential() {
        // First time q = 1 is the Exp(1) firing time; its mean conditional
        // on happening within T = E[X | X < T].
        let san = flip_model();
        let q = san.place_id("q").unwrap();
        let sim = SanSimulator::new(san);
        let horizon = 3.0f64;
        let mut sum = 0.0;
        let mut count = 0u32;
        for seed in 0..4000 {
            let mut rv = TimeToFirst::new("t", move |m| m.get(q) as f64);
            sim.run(seed, horizon, &mut [&mut rv]).unwrap();
            if let Some(o) = rv.observations().first() {
                sum += o.value;
                count += 1;
            }
        }
        // E[X | X < T] = (1 − (1 + T)e^{−T}) / (1 − e^{−T}) for Exp(1).
        let expected = (1.0 - (1.0 + horizon) * (-horizon).exp()) / (1.0 - (-horizon).exp());
        let mean = sum / count as f64;
        assert!((mean - expected).abs() < 0.03, "{mean} vs {expected}");
        // Fraction observed ≈ 1 − e^{−T}.
        let frac = count as f64 / 4000.0;
        assert!((frac - (1.0 - (-horizon).exp())).abs() < 0.02);
    }

    #[test]
    fn time_to_first_absent_when_never_triggered() {
        let san = flip_model();
        let sim = SanSimulator::new(san);
        let mut rv = TimeToFirst::new("never", |_| 0.0);
        sim.run(1, 5.0, &mut [&mut rv]).unwrap();
        assert!(rv.observations().is_empty());
    }

    #[test]
    fn reset_clears_state() {
        let san = flip_model();
        let q = san.place_id("q").unwrap();
        let sim = SanSimulator::new(san);
        let mut rv = EverTrue::new("moved", move |m| m.get(q) as f64);
        sim.run(2, 100.0, &mut [&mut rv]).unwrap();
        assert_eq!(rv.observations()[0].value, 1.0);
        rv.reset();
        assert!(rv.observations().is_empty());
    }
}

//! Replication-experiment configuration, Möbius-study style.
//!
//! The execution loop itself lives in the `itua-runner` crate
//! (`itua_runner::run_experiment_parallel`), which runs replications
//! across worker threads with a deterministic chunk-ordered reduction.
//! The bespoke sequential loop that used to live here was retired in its
//! favor — one code path now serves both the single-threaded and parallel
//! cases (a `threads = 1` runner configuration reproduces the historical
//! sequential results bit for bit). This module keeps the shared
//! vocabulary: [`ExperimentConfig`].

use itua_sim::rng::stream_seed;

/// Configuration for a replication experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Simulation horizon per replication.
    pub horizon: f64,
    /// Number of replications.
    pub replications: u32,
    /// Base seed; replication `i` runs with the stream-derived seed
    /// [`stream_seed`]`(base_seed, i)`, so experiments with nearby base
    /// seeds never share replication seeds (the historical `base_seed + i`
    /// scheme overlapped whenever two bases differed by less than the
    /// replication count).
    pub base_seed: u64,
    /// Confidence level for reported intervals.
    pub confidence: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            horizon: 5.0,
            replications: 1000,
            base_seed: 1,
            confidence: 0.95,
        }
    }
}

impl ExperimentConfig {
    /// The seed replication `rep` runs with.
    pub fn seed_for(&self, rep: u32) -> u64 {
        stream_seed(self.base_seed, rep as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_seeds_are_distinct_streams() {
        let cfg = ExperimentConfig::default();
        let a = cfg.seed_for(0);
        let b = cfg.seed_for(1);
        assert_ne!(a, b);
        // Nearby base seeds must not share replication seeds.
        let other = ExperimentConfig {
            base_seed: cfg.base_seed + 1,
            ..cfg
        };
        for i in 0..100 {
            for j in 0..100 {
                assert_ne!(cfg.seed_for(i), other.seed_for(j), "overlap at {i},{j}");
            }
        }
    }
}

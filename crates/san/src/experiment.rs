//! Replication-based experiments: run a SAN many times and estimate reward
//! variables with confidence intervals, Möbius-study style.

use crate::model::SanError;
use crate::reward::RewardVariable;
use crate::simulator::{Observer, SanSimulator};
use itua_sim::rng::stream_seed;
use itua_stats::replication::{Estimate, ReplicationEstimator};

/// Configuration for a replication experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Simulation horizon per replication.
    pub horizon: f64,
    /// Number of replications.
    pub replications: u32,
    /// Base seed; replication `i` runs with the stream-derived seed
    /// [`stream_seed`]`(base_seed, i)`, so experiments with nearby base
    /// seeds never share replication seeds (the historical `base_seed + i`
    /// scheme overlapped whenever two bases differed by less than the
    /// replication count).
    pub base_seed: u64,
    /// Confidence level for reported intervals.
    pub confidence: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            horizon: 5.0,
            replications: 1000,
            base_seed: 1,
            confidence: 0.95,
        }
    }
}

/// Runs `variables` over `config.replications` independent replications and
/// returns the estimates (sorted by measure name).
///
/// # Errors
///
/// Propagates simulator errors ([`SanError::Unstabilized`]).
///
/// # Example
///
/// ```
/// use itua_san::model::SanBuilder;
/// use itua_san::simulator::SanSimulator;
/// use itua_san::reward::TimeAveraged;
/// use itua_san::experiment::{run_experiment, ExperimentConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SanBuilder::new("m");
/// let up = b.place("up", 1);
/// let down = b.place("down", 0);
/// b.timed_activity("fail", 1.0).input_arc(up, 1).output_arc(down, 1).build()?;
/// b.timed_activity("fix", 4.0).input_arc(down, 1).output_arc(up, 1).build()?;
/// let sim = SanSimulator::new(b.finish()?);
///
/// let mut unavail = TimeAveraged::new("unavail", move |m| m.get(down) as f64);
/// let cfg = ExperimentConfig { horizon: 20.0, replications: 200, ..Default::default() };
/// let estimates = run_experiment(&sim, cfg, &mut [&mut unavail])?;
/// assert_eq!(estimates.len(), 1);
/// assert!((estimates[0].ci.mean - 0.2).abs() < 0.05); // steady ≈ 1/5
/// # Ok(())
/// # }
/// ```
pub fn run_experiment(
    sim: &SanSimulator,
    config: ExperimentConfig,
    variables: &mut [&mut dyn RewardVariable],
) -> Result<Vec<Estimate>, SanError> {
    let mut est = ReplicationEstimator::new(config.confidence);
    for rep in 0..config.replications {
        for v in variables.iter_mut() {
            v.reset();
        }
        {
            // Observers borrow mutably for the duration of one run.
            let mut obs: Vec<&mut dyn Observer> = Vec::with_capacity(variables.len());
            for v in variables.iter_mut() {
                obs.push(upcast(*v));
            }
            sim.run(
                stream_seed(config.base_seed, rep as u64),
                config.horizon,
                &mut obs,
            )?;
        }
        for v in variables.iter() {
            for o in v.observations() {
                est.record(&o.name, o.value);
            }
        }
    }
    Ok(est.estimates())
}

fn upcast(v: &mut dyn RewardVariable) -> &mut dyn Observer {
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SanBuilder;
    use crate::reward::{EverTrue, TimeAveraged};

    fn repairable() -> SanSimulator {
        let mut b = SanBuilder::new("m");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", 1.0)
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("fix", 9.0)
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        SanSimulator::new(b.finish().unwrap())
    }

    #[test]
    fn estimates_multiple_measures() {
        let sim = repairable();
        let down = sim.san().place_id("down").unwrap();
        let mut unavail = TimeAveraged::new("unavail", move |m| m.get(down) as f64);
        let mut ever_down = EverTrue::new("ever_down", move |m| m.get(down) as f64);
        let cfg = ExperimentConfig {
            horizon: 50.0,
            replications: 300,
            base_seed: 10,
            confidence: 0.95,
        };
        let estimates = run_experiment(&sim, cfg, &mut [&mut unavail, &mut ever_down]).unwrap();
        assert_eq!(estimates.len(), 2);
        let unavail_est = estimates.iter().find(|e| e.name == "unavail").unwrap();
        // Long horizon → close to steady state 0.1.
        assert!((unavail_est.ci.mean - 0.1).abs() < 0.02, "{unavail_est:?}");
        let ever = estimates.iter().find(|e| e.name == "ever_down").unwrap();
        // Over 50 time units failure is near-certain.
        assert!(ever.ci.mean > 0.99);
    }

    #[test]
    fn reproducible_for_same_seed() {
        let sim = repairable();
        let down = sim.san().place_id("down").unwrap();
        let cfg = ExperimentConfig {
            horizon: 10.0,
            replications: 50,
            base_seed: 3,
            confidence: 0.9,
        };
        let mut v1 = TimeAveraged::new("u", move |m| m.get(down) as f64);
        let a = run_experiment(&sim, cfg, &mut [&mut v1]).unwrap();
        let mut v2 = TimeAveraged::new("u", move |m| m.get(down) as f64);
        let b = run_experiment(&sim, cfg, &mut [&mut v2]).unwrap();
        assert_eq!(a[0].ci.mean, b[0].ci.mean);
    }
}

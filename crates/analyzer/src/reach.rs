//! Exhaustive reachability exploration with optional symmetry reduction.
//!
//! Where [`crate::probe`] samples the reachable set under a marking cap and
//! falls back to seeded walks, this module enumerates *every* reachable
//! marking — tangible and vanishing — from the initial marking, under
//! explicit state and work budgets with structured budget-exceeded errors.
//! On the full reachable set, properties are *proved* rather than probed:
//! a conservation law checked here holds at every reachable marking, not
//! just the ones a bounded probe happened to visit.
//!
//! Two explorers live here:
//!
//! * [`explore`] — the checker's graph: every marking is a node, firings
//!   are edges, and the caller's `on_fire` callback sees each firing once
//!   (same signature as the probe's, so firing laws plug in unchanged).
//!   An optional [`SymmetrySpec`] canonicalizes markings under a
//!   permutation group, exploring the quotient graph instead: for ITUA,
//!   domains are interchangeable, hosts within a domain are
//!   interchangeable, and replica slots within an application are
//!   interchangeable, which shrinks the state count by orders of
//!   magnitude on the paper's configurations. Orbit sizes are tracked so
//!   the unreduced explorer can serve as an oracle (`Σ orbit = full`).
//! * [`tangible_projection`] — an operation-for-operation mirror of
//!   `itua_san::statespace::StateSpace::generate` (same BFS order, same
//!   vanishing-marking resolution, same floating-point evaluation order),
//!   written against the public `San` API only. Its tangible state list
//!   and transition multiset must match the analytic backend's generator
//!   *bit for bit*, making two independently written explorers oracles
//!   for each other.
//!
//! Symmetry soundness: a [`SymmetrySpec`] asserts that permuting whole
//! *units* within a group, and whole *blocks* within a unit, maps the
//! model onto itself (same activities, rates, and weights under the
//! induced place permutation). The ITUA composition guarantees this by
//! construction — identical templates are stamped per domain/host/replica
//! and communicate through shared places that the permutation fixes.
//! Checking a permutation-closed *family* of invariants or laws on each
//! canonical representative is then equivalent to checking it on every
//! member of the orbit.

use crate::probe::OnFire;
use itua_san::marking::Marking;
use itua_san::model::{ActivityId, San, SanError, Timing};
use std::collections::{HashMap, VecDeque};

/// Budgets for one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ReachConfig {
    /// Maximum number of distinct states (tangible + vanishing) interned
    /// before [`ReachError::StateBudget`] is returned.
    pub max_states: usize,
    /// Maximum number of firings performed before
    /// [`ReachError::WorkBudget`] is returned; bounds runtime on graphs
    /// that are narrow in states but dense in edges.
    pub max_work: usize,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig {
            max_states: 1 << 20,
            max_work: 1 << 26,
        }
    }
}

impl ReachConfig {
    /// A config bounded by `max_states`, with the work budget scaled to
    /// a generous constant out-degree.
    pub fn with_max_states(max_states: usize) -> Self {
        ReachConfig {
            max_states,
            max_work: max_states.saturating_mul(64).max(1 << 16),
        }
    }
}

/// Structured failure from exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// More distinct states are reachable than `max_states` allows.
    StateBudget {
        /// The configured state budget.
        max_states: usize,
    },
    /// More firings were needed than `max_work` allows.
    WorkBudget {
        /// The configured work budget.
        max_work: usize,
    },
    /// A timed activity has a general (non-exponential) distribution.
    GeneralTiming {
        /// Activity name.
        activity: String,
    },
    /// A timed activity produced a NaN/infinite/negative rate at a
    /// reachable marking.
    BadRate {
        /// Activity name.
        activity: String,
    },
    /// An enabled activity's case weights were NaN/negative, or summed
    /// to a non-positive total, at a reachable marking.
    BadWeights {
        /// Activity name.
        activity: String,
    },
}

impl std::fmt::Display for ReachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReachError::StateBudget { max_states } => {
                write!(
                    f,
                    "state budget exceeded: more than {max_states} reachable states"
                )
            }
            ReachError::WorkBudget { max_work } => {
                write!(
                    f,
                    "work budget exceeded: more than {max_work} firings explored"
                )
            }
            ReachError::GeneralTiming { activity } => {
                write!(f, "activity '{activity}' has a general distribution; exhaustive checking requires Markovian timing")
            }
            ReachError::BadRate { activity } => {
                write!(
                    f,
                    "activity '{activity}' has a NaN/infinite/negative rate at a reachable marking"
                )
            }
            ReachError::BadWeights { activity } => {
                write!(
                    f,
                    "activity '{activity}' has invalid case weights at a reachable marking"
                )
            }
        }
    }
}

impl std::error::Error for ReachError {}

// ---------------------------------------------------------------------
// Symmetry specification (shared home: itua_san::sym)
// ---------------------------------------------------------------------

// The canonicalizer lives in `itua_san::sym` so the statespace
// generator's lumped mode and this explorer use one implementation;
// re-exported here so existing `reach::SymmetrySpec` paths keep working.
pub use itua_san::sym::{SymmetryError, SymmetryGroup, SymmetrySpec, SymmetryUnit};

// ---------------------------------------------------------------------
// Full explorer (tangible + vanishing states)
// ---------------------------------------------------------------------

/// The fully explored reachability graph (or its symmetry quotient).
#[derive(Debug)]
pub struct ReachGraph {
    /// Every reachable marking (canonical representatives under the
    /// symmetry spec, when one was given), in BFS discovery order.
    pub states: Vec<Vec<i32>>,
    /// Per state: tangible (no instantaneous activity enabled)?
    pub tangible: Vec<bool>,
    /// Per state: orbit size under the symmetry spec (all `1` without one).
    pub orbit_sizes: Vec<u128>,
    /// Per activity index: fired at least once somewhere?
    pub fired: Vec<bool>,
    /// Exact per-place maximum over all reachable markings. With a
    /// symmetry spec, propagated over symmetry classes, so the entry is
    /// the exact bound for the place in the *unquotiented* graph.
    pub place_max: Vec<i32>,
    /// Tangible states with no outgoing firing (absorbing states).
    pub deadlocks: Vec<usize>,
    /// Vanishing states on a zero-time cycle (empty = no livelock).
    /// Every marking here can re-reach itself through instantaneous
    /// firings alone.
    pub vanishing_cycle: Vec<usize>,
    /// Total firings explored (graph edges, multi-edges counted).
    pub num_transitions: usize,
}

impl ReachGraph {
    /// Number of states (quotient states under a symmetry spec).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of tangible states.
    pub fn num_tangible(&self) -> usize {
        self.tangible.iter().filter(|&&t| t).count()
    }

    /// Sum of orbit sizes — with a symmetry spec, the size of the *full*
    /// (unreduced) state space; without one, the state count. Saturating.
    pub fn orbit_total(&self) -> u128 {
        self.orbit_sizes
            .iter()
            .fold(0u128, |acc, &o| acc.saturating_add(o))
    }

    /// Sum of orbit sizes over tangible states only.
    pub fn tangible_orbit_total(&self) -> u128 {
        self.orbit_sizes
            .iter()
            .zip(&self.tangible)
            .filter(|&(_, &t)| t)
            .fold(0u128, |acc, (&o, _)| acc.saturating_add(o))
    }
}

/// Exhaustively explores the reachability graph of `san` from its initial
/// marking, visiting tangible and vanishing markings alike.
///
/// With a [`SymmetrySpec`], every marking is canonicalized before
/// interning and the quotient graph is explored instead; `on_fire` then
/// sees firings *from canonical representatives* (sound for
/// permutation-closed law families, see the module docs).
///
/// `on_fire` receives `(san, activity, case, pre-marking, delta)` for
/// every explored firing — the same shape as the probe's callback, so
/// [`crate::FiringLaw`] closures can be driven by either explorer.
///
/// # Errors
///
/// Returns a structured [`ReachError`] on budget exhaustion
/// (`StateBudget`, `WorkBudget`), general timing, or invalid
/// rates/weights at a reachable marking.
pub fn explore(
    san: &San,
    cfg: &ReachConfig,
    symmetry: Option<&SymmetrySpec>,
    mut on_fire: impl FnMut(&San, ActivityId, usize, &Marking, &[i64]),
) -> Result<ReachGraph, ReachError> {
    explore_dyn(san, cfg, symmetry, &mut on_fire)
}

/// Monomorphization-free core of [`explore`].
fn explore_dyn(
    san: &San,
    cfg: &ReachConfig,
    symmetry: Option<&SymmetrySpec>,
    on_fire: &mut OnFire<'_>,
) -> Result<ReachGraph, ReachError> {
    for (_, act) in san.activities() {
        if matches!(act.timing(), Timing::General(_)) {
            return Err(ReachError::GeneralTiming {
                activity: act.name().to_owned(),
            });
        }
    }

    let num_places = san.num_places();
    let mut index: HashMap<Vec<i32>, usize> = HashMap::new();
    let mut states: Vec<Vec<i32>> = Vec::new();
    let mut orbit_sizes: Vec<u128> = Vec::new();
    let mut frontier: VecDeque<usize> = VecDeque::new();
    let mut place_max = vec![0i32; num_places];

    let mut intern = |mut vals: Vec<i32>,
                      states: &mut Vec<Vec<i32>>,
                      orbit_sizes: &mut Vec<u128>,
                      frontier: &mut VecDeque<usize>,
                      place_max: &mut [i32]|
     -> Result<usize, ReachError> {
        if let Some(sym) = symmetry {
            sym.canonicalize(&mut vals);
        }
        if let Some(&i) = index.get(&vals) {
            return Ok(i);
        }
        if states.len() >= cfg.max_states {
            return Err(ReachError::StateBudget {
                max_states: cfg.max_states,
            });
        }
        let i = states.len();
        for (m, &v) in place_max.iter_mut().zip(&vals) {
            *m = (*m).max(v);
        }
        orbit_sizes.push(symmetry.map_or(1, |s| s.orbit_size(&vals)));
        index.insert(vals.clone(), i);
        states.push(vals);
        frontier.push_back(i);
        Ok(i)
    };

    let init = san.initial_marking().values().to_vec();
    intern(
        init,
        &mut states,
        &mut orbit_sizes,
        &mut frontier,
        &mut place_max,
    )?;

    let mut tangible: Vec<bool> = Vec::new();
    let mut fired = vec![false; san.num_activities()];
    let mut deadlocks: Vec<usize> = Vec::new();
    // Edges out of vanishing states, for the zero-time cycle check.
    let mut van_edges: Vec<(usize, usize)> = Vec::new();
    let mut num_transitions = 0usize;
    let mut work = 0usize;

    while let Some(s) = frontier.pop_front() {
        let vals = states[s].clone();
        let marking = Marking::new(&vals);
        let inst: Vec<ActivityId> = san
            .activities()
            .filter(|(_, a)| a.is_instantaneous() && a.enabled(&marking))
            .map(|(id, _)| id)
            .collect();
        let is_tangible = inst.is_empty();
        debug_assert_eq!(tangible.len(), s);
        tangible.push(is_tangible);

        let mut fired_any = false;
        // Fires every positive-weight case of `act`, interning successors.
        let mut fire_all_cases = |act_id: ActivityId,
                                  states: &mut Vec<Vec<i32>>,
                                  orbit_sizes: &mut Vec<u128>,
                                  frontier: &mut VecDeque<usize>,
                                  place_max: &mut [i32],
                                  fired_any: &mut bool,
                                  van_edges: &mut Vec<(usize, usize)>|
         -> Result<(), ReachError> {
            let act = san.activity(act_id);
            let weights = act.case_weights(&marking);
            let total: f64 = weights.iter().sum();
            if weights.iter().any(|w| !(w.is_finite() && *w >= 0.0))
                || !(total.is_finite() && total > 0.0)
            {
                return Err(ReachError::BadWeights {
                    activity: act.name().to_owned(),
                });
            }
            for (case, &w) in weights.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                work += 1;
                if work > cfg.max_work {
                    return Err(ReachError::WorkBudget {
                        max_work: cfg.max_work,
                    });
                }
                let mut next = Marking::new(&vals);
                act.fire(case, &mut next);
                let nvals = next.values().to_vec();
                let delta: Vec<i64> = nvals
                    .iter()
                    .zip(&vals)
                    .map(|(&a, &b)| i64::from(a) - i64::from(b))
                    .collect();
                on_fire(san, act_id, case, &marking, &delta);
                let t = intern(nvals, states, orbit_sizes, frontier, place_max)?;
                if !is_tangible {
                    van_edges.push((s, t));
                }
                num_transitions += 1;
                *fired_any = true;
                fired[act_id.index()] = true;
            }
            Ok(())
        };

        if is_tangible {
            for (id, act) in san.activities() {
                let Timing::Exponential(rate_fn) = act.timing() else {
                    continue;
                };
                if !act.enabled(&marking) {
                    continue;
                }
                let rate = rate_fn(&marking);
                if !(rate.is_finite() && rate >= 0.0) {
                    return Err(ReachError::BadRate {
                        activity: act.name().to_owned(),
                    });
                }
                if rate == 0.0 {
                    continue;
                }
                fire_all_cases(
                    id,
                    &mut states,
                    &mut orbit_sizes,
                    &mut frontier,
                    &mut place_max,
                    &mut fired_any,
                    &mut van_edges,
                )?;
            }
            if !fired_any {
                deadlocks.push(s);
            }
        } else {
            for &id in &inst {
                fire_all_cases(
                    id,
                    &mut states,
                    &mut orbit_sizes,
                    &mut frontier,
                    &mut place_max,
                    &mut fired_any,
                    &mut van_edges,
                )?;
            }
        }
    }

    // Zero-time livelock: Kahn elimination on the vanishing-only subgraph;
    // states left with positive in-degree sit on an instantaneous cycle.
    let vanishing_cycle = vanishing_cycle_states(&tangible, &van_edges);

    // Propagate exact bounds over symmetry classes: the representative
    // sorts interchangeable slots, so a single slot's max is only exact
    // for the whole class, not for one fixed member.
    if let Some(sym) = symmetry {
        let classes = sym.classes();
        let mut class_max = place_max.clone();
        for (p, &c) in classes.iter().enumerate() {
            class_max[c] = class_max[c].max(place_max[p]);
        }
        for (p, &c) in classes.iter().enumerate() {
            place_max[p] = class_max[c];
        }
    }

    Ok(ReachGraph {
        states,
        tangible,
        orbit_sizes,
        fired,
        place_max,
        deadlocks,
        vanishing_cycle,
        num_transitions,
    })
}

/// States on a cycle of the vanishing-only subgraph, via Kahn elimination.
fn vanishing_cycle_states(tangible: &[bool], van_edges: &[(usize, usize)]) -> Vec<usize> {
    let n = tangible.len();
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(s, t) in van_edges {
        if !tangible[t] {
            adj[s].push(t);
            indeg[t] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| !tangible[i] && indeg[i] == 0).collect();
    let mut remaining: usize = tangible.iter().filter(|&&t| !t).count();
    while let Some(i) = queue.pop() {
        remaining -= 1;
        for &t in &adj[i] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    if remaining == 0 {
        return Vec::new();
    }
    (0..n).filter(|&i| !tangible[i] && indeg[i] > 0).collect()
}

// ---------------------------------------------------------------------
// Tangible projection (statespace.rs mirror)
// ---------------------------------------------------------------------

/// Maximum instantaneous-chain depth during vanishing resolution; must
/// match `itua_san::statespace` for the two generators to agree.
const MAX_VANISHING_DEPTH: usize = 10_000;

/// Work budget for one vanishing resolution (mirror of the statespace
/// generator's scaling).
fn vanishing_budget(max_states: usize) -> usize {
    max_states.saturating_mul(10).max(2 * MAX_VANISHING_DEPTH)
}

/// The reachable *tangible* state space with CTMC rates — the checker's
/// independently written mirror of
/// `itua_san::statespace::StateSpace::generate`.
#[derive(Debug, Clone)]
pub struct TangibleGraph {
    /// Tangible markings in BFS discovery order.
    pub markings: Vec<Vec<i32>>,
    /// `(from, to, rate)` transitions; no self-loops, duplicates kept.
    pub transitions: Vec<(usize, usize, f64)>,
    /// Initial distribution entries, merged and sorted by state index.
    pub initial: Vec<(usize, f64)>,
}

/// Generates the tangible state space of `san`, mirroring the analytic
/// backend's generator operation for operation (same BFS order, same
/// vanishing resolution, same floating-point evaluation order) against
/// the public API only. Used to cross-validate the two explorers: state
/// lists must be identical and transition rates bit-equal.
///
/// # Errors
///
/// The same [`SanError`] family the statespace generator returns:
/// `NonMarkovian`, `StateSpaceTooLarge`, `BadValue`, `Unstabilized`.
pub fn tangible_projection(san: &San, max_states: usize) -> Result<TangibleGraph, SanError> {
    for (_, act) in san.activities() {
        if let Timing::General(_) = act.timing() {
            return Err(SanError::NonMarkovian(act.name().to_owned()));
        }
    }

    let mut index: HashMap<Vec<i32>, usize> = HashMap::new();
    let mut markings: Vec<Vec<i32>> = Vec::new();
    let mut transitions: Vec<(usize, usize, f64)> = Vec::new();
    let mut frontier: VecDeque<usize> = VecDeque::new();

    let intern = |m: Vec<i32>,
                  markings: &mut Vec<Vec<i32>>,
                  index: &mut HashMap<Vec<i32>, usize>,
                  frontier: &mut VecDeque<usize>|
     -> Result<usize, SanError> {
        if let Some(&i) = index.get(&m) {
            return Ok(i);
        }
        if markings.len() >= max_states {
            return Err(SanError::StateSpaceTooLarge(max_states));
        }
        let i = markings.len();
        index.insert(m.clone(), i);
        markings.push(m);
        frontier.push_back(i);
        Ok(i)
    };

    let init_marking = san.initial_marking().values().to_vec();
    let resolved = resolve_vanishing(san, init_marking, max_states)?;
    let mut initial = Vec::new();
    for (m, p) in resolved {
        let i = intern(m, &mut markings, &mut index, &mut frontier)?;
        initial.push((i, p));
    }
    initial.sort_by_key(|&(i, _)| i);
    initial.dedup_by(|a, b| {
        if a.0 == b.0 {
            b.1 += a.1;
            true
        } else {
            false
        }
    });

    while let Some(s) = frontier.pop_front() {
        let marking = Marking::new(&markings[s]);
        for (_, act) in san.activities() {
            let rate_fn = match act.timing() {
                Timing::Exponential(r) => r,
                Timing::Instantaneous => continue,
                Timing::General(_) => unreachable!("checked above"),
            };
            if !act.enabled(&marking) {
                continue;
            }
            let rate = rate_fn(&marking);
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(SanError::BadValue(act.name().to_owned()));
            }
            if rate == 0.0 {
                continue;
            }
            let weights = act.case_weights(&marking);
            let total: f64 = weights.iter().sum();
            if !(total.is_finite() && total > 0.0) {
                return Err(SanError::BadValue(act.name().to_owned()));
            }
            for (case, &w) in weights.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                let mut next = Marking::new(&markings[s]);
                act.fire(case, &mut next);
                let next = next.values().to_vec();
                for (tangible, p) in resolve_vanishing(san, next, max_states)? {
                    let t = intern(tangible, &mut markings, &mut index, &mut frontier)?;
                    if t != s {
                        transitions.push((s, t, rate * (w / total) * p));
                    }
                }
            }
        }
    }

    Ok(TangibleGraph {
        markings,
        transitions,
        initial,
    })
}

/// Distributes a marking over its tangible successors — mirror of the
/// statespace generator's resolution: LIFO work stack, uniform choice
/// among enabled instantaneous activities in ascending-id order,
/// weight-proportional cases, first-encounter merge order.
fn resolve_vanishing(
    san: &San,
    marking: Vec<i32>,
    max_states: usize,
) -> Result<Vec<(Vec<i32>, f64)>, SanError> {
    let budget = vanishing_budget(max_states);
    let mut pops = 0usize;
    let mut result: Vec<(Vec<i32>, f64)> = Vec::new();
    let mut work: Vec<(Vec<i32>, f64, usize)> = vec![(marking, 1.0, 0)];
    while let Some((vals, p, depth)) = work.pop() {
        pops += 1;
        if pops > budget {
            return Err(SanError::StateSpaceTooLarge(max_states));
        }
        if depth > MAX_VANISHING_DEPTH {
            return Err(SanError::Unstabilized { marking: vals });
        }
        let m = Marking::new(&vals);
        let enabled: Vec<ActivityId> = san
            .activities()
            .filter(|(_, a)| a.is_instantaneous() && a.enabled(&m))
            .map(|(id, _)| id)
            .collect();
        if enabled.is_empty() {
            result.push((vals, p));
            continue;
        }
        let share = p / enabled.len() as f64;
        for &id in &enabled {
            let act = san.activity(id);
            let weights = act.case_weights(&m);
            let total: f64 = weights.iter().sum();
            if !(total.is_finite() && total > 0.0) {
                return Err(SanError::BadValue(act.name().to_owned()));
            }
            for (case, &w) in weights.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                let mut next = Marking::new(&vals);
                act.fire(case, &mut next);
                work.push((next.values().to_vec(), share * (w / total), depth + 1));
            }
        }
    }
    // First-encounter merge order, as in the statespace generator.
    let mut index: HashMap<Vec<i32>, usize> = HashMap::new();
    let mut merged: Vec<(Vec<i32>, f64)> = Vec::new();
    for (m, p) in result {
        match index.get(&m) {
            Some(&i) => merged[i].1 += p,
            None => {
                index.insert(m.clone(), merged.len());
                merged.push((m, p));
            }
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itua_san::model::SanBuilder;
    use std::sync::Arc;

    fn repairable(fail: f64, fix: f64) -> Arc<San> {
        let mut b = SanBuilder::new("m");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", fail)
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("fix", fix)
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        b.finish().unwrap()
    }

    /// `n` independent repairable components — state space 2^n, quotient
    /// n+1 under full exchangeability.
    fn n_components(n: usize) -> Arc<San> {
        let mut b = SanBuilder::new("multi");
        for i in 0..n {
            let up = b.place(format!("c{i}/up"), 1);
            let down = b.place(format!("c{i}/down"), 0);
            b.timed_activity(format!("c{i}/fail"), 1.0)
                .input_arc(up, 1)
                .output_arc(down, 1)
                .build()
                .unwrap();
            b.timed_activity(format!("c{i}/fix"), 2.0)
                .input_arc(down, 1)
                .output_arc(up, 1)
                .build()
                .unwrap();
        }
        b.finish().unwrap()
    }

    fn component_spec(n: usize) -> SymmetrySpec {
        let units = (0..n)
            .map(|i| SymmetryUnit {
                shared: vec![2 * i, 2 * i + 1],
                blocks: vec![],
            })
            .collect();
        SymmetrySpec::new(2 * n, vec![SymmetryGroup { units }]).unwrap()
    }

    #[test]
    fn full_exploration_counts_states_and_edges() {
        let san = repairable(1.0, 2.0);
        let g = explore(&san, &ReachConfig::default(), None, |_, _, _, _, _| {}).unwrap();
        assert_eq!(g.num_states(), 2);
        assert_eq!(g.num_tangible(), 2);
        assert_eq!(g.num_transitions, 2);
        assert!(g.deadlocks.is_empty());
        assert!(g.vanishing_cycle.is_empty());
        assert_eq!(g.place_max, vec![1, 1]);
        assert!(g.fired.iter().all(|&f| f));
    }

    #[test]
    fn quotient_matches_full_on_exchangeable_components() {
        let n = 4;
        let san = n_components(n);
        let full = explore(&san, &ReachConfig::default(), None, |_, _, _, _, _| {}).unwrap();
        assert_eq!(full.num_states(), 1 << n);
        let spec = component_spec(n);
        let quot = explore(
            &san,
            &ReachConfig::default(),
            Some(&spec),
            |_, _, _, _, _| {},
        )
        .unwrap();
        assert_eq!(quot.num_states(), n + 1);
        assert_eq!(quot.orbit_total(), (1 << n) as u128);
        assert_eq!(quot.place_max, full.place_max);
    }

    #[test]
    fn state_budget_is_a_structured_error() {
        let san = n_components(5);
        let err = explore(
            &san,
            &ReachConfig {
                max_states: 7,
                max_work: 1 << 20,
            },
            None,
            |_, _, _, _, _| {},
        )
        .unwrap_err();
        assert_eq!(err, ReachError::StateBudget { max_states: 7 });
    }

    #[test]
    fn work_budget_is_a_structured_error() {
        let san = n_components(5);
        let err = explore(
            &san,
            &ReachConfig {
                max_states: 1 << 20,
                max_work: 9,
            },
            None,
            |_, _, _, _, _| {},
        )
        .unwrap_err();
        assert_eq!(err, ReachError::WorkBudget { max_work: 9 });
    }

    #[test]
    fn deadlock_states_are_reported() {
        // One-way: up --fail--> down, no repair.
        let mut b = SanBuilder::new("oneway");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", 1.0)
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let g = explore(&san, &ReachConfig::default(), None, |_, _, _, _, _| {}).unwrap();
        assert_eq!(g.num_states(), 2);
        assert_eq!(g.deadlocks, vec![1]);
    }

    #[test]
    fn vanishing_cycle_is_detected_without_diverging() {
        // Instantaneous toggle p <-> q: the statespace generator diverges
        // to its depth cap here; the graph explorer closes the loop in two
        // states and reports the cycle.
        let mut b = SanBuilder::new("toggle");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.instantaneous_activity("ab")
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build()
            .unwrap();
        b.instantaneous_activity("ba")
            .input_arc(q, 1)
            .output_arc(p, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let g = explore(&san, &ReachConfig::default(), None, |_, _, _, _, _| {}).unwrap();
        assert_eq!(g.num_states(), 2);
        assert_eq!(g.num_tangible(), 0);
        let mut cyc = g.vanishing_cycle.clone();
        cyc.sort_unstable();
        assert_eq!(cyc, vec![0, 1]);
    }

    #[test]
    fn on_fire_sees_every_firing_with_raw_deltas() {
        let san = repairable(1.0, 2.0);
        let mut seen: Vec<(String, Vec<i64>)> = Vec::new();
        explore(
            &san,
            &ReachConfig::default(),
            None,
            |san, act, _case, _pre, delta| {
                seen.push((san.activity(act).name().to_owned(), delta.to_vec()));
            },
        )
        .unwrap();
        seen.sort();
        assert_eq!(
            seen,
            vec![
                ("fail".to_owned(), vec![-1, 1]),
                ("fix".to_owned(), vec![1, -1]),
            ]
        );
    }

    #[test]
    fn tangible_projection_matches_statespace_bit_for_bit() {
        use itua_san::statespace::StateSpace;
        // A model with vanishing markings and case splits exercises every
        // arithmetic path of the resolution.
        let mut b = SanBuilder::new("v");
        let start = b.place("start", 1);
        let a = b.place("a", 0);
        let c = b.place("c", 0);
        let sink = b.place("sink", 0);
        b.instantaneous_activity("branch")
            .input_arc(start, 1)
            .case(0.3, move |m| m.add(a, 1))
            .case(0.7, move |m| m.add(c, 1))
            .build()
            .unwrap();
        b.timed_activity("tick", 1.5)
            .input_arc(a, 1)
            .output_arc(sink, 1)
            .build()
            .unwrap();
        b.timed_activity("tock", 0.5)
            .input_arc(c, 1)
            .output_arc(start, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();

        let ours = tangible_projection(&san, 1000).unwrap();
        let theirs = StateSpace::generate(&san, 1000).unwrap();
        assert_eq!(ours.markings.len(), theirs.num_states());
        for (i, m) in ours.markings.iter().enumerate() {
            assert_eq!(m.as_slice(), theirs.marking(i).values());
        }
        assert_eq!(ours.transitions.len(), theirs.transitions().len());
        for (a, b) in ours.transitions.iter().zip(theirs.transitions()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2.to_bits(), b.2.to_bits(), "rates must be bit-equal");
        }
        let mut init = vec![0.0; ours.markings.len()];
        for &(i, p) in &ours.initial {
            init[i] += p;
        }
        let theirs_init = theirs.initial_distribution();
        for (x, y) in init.iter().zip(&theirs_init) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn tangible_projection_mirrors_statespace_errors() {
        use itua_san::statespace::StateSpace;
        // Unbounded birth process: both must report the same budget error.
        let mut b = SanBuilder::new("grow");
        let n = b.place("n", 0);
        b.timed_activity("birth", 1.0)
            .output_arc(n, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let ours = tangible_projection(&san, 50).unwrap_err();
        let theirs = StateSpace::generate(&san, 50).unwrap_err();
        assert_eq!(ours, theirs);
        assert_eq!(ours, SanError::StateSpaceTooLarge(50));
    }

    #[test]
    fn full_tangible_count_matches_projection() {
        // The graph explorer's tangible states and the projection's state
        // list must agree in count on a model with vanishing markings.
        let mut b = SanBuilder::new("mix");
        let pool = b.place("pool", 2);
        let stage = b.place("stage", 0);
        let done = b.place("done", 0);
        b.timed_activity("pick", 1.0)
            .input_arc(pool, 1)
            .output_arc(stage, 1)
            .build()
            .unwrap();
        b.instantaneous_activity("commit")
            .input_arc(stage, 1)
            .output_arc(done, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let g = explore(&san, &ReachConfig::default(), None, |_, _, _, _, _| {}).unwrap();
        let t = tangible_projection(&san, 1000).unwrap();
        assert_eq!(g.num_tangible(), t.markings.len());
        assert!(
            g.num_states() > t.markings.len(),
            "vanishing states counted too"
        );
    }
}

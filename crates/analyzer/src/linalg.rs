//! Exact linear algebra for invariant computation.
//!
//! Two algorithms:
//!
//! * [`null_space`] — a basis of `{x : M·x = 0}` by Gauss–Jordan
//!   elimination over [`Ratio`], scaled back to coprime integer vectors.
//!   P-invariants are the null space of the delta (incidence) rows;
//!   T-invariants are the null space of the transpose.
//! * [`semipositive_invariants`] — the classic Farkas construction for
//!   nonnegative left-annullers of the incidence matrix, used to derive
//!   structural place bounds. Row growth is bounded by a budget; blowing
//!   the budget aborts the computation (bounds are then reported as not
//!   computed) rather than returning a partial answer.

use crate::ratio::{gcd, Overflow, Ratio};

/// Reduces `rows` to reduced row-echelon form in place and returns the
/// pivot column of each nonzero row, in order.
fn rref(rows: &mut Vec<Vec<Ratio>>) -> Result<Vec<usize>, Overflow> {
    let num_cols = rows.first().map_or(0, Vec::len);
    let mut pivots = Vec::new();
    let mut row = 0;
    for col in 0..num_cols {
        let Some(pivot_row) = (row..rows.len()).find(|&r| !rows[r][col].is_zero()) else {
            continue;
        };
        rows.swap(row, pivot_row);
        let inv = Ratio::ONE.div(rows[row][col])?;
        for cell in rows[row].iter_mut().skip(col) {
            *cell = cell.mul(inv)?;
        }
        // Incidence rows are sparse; skipping zero entries of the pivot
        // row keeps elimination near-linear instead of quadratic.
        let pivot = std::mem::take(&mut rows[row]);
        for (r, other) in rows.iter_mut().enumerate() {
            if r != row && !other[col].is_zero() {
                let factor = other[col];
                for (c, &p) in pivot.iter().enumerate().skip(col) {
                    if !p.is_zero() {
                        other[c] = other[c].sub(p.mul(factor)?)?;
                    }
                }
            }
        }
        rows[row] = pivot;
        pivots.push(col);
        row += 1;
        if row == rows.len() {
            break;
        }
    }
    rows.truncate(row);
    Ok(pivots)
}

/// Scales a rational vector to the unique coprime integer vector with the
/// same direction whose first nonzero entry is positive.
fn integerize(v: &[Ratio]) -> Result<Vec<i64>, Overflow> {
    let mut lcm: i128 = 1;
    for r in v {
        let d = r.denom();
        let g = gcd(lcm, d).max(1);
        lcm = lcm.checked_mul(d / g).ok_or(Overflow)?;
    }
    let mut out = Vec::with_capacity(v.len());
    let mut common: i128 = 0;
    for r in v {
        let scaled = r.numer().checked_mul(lcm / r.denom()).ok_or(Overflow)?;
        common = gcd(common, scaled);
        out.push(scaled);
    }
    common = common.max(1);
    let sign = out.iter().find(|&&x| x != 0).map_or(1, |&x| x.signum());
    out.iter()
        .map(|&x| i64::try_from(sign * x / common).map_err(|_| Overflow))
        .collect()
}

/// A basis of integer vectors spanning `{x : M·x = 0}`, where `M`'s rows
/// are `rows` (each of length `num_cols`).
///
/// Each basis vector is coprime with a positive leading entry, ordered by
/// the free column it corresponds to.
///
/// # Errors
///
/// Returns [`Overflow`] if the exact arithmetic leaves `i128`.
pub fn null_space(rows: &[Vec<i64>], num_cols: usize) -> Result<Vec<Vec<i64>>, Overflow> {
    let mut m: Vec<Vec<Ratio>> = rows
        .iter()
        .map(|r| {
            assert_eq!(r.len(), num_cols, "ragged matrix");
            r.iter().map(|&x| Ratio::int(i128::from(x))).collect()
        })
        .collect();
    let pivots = rref(&mut m)?;
    let mut is_pivot = vec![false; num_cols];
    for &p in &pivots {
        is_pivot[p] = true;
    }
    let mut basis = Vec::new();
    for free in 0..num_cols {
        if is_pivot[free] {
            continue;
        }
        // x[free] = 1; pivot variables read off the RREF rows.
        let mut v = vec![Ratio::ZERO; num_cols];
        v[free] = Ratio::ONE;
        for (row, &p) in pivots.iter().enumerate() {
            v[p] = m[row][free].neg();
        }
        basis.push(integerize(&v)?);
    }
    Ok(basis)
}

/// The Farkas row budget was exceeded (or arithmetic overflowed): the
/// semipositive-invariant computation was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarkasAbort;

impl From<Overflow> for FarkasAbort {
    fn from(_: Overflow) -> Self {
        FarkasAbort
    }
}

/// Semipositive P-invariants by the Farkas algorithm.
///
/// `delta_cols[j]` is one column of the incidence matrix (a transition's
/// effect on every place, length `num_places`). Returns nonnegative,
/// nonzero integer vectors `y` with `y·delta == 0` for every column.
/// Exact duplicates and support-supersets are pruned after each step, so
/// the result is (close to) the minimal-support generating set.
///
/// # Errors
///
/// Returns [`FarkasAbort`] if intermediate row count exceeds `row_budget`
/// or arithmetic overflows; callers should report bounds as not computed.
pub fn semipositive_invariants(
    delta_cols: &[Vec<i64>],
    num_places: usize,
    row_budget: usize,
) -> Result<Vec<Vec<i64>>, FarkasAbort> {
    // Each row is (c, y): c = remaining incidence part, y = the candidate
    // invariant built so far. Start from [C | I].
    let mut rows: Vec<(Vec<i128>, Vec<i128>)> = (0..num_places)
        .map(|p| {
            let c = delta_cols
                .iter()
                .map(|col| i128::from(col[p]))
                .collect::<Vec<_>>();
            let mut y = vec![0i128; num_places];
            y[p] = 1;
            (c, y)
        })
        .collect();

    for j in 0..delta_cols.len() {
        let (zero, nonzero): (Vec<_>, Vec<_>) = rows.drain(..).partition(|(c, _)| c[j] == 0);
        let (pos, neg): (Vec<_>, Vec<_>) = nonzero.into_iter().partition(|(c, _)| c[j] > 0);
        let mut next = zero;
        for (cp, yp) in &pos {
            for (cn, yn) in &neg {
                if next.len() >= row_budget {
                    return Err(FarkasAbort);
                }
                let a = -cn[j]; // > 0, multiplier for the positive row
                let b = cp[j]; // > 0, multiplier for the negative row
                let combine = |u: &[i128], v: &[i128]| -> Result<Vec<i128>, FarkasAbort> {
                    u.iter()
                        .zip(v)
                        .map(|(&x, &y)| {
                            a.checked_mul(x)
                                .and_then(|ax| b.checked_mul(y).and_then(|by| ax.checked_add(by)))
                                .ok_or(FarkasAbort)
                        })
                        .collect()
                };
                let mut c = combine(cp, cn)?;
                let mut y = combine(yp, yn)?;
                let g = c
                    .iter()
                    .chain(y.iter())
                    .fold(0i128, |acc, &x| gcd(acc, x))
                    .max(1);
                for x in c.iter_mut().chain(y.iter_mut()) {
                    *x /= g;
                }
                next.push((c, y));
            }
        }
        prune_supersets(&mut next);
        rows = next;
    }

    let mut out: Vec<Vec<i64>> = Vec::new();
    for (_, y) in rows {
        if y.iter().all(|&x| x == 0) {
            continue;
        }
        let v: Vec<i64> = y
            .iter()
            .map(|&x| i64::try_from(x).map_err(|_| FarkasAbort))
            .collect::<Result<_, _>>()?;
        if !out.contains(&v) {
            out.push(v);
        }
    }
    Ok(out)
}

/// Drops rows whose invariant support strictly contains another row's
/// support (the classic minimality prune that keeps Farkas tractable).
fn prune_supersets(rows: &mut Vec<(Vec<i128>, Vec<i128>)>) {
    if rows.len() > 1024 {
        // Quadratic prune too expensive; rely on the row budget instead.
        return;
    }
    let supports: Vec<Vec<usize>> = rows
        .iter()
        .map(|(_, y)| {
            y.iter()
                .enumerate()
                .filter(|(_, &v)| v != 0)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let is_subset = |a: &[usize], b: &[usize]| a.iter().all(|x| b.binary_search(x).is_ok());
    let keep: Vec<bool> = (0..rows.len())
        .map(|i| {
            !(0..rows.len()).any(|k| {
                k != i
                    && supports[k].len() < supports[i].len()
                    && is_subset(&supports[k], &supports[i])
            })
        })
        .collect();
    let mut idx = 0;
    rows.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_space_of_simple_transfer() {
        // One transition moving a token p -> q: delta row (-1, +1).
        // Null space must be spanned by (1, 1): p + q conserved.
        let basis = null_space(&[vec![-1, 1]], 2).unwrap();
        assert_eq!(basis, vec![vec![1, 1]]);
    }

    #[test]
    fn null_space_of_full_rank_matrix_is_empty() {
        let basis = null_space(&[vec![1, 0], vec![0, 1]], 2).unwrap();
        assert!(basis.is_empty());
    }

    #[test]
    fn null_space_handles_rationals_exactly() {
        // From x + y = 0: x = -y; then 2x + 4y - 6z = 0 gives y = 3z, so
        // the kernel is spanned by (-3, 3, 1).
        let basis = null_space(&[vec![2, 4, -6], vec![1, 1, 0]], 3).unwrap();
        assert_eq!(basis.len(), 1);
        let v = &basis[0];
        assert_eq!(2 * v[0] + 4 * v[1] - 6 * v[2], 0);
        assert_eq!(v[0] + v[1], 0);
        assert_eq!(gcd(gcd(v[0].into(), v[1].into()), v[2].into()), 1);
        assert!(v.iter().find(|&&x| x != 0).copied().unwrap() > 0);
    }

    #[test]
    fn farkas_finds_conservation_in_producer_consumer() {
        // p -> q (delta column (-1, 1)): y = (1, 1) is the only minimal
        // semipositive invariant.
        let invs = semipositive_invariants(&[vec![-1, 1]], 2, 64).unwrap();
        assert_eq!(invs, vec![vec![1, 1]]);
    }

    #[test]
    fn farkas_on_unbounded_net_finds_no_cover_for_growing_place() {
        // A source transition: delta = (+1). No semipositive y annuls it.
        let invs = semipositive_invariants(&[vec![1]], 1, 64).unwrap();
        assert!(invs.is_empty());
    }

    #[test]
    fn farkas_respects_row_budget() {
        // A dense-ish random-ish matrix to force combination growth with a
        // tiny budget.
        let cols = vec![
            vec![1, -1, 1, -1, 1, -1],
            vec![-1, 1, -1, 1, -1, 1],
            vec![1, 1, -1, -1, 1, 1],
        ];
        match semipositive_invariants(&cols, 6, 2) {
            Err(FarkasAbort) => {}
            Ok(rows) => assert!(rows.len() <= 2, "budget must cap growth"),
        }
    }
}

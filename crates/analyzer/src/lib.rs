//! Structural analysis of SAN models.
//!
//! Möbius-family tools sanity-check a model before solving it; this crate
//! does the same for our composed SANs. Because activity effects are
//! opaque closures, the incidence matrix is *observed* by bounded
//! deterministic exploration ([`probe`]) rather than read off the model,
//! then analyzed with exact rational arithmetic ([`ratio`], [`linalg`]):
//!
//! * **P-invariants** — integer place weightings conserved by every
//!   observed transition effect. Conservation laws (hosts per domain,
//!   replicas per application) show up here; a *violated* expected
//!   invariant pinpoints an encoding bug.
//! * **T-invariants** — firing-count vectors with zero net effect.
//! * **Structural bounds** — from semipositive invariants (Farkas), with
//!   potentially unbounded places flagged.
//! * **Deadness / sinks** — structurally dead activities, never-marked
//!   places, activities never enabled within the probe.
//! * **Vanishing hazards** — cycles among instantaneous activities.
//! * **Rate sanity** — NaN/negative/zero rates and case weights at
//!   reachable markings.
//!
//! Model-specific knowledge enters through an [`AnalysisSpec`]: expected
//! invariants, firing laws (pointwise predicates over observed firings),
//! known-issue notes, and an allowlist that downgrades audited findings
//! to soft. [`analyze`] returns an [`AnalysisReport`] whose hard findings
//! are meant to gate simulation (`--check` / `run_measures`).

pub mod linalg;
pub mod probe;
pub mod ratio;
pub mod reach;

use itua_san::marking::{Marking, PlaceId};
use itua_san::model::{ActivityId, San};
use probe::{explore, ProbeConfig, ProbeData, RateIssue};
use std::fmt::Write as _;
use std::sync::Arc;

/// Limits and thresholds for one analysis.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Exploration limits.
    pub probe: ProbeConfig,
    /// Skip invariant computation (null space) above this many places.
    pub invariant_place_cap: usize,
    /// Skip the Farkas bound computation above this many places.
    pub farkas_place_cap: usize,
    /// Farkas intermediate-row budget; exceeding it aborts bounds.
    pub farkas_row_budget: usize,
    /// Maximum invariants spelled out in the rendered report.
    pub max_rendered: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            probe: ProbeConfig::default(),
            invariant_place_cap: 512,
            farkas_place_cap: 128,
            farkas_row_budget: 4096,
            max_rendered: 8,
        }
    }
}

/// An invariant the model is *supposed* to satisfy: `Σ coeff·m(place)`
/// must equal `target` at the initial marking and be conserved by every
/// firing.
#[derive(Debug, Clone)]
pub struct ExpectedInvariant {
    /// Stable finding id (kebab-case).
    pub id: String,
    /// Human description.
    pub description: String,
    /// Weighted places (nonzero coefficients).
    pub terms: Vec<(PlaceId, i64)>,
    /// Required weighted sum.
    pub target: i64,
}

/// A pointwise check over observed firings. Returns a counterexample
/// description if the firing violates the law.
pub type LawFn =
    Arc<dyn Fn(&San, ActivityId, usize, &Marking, &[i64]) -> Option<String> + Send + Sync>;

/// A named firing law.
#[derive(Clone)]
pub struct FiringLaw {
    /// Stable finding id (kebab-case).
    pub id: String,
    /// Human description.
    pub description: String,
    /// The check, invoked per probed firing.
    pub check: LawFn,
}

impl std::fmt::Debug for FiringLaw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FiringLaw({})", self.id)
    }
}

/// An audited finding id: matching findings are downgraded to soft.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The finding id this entry covers.
    pub id: String,
    /// Why the finding is acceptable.
    pub reason: String,
}

/// A documented known issue, always emitted as a soft finding.
#[derive(Debug, Clone)]
pub struct KnownIssue {
    /// Stable finding id.
    pub id: String,
    /// What it concerns.
    pub subject: String,
    /// Description.
    pub detail: String,
}

/// Model-specific analysis inputs.
#[derive(Debug, Clone, Default)]
pub struct AnalysisSpec {
    /// Invariants the model must satisfy.
    pub expected: Vec<ExpectedInvariant>,
    /// Pointwise firing laws.
    pub laws: Vec<FiringLaw>,
    /// Audited finding ids (downgraded to soft).
    pub allow: Vec<AllowEntry>,
    /// Documented known issues (always soft).
    pub notes: Vec<KnownIssue>,
}

/// Finding severity: hard findings gate simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A structural error; `--check` exits nonzero.
    Hard,
    /// Worth a look, does not gate.
    Soft,
}

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable id (kebab-case), the allowlist key.
    pub id: String,
    /// Severity after allowlist application.
    pub severity: Severity,
    /// The place/activity concerned.
    pub subject: String,
    /// Description.
    pub detail: String,
}

/// An integer invariant: weighted sum over places (P) or firing counts
/// (T).
#[derive(Debug, Clone)]
pub struct Invariant {
    /// `(index, coefficient)` pairs with nonzero coefficients. Indices are
    /// place indices for P-invariants, transition indices for
    /// T-invariants.
    pub terms: Vec<(usize, i64)>,
    /// For P-invariants: the conserved weighted token sum at the initial
    /// marking. Zero for T-invariants.
    pub value: i128,
}

impl Invariant {
    /// Number of nonzero coefficients.
    pub fn support(&self) -> usize {
        self.terms.len()
    }
}

/// Labels of the transitions used as T-invariant columns.
#[derive(Debug, Clone)]
pub struct TransitionLabel {
    /// Activity index.
    pub activity: usize,
    /// Case index.
    pub case: usize,
}

/// The result of [`analyze`].
#[derive(Debug)]
pub struct AnalysisReport {
    /// Model name.
    pub model_name: String,
    /// Place count.
    pub num_places: usize,
    /// Activity count.
    pub num_activities: usize,
    /// Markings interned by the probe BFS.
    pub markings_probed: usize,
    /// Whether the BFS hit its cap.
    pub probe_truncated: bool,
    /// Whether invariants were computed (place count under the cap).
    pub invariants_computed: bool,
    /// P-invariant basis (terms over place indices).
    pub p_invariants: Vec<Invariant>,
    /// T-invariant basis (terms over transition indices; see
    /// `transitions`).
    pub t_invariants: Vec<Invariant>,
    /// The transitions serving as T-invariant columns.
    pub transitions: Vec<TransitionLabel>,
    /// Per-place structural bound, if the Farkas computation ran: `None`
    /// entries have no covering semipositive invariant. `None` overall
    /// means bounds were not computed.
    pub place_bounds: Option<Vec<Option<i64>>>,
    /// All findings, hard first.
    pub findings: Vec<Finding>,
    /// Maximum invariants spelled out by [`Self::render`].
    pub rendered_cap: usize,
}

impl AnalysisReport {
    /// Whether any hard finding is present.
    pub fn has_hard_findings(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Hard)
    }

    /// The hard findings.
    pub fn hard_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Hard)
    }

    /// Number of P-invariants with support ≥ 2 (actual conservation laws,
    /// not just constant places).
    pub fn nontrivial_p_invariants(&self) -> usize {
        self.p_invariants
            .iter()
            .filter(|i| i.support() >= 2)
            .count()
    }

    /// Renders the structured report (place/activity names resolved
    /// against `san`, which must be the analyzed model).
    pub fn render(&self, san: &San) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "model '{}': {} places, {} activities",
            self.model_name, self.num_places, self.num_activities
        );
        let _ = writeln!(
            out,
            "probe: {} markings{}",
            self.markings_probed,
            if self.probe_truncated {
                " (frontier truncated; deep behavior sampled by walks)"
            } else {
                " (reachable set exhausted)"
            }
        );
        if self.invariants_computed {
            let _ = writeln!(
                out,
                "P-invariants: {} ({} nontrivial)",
                self.p_invariants.len(),
                self.nontrivial_p_invariants()
            );
            for inv in self
                .p_invariants
                .iter()
                .filter(|i| i.support() >= 2)
                .take(self.rendered_cap)
            {
                let mut line = String::from("  ");
                for (k, &(p, c)) in inv.terms.iter().enumerate() {
                    let name = san.place_name(PlaceId::from_index(p));
                    if k > 0 {
                        line.push_str(if c >= 0 { " + " } else { " - " });
                    } else if c < 0 {
                        line.push('-');
                    }
                    if c.abs() != 1 {
                        let _ = write!(line, "{}·", c.abs());
                    }
                    line.push_str(name);
                }
                let _ = writeln!(out, "{line} = {}", inv.value);
            }
            let _ = writeln!(out, "T-invariants: {}", self.t_invariants.len());
        } else {
            let _ = writeln!(
                out,
                "invariants: skipped ({} places exceeds cap)",
                self.num_places
            );
        }
        match &self.place_bounds {
            Some(bounds) => {
                let covered = bounds.iter().filter(|b| b.is_some()).count();
                let max = bounds.iter().flatten().max().copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "bounds: {covered}/{} places structurally bounded (max bound {max})",
                    bounds.len()
                );
            }
            None => {
                let _ = writeln!(out, "bounds: not computed (model above Farkas cap)");
            }
        }
        let hard = self.hard_findings().count();
        let soft = self.findings.len() - hard;
        let _ = writeln!(out, "findings: {hard} hard, {soft} soft");
        for f in &self.findings {
            let sev = match f.severity {
                Severity::Hard => "HARD",
                Severity::Soft => "soft",
            };
            let _ = writeln!(out, "  [{sev}] {}: {} — {}", f.id, f.subject, f.detail);
        }
        out
    }
}

/// Analyzes `san` under `spec` with limits `cfg`.
pub fn analyze(san: &San, spec: &AnalysisSpec, cfg: &AnalysisConfig) -> AnalysisReport {
    let num_places = san.num_places();
    let mut law_hits: Vec<Finding> = Vec::new();
    let mut delta_violations: Vec<Finding> = Vec::new();

    let data = explore(san, &cfg.probe, |san, act, case, pre, delta| {
        for inv in &spec.expected {
            let dot: i64 = inv.terms.iter().map(|&(p, c)| c * delta[p.index()]).sum();
            if dot != 0 {
                let subject = san.activity(act).name().to_owned();
                if !delta_violations
                    .iter()
                    .any(|f| f.id == inv.id && f.subject == subject)
                {
                    delta_violations.push(Finding {
                        id: inv.id.clone(),
                        severity: Severity::Hard,
                        subject,
                        detail: format!(
                            "firing (case {case}) changes '{}' by {dot:+}: {}",
                            inv.description, "expected invariant violated"
                        ),
                    });
                }
            }
        }
        for law in &spec.laws {
            if let Some(msg) = (law.check)(san, act, case, pre, delta) {
                let subject = san.activity(act).name().to_owned();
                if !law_hits
                    .iter()
                    .any(|f| f.id == law.id && f.subject == subject)
                {
                    law_hits.push(Finding {
                        id: law.id.clone(),
                        severity: Severity::Hard,
                        subject,
                        detail: format!("{}: {msg}", law.description),
                    });
                }
            }
        }
    });

    let mut findings: Vec<Finding> = Vec::new();

    // Expected invariants at the initial marking.
    let initial = san.initial_marking();
    for inv in &spec.expected {
        let got: i64 = inv
            .terms
            .iter()
            .map(|&(p, c)| c * i64::from(initial.get(p)))
            .sum();
        if got != inv.target {
            findings.push(Finding {
                id: inv.id.clone(),
                severity: Severity::Hard,
                subject: "initial marking".to_owned(),
                detail: format!(
                    "'{}' is {got} at the initial marking, expected {}",
                    inv.description, inv.target
                ),
            });
        }
    }
    findings.extend(delta_violations);
    findings.extend(law_hits);

    structural_findings(san, &data, &mut findings);

    // Incidence columns: every distinct observed delta, plus the declared
    // arc effect of never-fired activities whose effects are *fully*
    // declared (no opaque gate or case closures to miss).
    let mut delta_rows: Vec<Vec<i64>> = Vec::new();
    for d in &data.deltas {
        if !delta_rows.contains(&d.delta) {
            delta_rows.push(d.delta.clone());
        }
    }
    for (id, act) in san.activities() {
        if data.fired_count[id.index()] > 0 || act.num_gate_effects() > 0 {
            continue;
        }
        if (0..act.num_cases()).any(|c| act.num_case_effects(c) > 0) {
            continue;
        }
        let mut delta = vec![0i64; num_places];
        for &(p, k) in act.declared_input_arcs() {
            delta[p.index()] -= i64::from(k);
        }
        for &(p, k) in act.declared_output_arcs() {
            delta[p.index()] += i64::from(k);
        }
        if delta.iter().any(|&d| d != 0) && !delta_rows.contains(&delta) {
            delta_rows.push(delta);
        }
    }

    let invariants_computed = num_places <= cfg.invariant_place_cap && !delta_rows.is_empty();
    let mut p_invariants = Vec::new();
    let mut t_invariants = Vec::new();
    let mut transitions = Vec::new();
    if invariants_computed {
        match linalg::null_space(&delta_rows, num_places) {
            Ok(basis) => {
                for v in basis {
                    let terms: Vec<(usize, i64)> = v
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c != 0)
                        .map(|(i, &c)| (i, c))
                        .collect();
                    let value: i128 = terms
                        .iter()
                        .map(|&(p, c)| {
                            i128::from(c) * i128::from(initial.get(PlaceId::from_index(p)))
                        })
                        .sum();
                    p_invariants.push(Invariant { terms, value });
                }
            }
            Err(_) => findings.push(Finding {
                id: "invariant-overflow".to_owned(),
                severity: Severity::Soft,
                subject: "P-invariants".to_owned(),
                detail: "exact arithmetic overflowed; invariant computation aborted".to_owned(),
            }),
        }

        // T-invariants over transitions with a single consistent delta.
        let mut t_cols: Vec<&[i64]> = Vec::new();
        for (a, act) in san.activities() {
            for case in 0..act.num_cases() {
                let mut it = data
                    .deltas
                    .iter()
                    .filter(|d| d.activity == a.index() && d.case == case);
                if let (Some(first), None) = (it.next(), it.next()) {
                    transitions.push(TransitionLabel {
                        activity: a.index(),
                        case,
                    });
                    t_cols.push(&first.delta);
                }
            }
        }
        if !t_cols.is_empty() {
            let rows: Vec<Vec<i64>> = (0..num_places)
                .map(|p| t_cols.iter().map(|col| col[p]).collect())
                .collect();
            match linalg::null_space(&rows, t_cols.len()) {
                Ok(basis) => {
                    for v in basis {
                        let terms: Vec<(usize, i64)> = v
                            .iter()
                            .enumerate()
                            .filter(|(_, &c)| c != 0)
                            .map(|(i, &c)| (i, c))
                            .collect();
                        t_invariants.push(Invariant { terms, value: 0 });
                    }
                }
                Err(_) => findings.push(Finding {
                    id: "invariant-overflow".to_owned(),
                    severity: Severity::Soft,
                    subject: "T-invariants".to_owned(),
                    detail: "exact arithmetic overflowed; invariant computation aborted".to_owned(),
                }),
            }
        }
    }

    // Structural bounds from semipositive invariants.
    let place_bounds = if num_places <= cfg.farkas_place_cap && invariants_computed {
        let cols: Vec<Vec<i64>> = delta_rows.clone();
        match linalg::semipositive_invariants(&cols, num_places, cfg.farkas_row_budget) {
            Ok(invs) => {
                let mut bounds: Vec<Option<i64>> = vec![None; num_places];
                for y in &invs {
                    let total: i128 = y
                        .iter()
                        .enumerate()
                        .map(|(p, &c)| {
                            i128::from(c) * i128::from(initial.get(PlaceId::from_index(p)))
                        })
                        .sum();
                    for (p, &c) in y.iter().enumerate() {
                        if c > 0 {
                            let b = (total / i128::from(c)) as i64;
                            bounds[p] = Some(bounds[p].map_or(b, |prev: i64| prev.min(b)));
                        }
                    }
                }
                let uncovered: Vec<usize> =
                    (0..num_places).filter(|&p| bounds[p].is_none()).collect();
                if !uncovered.is_empty() {
                    let names: Vec<&str> = uncovered
                        .iter()
                        .take(5)
                        .map(|&p| san.place_name(PlaceId::from_index(p)))
                        .collect();
                    findings.push(Finding {
                        id: "no-structural-bound".to_owned(),
                        severity: Severity::Soft,
                        subject: format!("{} places", uncovered.len()),
                        detail: format!(
                            "no semipositive invariant covers: {}{}",
                            names.join(", "),
                            if uncovered.len() > 5 { ", …" } else { "" }
                        ),
                    });
                }
                Some(bounds)
            }
            Err(linalg::FarkasAbort) => {
                findings.push(Finding {
                    id: "bounds-aborted".to_owned(),
                    severity: Severity::Soft,
                    subject: "place bounds".to_owned(),
                    detail: "Farkas row budget exceeded; structural bounds not computed".to_owned(),
                });
                None
            }
        }
    } else {
        None
    };

    // Allowlist: downgrade audited ids; then append documented notes.
    for f in &mut findings {
        if let Some(entry) = spec.allow.iter().find(|e| e.id == f.id) {
            f.severity = Severity::Soft;
            f.detail.push_str(&format!(" [allowed: {}]", entry.reason));
        }
    }
    for note in &spec.notes {
        findings.push(Finding {
            id: note.id.clone(),
            severity: Severity::Soft,
            subject: note.subject.clone(),
            detail: note.detail.clone(),
        });
    }
    findings.sort_by_key(|f| match f.severity {
        Severity::Hard => 0,
        Severity::Soft => 1,
    });

    AnalysisReport {
        model_name: san.name().to_owned(),
        num_places,
        num_activities: san.num_activities(),
        markings_probed: data.markings_seen,
        probe_truncated: data.truncated,
        invariants_computed,
        p_invariants,
        t_invariants,
        transitions,
        place_bounds,
        findings,
        rendered_cap: cfg.max_rendered,
    }
}

/// Deadness, sink, unboundedness, vanishing-cycle, and rate findings from
/// the probe data.
fn structural_findings(san: &San, data: &ProbeData, findings: &mut Vec<Finding>) {
    let num_places = san.num_places();

    // A place has a potential producer if some observed delta is positive
    // on it, some declared output arc targets it, or some never-fired
    // activity has opaque effects (which could do anything).
    let mut has_producer = vec![false; num_places];
    for d in &data.deltas {
        for (p, &v) in d.delta.iter().enumerate() {
            if v > 0 {
                has_producer[p] = true;
            }
        }
    }
    let mut opaque_unfired = false;
    for (id, act) in san.activities() {
        for &(p, _) in act.declared_output_arcs() {
            has_producer[p.index()] = true;
        }
        if data.fired_count[id.index()] == 0
            && (act.num_gate_effects() > 0
                || (0..act.num_cases()).any(|c| act.num_case_effects(c) > 0))
        {
            opaque_unfired = true;
        }
    }

    let initial = san.initial_marking();
    for (id, act) in san.activities() {
        if data.fired_count[id.index()] > 0 {
            continue;
        }
        // Structurally dead: an input arc needs tokens that are not there
        // and can never arrive. Only sound when no unfired opaque effect
        // could be the producer.
        let starved = act
            .declared_input_arcs()
            .iter()
            .find(|&&(p, k)| i64::from(initial.get(p)) < i64::from(k) && !has_producer[p.index()]);
        if let Some(&(p, k)) = starved {
            if !opaque_unfired {
                findings.push(Finding {
                    id: "dead-activity".to_owned(),
                    severity: Severity::Hard,
                    subject: act.name().to_owned(),
                    detail: format!(
                        "input arc needs {k} token(s) in '{}', which starts below that and has no producer",
                        san.place_name(p)
                    ),
                });
                continue;
            }
        }
        if data.enabled_count[id.index()] == 0 {
            findings.push(Finding {
                id: "never-enabled".to_owned(),
                severity: Severity::Soft,
                subject: act.name().to_owned(),
                detail: "never enabled at any probed marking (possibly dead, possibly deep)"
                    .to_owned(),
            });
        }
    }

    // Never-marked sink places: start empty, no observed or declared
    // producer — tokens can never appear (soundness caveat as above, so
    // soft).
    for p in san.place_ids() {
        if initial.get(p) == 0 && !data.ever_positive[p.index()] && !has_producer[p.index()] {
            findings.push(Finding {
                id: "never-marked-place".to_owned(),
                severity: Severity::Soft,
                subject: san.place_name(p).to_owned(),
                detail:
                    "always empty in the probe and no producer observed (dead place or pure flag)"
                        .to_owned(),
            });
        }
    }

    // Witnessed unbounded growth.
    for (id, act) in san.activities() {
        if let Some(delta) = &data.repeat_gain[id.index()] {
            let grown: Vec<&str> = delta
                .iter()
                .enumerate()
                .filter(|(_, &d)| d > 0)
                .map(|(p, _)| san.place_name(PlaceId::from_index(p)))
                .take(4)
                .collect();
            findings.push(Finding {
                id: "unbounded-place".to_owned(),
                severity: Severity::Hard,
                subject: act.name().to_owned(),
                detail: format!(
                    "repeatable nonnegative gain observed; {} grow(s) without bound",
                    grown.join(", ")
                ),
            });
        }
    }

    // Rate and weight sanity.
    for (id, act) in san.activities() {
        for issue in &data.rate_issues[id.index()] {
            let (fid, severity, what) = match issue {
                RateIssue::NonFiniteRate => ("bad-rate", Severity::Hard, "rate is NaN/infinite"),
                RateIssue::NegativeRate => ("bad-rate", Severity::Hard, "rate is negative"),
                RateIssue::ZeroRateWhileEnabled => (
                    "zero-rate",
                    Severity::Soft,
                    "rate is zero while enabled (activity cannot fire there)",
                ),
                RateIssue::BadCaseWeight => (
                    "bad-case-weight",
                    Severity::Hard,
                    "a case weight is NaN/negative/infinite",
                ),
                RateIssue::ZeroTotalWeight => (
                    "zero-case-weight",
                    Severity::Hard,
                    "all case weights are zero while enabled (no case selectable)",
                ),
            };
            findings.push(Finding {
                id: fid.to_owned(),
                severity,
                subject: act.name().to_owned(),
                detail: format!("{what} at a reachable marking"),
            });
        }
    }

    // Cycles among instantaneous activities (vanishing-loop hazard):
    // an edge a→b when a's observed firing adds tokens to a place b reads.
    let inst: Vec<usize> = san
        .activities()
        .filter(|(_, a)| a.is_instantaneous())
        .map(|(id, _)| id.index())
        .collect();
    if !inst.is_empty() {
        let index_of = |a: usize| inst.iter().position(|&x| x == a);
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); inst.len()];
        for d in &data.deltas {
            let Some(from) = index_of(d.activity) else {
                continue;
            };
            for (to, &to_raw) in inst.iter().enumerate() {
                let reads = san.activity(ActivityId::from_index(to_raw)).reads();
                let feeds = d
                    .delta
                    .iter()
                    .enumerate()
                    .any(|(p, &v)| v > 0 && reads.contains(&PlaceId::from_index(p)));
                if feeds && !adj[from].contains(&to) {
                    adj[from].push(to);
                }
            }
        }
        // Kahn: nodes left with in-degree > 0 sit on a cycle.
        let mut indeg = vec![0usize; inst.len()];
        for targets in &adj {
            for &t in targets {
                indeg[t] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..inst.len()).filter(|&n| indeg[n] == 0).collect();
        let mut removed = 0;
        while let Some(n) = queue.pop() {
            removed += 1;
            for &t in &adj[n] {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        if removed < inst.len() {
            let on_cycle: Vec<&str> = (0..inst.len())
                .filter(|&n| indeg[n] > 0)
                .take(5)
                .map(|n| san.activity(ActivityId::from_index(inst[n])).name())
                .collect();
            findings.push(Finding {
                id: "instantaneous-cycle".to_owned(),
                severity: Severity::Soft,
                subject: format!("{} activities", inst.len() - removed),
                detail: format!(
                    "zero-delay cycle among instantaneous activities (vanishing-loop hazard): {}",
                    on_cycle.join(", ")
                ),
            });
        }
    }

    // Probe coverage notes.
    for (id, act) in san.activities() {
        if data.delta_overflow[id.index()] {
            findings.push(Finding {
                id: "delta-overflow".to_owned(),
                severity: Severity::Soft,
                subject: act.name().to_owned(),
                detail: "more distinct firing effects than the probe cap; invariants use a sample"
                    .to_owned(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itua_san::model::SanBuilder;

    /// p(3) --t1--> q --t2--> p: conserves p+q, and firing t1+t2 once is
    /// a T-invariant.
    fn producer_consumer() -> Arc<San> {
        let mut b = SanBuilder::new("pc");
        let p = b.place("p", 3);
        let q = b.place("q", 0);
        b.timed_activity("produce", 1.0)
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build()
            .unwrap();
        b.timed_activity("consume", 2.0)
            .input_arc(q, 1)
            .output_arc(p, 1)
            .build()
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn producer_consumer_invariants_match_hand_derivation() {
        let san = producer_consumer();
        let report = analyze(&san, &AnalysisSpec::default(), &AnalysisConfig::default());
        // Exactly one P-invariant: p + q = 3.
        assert_eq!(report.p_invariants.len(), 1);
        let inv = &report.p_invariants[0];
        assert_eq!(inv.terms, vec![(0, 1), (1, 1)]);
        assert_eq!(inv.value, 3);
        assert_eq!(report.nontrivial_p_invariants(), 1);
        // Exactly one T-invariant: fire each transition once.
        assert_eq!(report.t_invariants.len(), 1);
        assert_eq!(report.t_invariants[0].terms, vec![(0, 1), (1, 1)]);
        // Bounded: both places bounded by 3.
        let bounds = report.place_bounds.as_ref().unwrap();
        assert_eq!(bounds, &vec![Some(3), Some(3)]);
        assert!(!report.has_hard_findings(), "{:?}", report.findings);
    }

    #[test]
    fn live_net_has_no_dead_activity_findings() {
        let san = producer_consumer();
        let report = analyze(&san, &AnalysisSpec::default(), &AnalysisConfig::default());
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.id != "dead-activity" && f.id != "never-enabled"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn structurally_dead_activity_is_a_hard_finding() {
        let mut b = SanBuilder::new("dead");
        let p = b.place("p", 1);
        let empty = b.place("empty", 0);
        let sink = b.place("sink", 0);
        b.timed_activity("live", 1.0)
            .input_arc(p, 1)
            .output_arc(sink, 1)
            .build()
            .unwrap();
        b.timed_activity("starved", 1.0)
            .input_arc(empty, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let report = analyze(&san, &AnalysisSpec::default(), &AnalysisConfig::default());
        let dead: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.id == "dead-activity")
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].subject, "starved");
        assert_eq!(dead[0].severity, Severity::Hard);
        assert!(report.has_hard_findings());
    }

    #[test]
    fn repeatable_gain_is_flagged_unbounded() {
        let mut b = SanBuilder::new("grow");
        let p = b.place("p", 1);
        let heap = b.place("heap", 0);
        b.timed_activity("spawn", 1.0)
            .predicate(&[p], move |m| m.get(p) > 0)
            .output_arc(heap, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let report = analyze(&san, &AnalysisSpec::default(), &AnalysisConfig::default());
        assert!(
            report.findings.iter().any(|f| f.id == "unbounded-place"
                && f.severity == Severity::Hard
                && f.detail.contains("heap")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn bounded_growth_is_not_flagged() {
        // Same shape but capped by a predicate: not unbounded.
        let mut b = SanBuilder::new("capped");
        let heap = b.place("heap", 0);
        b.timed_activity("fill", 1.0)
            .predicate(&[heap], move |m| m.get(heap) < 3)
            .output_arc(heap, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let report = analyze(&san, &AnalysisSpec::default(), &AnalysisConfig::default());
        assert!(
            report.findings.iter().all(|f| f.id != "unbounded-place"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn expected_invariant_violation_is_caught() {
        // Transition turns 1 token of p into 2 of q; claim p+q conserved.
        let mut b = SanBuilder::new("leak");
        let p = b.place("p", 3);
        let q = b.place("q", 0);
        b.timed_activity("dup", 1.0)
            .input_arc(p, 1)
            .output_arc(q, 2)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let spec = AnalysisSpec {
            expected: vec![ExpectedInvariant {
                id: "token-conservation".to_owned(),
                description: "p + q".to_owned(),
                terms: vec![(p, 1), (q, 1)],
                target: 3,
            }],
            ..Default::default()
        };
        let report = analyze(&san, &spec, &AnalysisConfig::default());
        let hits: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.id == "token-conservation")
            .collect();
        assert!(!hits.is_empty());
        assert!(hits.iter().any(|f| f.subject == "dup"));
        assert!(report.has_hard_findings());
    }

    #[test]
    fn allowlist_downgrades_findings_to_soft() {
        let mut b = SanBuilder::new("dead");
        let empty = b.place("empty", 0);
        let p = b.place("p", 1);
        let s = b.place("s", 0);
        b.timed_activity("live", 1.0)
            .input_arc(p, 1)
            .output_arc(s, 1)
            .build()
            .unwrap();
        b.timed_activity("starved", 1.0)
            .input_arc(empty, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let spec = AnalysisSpec {
            allow: vec![AllowEntry {
                id: "dead-activity".to_owned(),
                reason: "intentional in this fixture".to_owned(),
            }],
            ..Default::default()
        };
        let report = analyze(&san, &spec, &AnalysisConfig::default());
        let dead = report
            .findings
            .iter()
            .find(|f| f.id == "dead-activity")
            .unwrap();
        assert_eq!(dead.severity, Severity::Soft);
        assert!(dead.detail.contains("intentional in this fixture"));
        assert!(!report.has_hard_findings());
    }

    #[test]
    fn firing_law_counterexamples_surface() {
        let san = producer_consumer();
        let spec = AnalysisSpec {
            laws: vec![FiringLaw {
                id: "no-produce".to_owned(),
                description: "produce must never fire".to_owned(),
                check: Arc::new(|san, act, _case, _pre, _delta| {
                    (san.activity(act).name() == "produce").then(|| "it fired".to_owned())
                }),
            }],
            ..Default::default()
        };
        let report = analyze(&san, &spec, &AnalysisConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| f.id == "no-produce" && f.severity == Severity::Hard));
    }

    #[test]
    fn instantaneous_cycle_is_flagged_soft() {
        let mut b = SanBuilder::new("flip");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.instantaneous_activity("fwd")
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build()
            .unwrap();
        b.instantaneous_activity("bwd")
            .input_arc(q, 1)
            .output_arc(p, 1)
            .build()
            .unwrap();
        let san = b.finish().unwrap();
        let report = analyze(&san, &AnalysisSpec::default(), &AnalysisConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| f.id == "instantaneous-cycle" && f.severity == Severity::Soft));
    }

    #[test]
    fn notes_are_always_soft_findings() {
        let san = producer_consumer();
        let spec = AnalysisSpec {
            notes: vec![KnownIssue {
                id: "known-gap".to_owned(),
                subject: "demo".to_owned(),
                detail: "documented limitation".to_owned(),
            }],
            ..Default::default()
        };
        let report = analyze(&san, &spec, &AnalysisConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| f.id == "known-gap" && f.severity == Severity::Soft));
        assert!(!report.has_hard_findings());
    }

    #[test]
    fn render_mentions_invariants_and_findings() {
        let san = producer_consumer();
        let report = analyze(&san, &AnalysisSpec::default(), &AnalysisConfig::default());
        let text = report.render(&san);
        assert!(text.contains("P-invariants: 1 (1 nontrivial)"));
        assert!(text.contains("p + q = 3"));
        assert!(text.contains("bounds:"));
    }
}

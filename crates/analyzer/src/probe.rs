//! Bounded deterministic exploration of a SAN's behavior.
//!
//! Activity effects are opaque closures, so the incidence structure
//! cannot be read off the model — it has to be *observed*. The probe
//! explores reachable markings (breadth-first up to a cap, then a few
//! deterministic pseudo-random walks for depth), firing every enabled
//! `(activity, case)` pair and recording the distinct marking deltas each
//! produces. Exploration follows simulator semantics: instantaneous
//! activities pre-empt timed ones (vanishing-marking priority) and only
//! cases with positive weight fire, so every probed marking is reachable
//! and every firing is legal (no negative-token panics).

use itua_san::marking::Marking;
use itua_san::model::{ActivityId, San};
use std::collections::HashSet;

/// Firing callback: `(model, activity, case, pre-marking, delta)`.
pub type OnFire<'a> = dyn FnMut(&San, ActivityId, usize, &Marking, &[i64]) + 'a;

/// Limits for the exploration.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Breadth-first marking cap.
    pub max_markings: usize,
    /// Number of deterministic deep walks after BFS.
    pub num_walks: usize,
    /// Steps per walk.
    pub walk_len: usize,
    /// Distinct deltas recorded per `(activity, case)` before giving up.
    pub max_deltas_per_case: usize,
    /// Additional root markings (beyond the initial marking) to explore
    /// from — for driving the probe into deep scenarios that BFS from the
    /// initial marking cannot reach within the cap. Each must be a valid
    /// nonnegative marking of the model.
    pub extra_roots: Vec<Vec<i32>>,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            max_markings: 2048,
            num_walks: 32,
            walk_len: 128,
            max_deltas_per_case: 64,
            extra_roots: Vec::new(),
        }
    }
}

/// One distinct observed effect of an `(activity, case)` firing.
#[derive(Debug, Clone)]
pub struct CaseDelta {
    /// Activity index.
    pub activity: usize,
    /// Case index within the activity.
    pub case: usize,
    /// Per-place marking change.
    pub delta: Vec<i64>,
    /// How many firings produced this delta.
    pub count: usize,
}

/// A rate or case-weight problem observed at a reachable marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RateIssue {
    /// Exponential rate was NaN or infinite while the activity was
    /// enabled.
    NonFiniteRate,
    /// Exponential rate was negative while enabled.
    NegativeRate,
    /// Exponential rate was exactly zero while enabled (the activity can
    /// never fire from such markings).
    ZeroRateWhileEnabled,
    /// A case weight was NaN, infinite, or negative.
    BadCaseWeight,
    /// All case weights were zero while the activity was enabled (no case
    /// can be selected).
    ZeroTotalWeight,
}

/// What the probe observed.
#[derive(Debug)]
pub struct ProbeData {
    /// Distinct markings interned by the BFS (walks explore past these
    /// without interning).
    pub markings_seen: usize,
    /// Whether the BFS hit `max_markings` before exhausting the frontier.
    pub truncated: bool,
    /// Distinct deltas per `(activity, case)`, in first-observation order.
    pub deltas: Vec<CaseDelta>,
    /// Per activity: markings (BFS) at which it was enabled.
    pub enabled_count: Vec<usize>,
    /// Per activity: total probe firings (BFS expansions + walk steps).
    pub fired_count: Vec<usize>,
    /// Per place: a probed marking held a positive token count.
    pub ever_positive: Vec<bool>,
    /// Per activity: distinct rate/weight issues observed.
    pub rate_issues: Vec<Vec<RateIssue>>,
    /// Per activity: a witnessed repeatable gain — a componentwise
    /// nonnegative, nonzero delta after which the same case is enabled
    /// again (structural unboundedness witness).
    pub repeat_gain: Vec<Option<Vec<i64>>>,
    /// Per activity: more distinct deltas than `max_deltas_per_case`.
    pub delta_overflow: Vec<bool>,
}

impl ProbeData {
    /// Distinct deltas observed for `activity` (any case).
    pub fn deltas_of(&self, activity: usize) -> impl Iterator<Item = &CaseDelta> {
        self.deltas.iter().filter(move |d| d.activity == activity)
    }
}

struct ProbeState<'a> {
    san: &'a San,
    cfg: &'a ProbeConfig,
    data: ProbeData,
}

impl ProbeState<'_> {
    fn push_issue(&mut self, activity: usize, issue: RateIssue) {
        let list = &mut self.data.rate_issues[activity];
        if !list.contains(&issue) {
            list.push(issue);
        }
    }

    /// Activities to expand at `m`: enabled instantaneous ones if any
    /// (vanishing priority), otherwise enabled timed ones.
    fn fireable(&self, m: &Marking) -> Vec<usize> {
        let mut inst = Vec::new();
        let mut timed = Vec::new();
        for (id, a) in self.san.activities() {
            if a.enabled(m) {
                if a.is_instantaneous() {
                    inst.push(id.index());
                } else {
                    timed.push(id.index());
                }
            }
        }
        if inst.is_empty() {
            timed
        } else {
            inst
        }
    }

    /// Fires `(activity, case)` at `pre`, records the delta and sanity
    /// data, and returns the successor values.
    fn fire_recorded(
        &mut self,
        activity: usize,
        case: usize,
        pre: &Marking,
        on_fire: &mut OnFire<'_>,
    ) -> Vec<i32> {
        let id = ActivityId::from_index(activity);
        let act = self.san.activity(id);
        let mut next = Marking::new(pre.values());
        act.fire(case, &mut next);
        let delta: Vec<i64> = next
            .values()
            .iter()
            .zip(pre.values())
            .map(|(&a, &b)| i64::from(a) - i64::from(b))
            .collect();
        self.data.fired_count[activity] += 1;
        for (p, &v) in next.values().iter().enumerate() {
            if v > 0 {
                self.data.ever_positive[p] = true;
            }
        }
        // Distinct-delta bookkeeping (linear scan; the per-case cap keeps
        // the list short).
        let existing = self
            .data
            .deltas
            .iter_mut()
            .find(|d| d.activity == activity && d.case == case && d.delta == delta);
        match existing {
            Some(d) => d.count += 1,
            None => {
                let case_count = self
                    .data
                    .deltas
                    .iter()
                    .filter(|d| d.activity == activity && d.case == case)
                    .count();
                if case_count < self.cfg.max_deltas_per_case {
                    self.data.deltas.push(CaseDelta {
                        activity,
                        case,
                        delta: delta.clone(),
                        count: 1,
                    });
                } else {
                    self.data.delta_overflow[activity] = true;
                }
            }
        }
        // Repeatable gain: a componentwise nonnegative, nonzero delta
        // whose case stays live afterwards can repeat forever. Confirm by
        // replaying the firing several times — a predicate that caps the
        // growth would disable it and clear the witness.
        if self.data.repeat_gain[activity].is_none()
            && delta.iter().all(|&d| d >= 0)
            && delta.iter().any(|&d| d != 0)
        {
            let mut probe = Marking::new(next.values());
            let mut confirmed = true;
            for _ in 0..8 {
                if !(act.enabled(&probe)
                    && act.case_weights(&probe).get(case).copied().unwrap_or(0.0) > 0.0)
                {
                    confirmed = false;
                    break;
                }
                let before: Vec<i32> = probe.values().to_vec();
                act.fire(case, &mut probe);
                let still_gaining = probe.values().iter().zip(&before).all(|(&a, &b)| a >= b)
                    && probe.values().iter().zip(&before).any(|(&a, &b)| a > b);
                if !still_gaining {
                    confirmed = false;
                    break;
                }
            }
            if confirmed {
                self.data.repeat_gain[activity] = Some(delta.clone());
            }
        }
        on_fire(self.san, id, case, pre, &delta);
        next.values().to_vec()
    }

    /// Expands one marking: sanity-checks every fireable activity and
    /// fires every positive-weight case, returning successors.
    fn expand(
        &mut self,
        m: &Marking,
        count_enabled: bool,
        on_fire: &mut OnFire<'_>,
    ) -> Vec<Vec<i32>> {
        let fireable = self.fireable(m);
        if count_enabled {
            for &a in &fireable {
                self.data.enabled_count[a] += 1;
            }
        }
        let mut successors = Vec::new();
        for a in fireable {
            let act = self.san.activity(ActivityId::from_index(a));
            if let Some(rate) = act.rate(m) {
                if !rate.is_finite() {
                    self.push_issue(a, RateIssue::NonFiniteRate);
                    continue;
                } else if rate < 0.0 {
                    self.push_issue(a, RateIssue::NegativeRate);
                    continue;
                } else if rate == 0.0 {
                    self.push_issue(a, RateIssue::ZeroRateWhileEnabled);
                    continue;
                }
            }
            let weights = act.case_weights(m);
            if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                self.push_issue(a, RateIssue::BadCaseWeight);
                continue;
            }
            if weights.iter().sum::<f64>() <= 0.0 {
                self.push_issue(a, RateIssue::ZeroTotalWeight);
                continue;
            }
            for (case, &w) in weights.iter().enumerate() {
                if w > 0.0 {
                    successors.push(self.fire_recorded(a, case, m, on_fire));
                }
            }
        }
        successors
    }
}

/// Explores `san` within `cfg`'s limits, invoking `on_fire` for every
/// probed firing `(model, activity, case, pre-marking, delta)`.
pub fn explore(
    san: &San,
    cfg: &ProbeConfig,
    mut on_fire: impl FnMut(&San, ActivityId, usize, &Marking, &[i64]),
) -> ProbeData {
    let num_places = san.num_places();
    let num_activities = san.num_activities();
    let mut state = ProbeState {
        san,
        cfg,
        data: ProbeData {
            markings_seen: 0,
            truncated: false,
            deltas: Vec::new(),
            enabled_count: vec![0; num_activities],
            fired_count: vec![0; num_activities],
            ever_positive: vec![false; num_places],
            rate_issues: vec![Vec::new(); num_activities],
            repeat_gain: vec![None; num_activities],
            delta_overflow: vec![false; num_activities],
        },
    };

    let initial = san.initial_marking().values().to_vec();
    for (p, &v) in initial.iter().enumerate() {
        if v > 0 {
            state.data.ever_positive[p] = true;
        }
    }

    // Membership-only interning set; iteration order never observed, so
    // the hash container cannot leak nondeterminism (frontier order is the
    // deterministic queue below).
    let mut seen: HashSet<Vec<i32>> = HashSet::new();
    let mut frontier: Vec<Vec<i32>> = Vec::new();
    for root in std::iter::once(&initial).chain(cfg.extra_roots.iter()) {
        assert_eq!(root.len(), num_places, "root marking has wrong arity");
        if seen.insert(root.clone()) {
            frontier.push(root.clone());
        }
    }

    let mut head = 0;
    while head < frontier.len() {
        let values = frontier[head].clone();
        head += 1;
        let m = Marking::new(&values);
        for succ in state.expand(&m, true, &mut on_fire) {
            if seen.len() >= cfg.max_markings {
                state.data.truncated = true;
            } else if seen.insert(succ.clone()) {
                frontier.push(succ);
            }
        }
    }
    state.data.markings_seen = seen.len();

    // Deterministic deep walks: a fixed LCG stream per walk index picks
    // one successor each step; deltas and sanity checks are recorded the
    // same way, but markings are not interned.
    for walk in 0..cfg.num_walks {
        let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(walk as u64 + 1) | 1;
        let root = cfg
            .extra_roots
            .get(walk % (cfg.extra_roots.len() + 1))
            .cloned()
            .unwrap_or_else(|| initial.clone());
        let mut values = root;
        for _ in 0..cfg.walk_len {
            let m = Marking::new(&values);
            let fireable = state.fireable(&m);
            let mut choices: Vec<(usize, usize)> = Vec::new();
            for a in fireable {
                let act = san.activity(ActivityId::from_index(a));
                if let Some(r) = act.rate(&m) {
                    if !(r.is_finite() && r > 0.0) {
                        continue;
                    }
                }
                let weights = act.case_weights(&m);
                if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                    continue;
                }
                for (case, &w) in weights.iter().enumerate() {
                    if w > 0.0 {
                        choices.push((a, case));
                    }
                }
            }
            if choices.is_empty() {
                break;
            }
            lcg = lcg
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let (a, case) = choices[((lcg >> 33) as usize) % choices.len()];
            values = state.fire_recorded(a, case, &m, &mut on_fire);
        }
    }

    state.data
}

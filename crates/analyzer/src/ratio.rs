//! Exact rational arithmetic over `i128` with overflow detection.
//!
//! Invariant computation must be exact — a floating-point null space can
//! both invent and miss conservation laws. All operations are checked:
//! overflow surfaces as [`Overflow`] and the caller reports the
//! computation as aborted instead of returning wrong invariants.

use std::fmt;

/// Arithmetic left the `i128` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow;

impl fmt::Display for Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("exact arithmetic overflowed i128")
    }
}

impl std::error::Error for Overflow {}

/// Greatest common divisor (always nonnegative; `gcd(0, 0) == 0`).
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A reduced fraction `num / den` with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    num: i128,
    den: i128,
}

// The arithmetic methods deliberately shadow the `std::ops` names: they
// are *checked* (Result-returning) like `i128::checked_mul`, so the
// operator traits — which must return `Self` — cannot express them.
#[allow(clippy::should_implement_trait)]
impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// An integer as a ratio.
    pub fn int(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// A reduced fraction. `den` must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Numerator of the reduced form.
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator of the reduced form (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] if any intermediate leaves `i128`.
    pub fn add(self, rhs: Ratio) -> Result<Ratio, Overflow> {
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d)
        // keeps intermediates small.
        let g = gcd(self.den, rhs.den).max(1);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|l| {
                rhs.num
                    .checked_mul(rhs_scale)
                    .and_then(|r| l.checked_add(r))
            })
            .ok_or(Overflow)?;
        let den = self.den.checked_mul(lhs_scale).ok_or(Overflow)?;
        Ok(Ratio::new(num, den))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] if any intermediate leaves `i128`.
    pub fn sub(self, rhs: Ratio) -> Result<Ratio, Overflow> {
        self.add(rhs.neg())
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] if any intermediate leaves `i128`.
    pub fn mul(self, rhs: Ratio) -> Result<Ratio, Overflow> {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2).ok_or(Overflow)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1).ok_or(Overflow)?;
        Ok(Ratio::new(num, den))
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div(self, rhs: Ratio) -> Result<Ratio, Overflow> {
        assert!(!rhs.is_zero(), "division by zero ratio");
        self.mul(Ratio {
            num: rhs.den * rhs.num.signum(),
            den: rhs.num.abs(),
        })
    }

    /// Negation.
    pub fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_and_normalizes_sign() {
        let r = Ratio::new(4, -6);
        assert_eq!(r.numer(), -2);
        assert_eq!(r.denom(), 3);
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn exact_field_ops() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a.add(b).unwrap(), Ratio::new(1, 2));
        assert_eq!(a.sub(b).unwrap(), Ratio::new(1, 6));
        assert_eq!(a.mul(b).unwrap(), Ratio::new(1, 18));
        assert_eq!(a.div(b).unwrap(), Ratio::int(2));
        assert_eq!(a.neg(), Ratio::new(-1, 3));
    }

    #[test]
    fn overflow_is_detected_not_wrapped() {
        let big = Ratio::int(i128::MAX);
        assert_eq!(big.mul(Ratio::int(2)), Err(Overflow));
        assert_eq!(big.add(Ratio::ONE), Err(Overflow));
    }

    #[test]
    fn gcd_conventions() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(7, 0), 7);
    }

    #[test]
    fn displays_integers_without_denominator() {
        assert_eq!(Ratio::int(5).to_string(), "5");
        assert_eq!(Ratio::new(1, 2).to_string(), "1/2");
    }
}

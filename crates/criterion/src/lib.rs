//! Vendored benchmark-harness shim.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` crate cannot be resolved. This crate provides the subset of
//! criterion's API the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::default().sample_size(..)`,
//! `bench_function`, `benchmark_group`, `BenchmarkId::from_parameter`,
//! `black_box`, `Bencher::iter` — with a simple wall-clock measurement:
//! per benchmark it runs one warm-up iteration, sizes batches so a sample
//! takes ≳1 ms, collects `sample_size` samples, and prints
//! median/min/max per-iteration times.
//!
//! Pass `--quick` (or set `CRITERION_SHIM_QUICK=1`) to run every benchmark
//! body exactly once — useful as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: holds measurement settings and prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
            || std::env::var_os("CRITERION_SHIM_QUICK").is_some();
        Criterion {
            sample_size: 100,
            quick,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.quick, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named benchmark parameter, as in criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a parameter's `Display` form.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), p),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.sample_size, self.criterion.quick, f);
        self
    }

    /// Finishes the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    quick: bool,
    /// Median/min/max per-iteration time, filled by `iter`.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Measures `f`, running it in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            self.result = Some((Duration::ZERO, Duration::ZERO, Duration::ZERO));
            return;
        }
        // Warm-up + batch sizing: aim for ≥1 ms per sample so timer
        // resolution does not dominate fast bodies.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            per_iter.push(start.elapsed() / self.iters_per_sample as u32);
        }
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((median, per_iter[0], per_iter[per_iter.len() - 1]));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, quick: bool, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples,
        quick,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, min, max)) if !quick => println!(
            "{id:<50} time: [{} {} {}]",
            fmt_dur(min),
            fmt_dur(median),
            fmt_dur(max)
        ),
        Some(_) => println!("{id:<50} ok (quick mode, 1 iteration)"),
        None => println!("{id:<50} (no measurement: closure never called iter)"),
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark of this group once.
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default().sample_size(3);
        c.quick = false;
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion::default().sample_size(50);
        c.quick = true;
        let mut calls = 0u64;
        c.bench_function("quick", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default().sample_size(2);
        c.quick = true;
        let mut g = c.benchmark_group("grp");
        g.bench_function(BenchmarkId::from_parameter(42), |b| b.iter(|| 1 + 1));
        g.bench_function(BenchmarkId::new("f", "x"), |b| b.iter(|| 2 + 2));
        g.finish();
    }
}

//! RESTART-style importance splitting for rare-event estimation.
//!
//! The paper's headline measures — unreliability and probability of domain
//! exhaustion — are tiny probabilities at realistic attack rates, where
//! naive Monte Carlo needs millions of replications per sweep point. This
//! crate implements the classic fixed-splitting variant of RESTART
//! (Villén-Altamirano & Villén-Altamirano): an *importance level* function
//! partitions the state space into nested regions that the rare event is
//! reached through; when a trajectory crosses a threshold upward it is
//! *split* into `factor` branches (each carrying `1/factor` of the parent's
//! likelihood weight), and when a branch falls back below the threshold it
//! spawned at it plays symmetric Russian roulette — it survives with
//! probability `1/factor` and multiplies its weight back by `factor`, or
//! dies. The weight process is a martingale, so any path functional
//! measured at the horizon is estimated without bias; splitting only
//! reallocates simulation effort toward the rare region, shrinking the
//! variance per simulated event.
//!
//! The crate is deliberately backend-agnostic: the scheduler in
//! [`run_tree`] drives anything implementing [`SplitBranch`] (one clonable
//! in-flight trajectory) and never looks inside the simulator. The ITUA
//! discrete-event and SAN backends implement `SplitBranch` in `itua-core`,
//! and `itua-runner` folds the resulting weighted leaves into the weighted
//! replication estimator.
//!
//! # Determinism
//!
//! Every branch created by a split is reseeded from a third tier of the
//! hierarchical splitmix64 streams: branch `b` of the replication with root
//! seed `s` runs on `stream_seed(s, b)` (branch 0 — the root — keeps its
//! original stream so that a run in which nothing crosses a threshold is
//! bit-identical to the plain replication path). Branch indices are
//! allocated in the deterministic depth-first order of the scheduler, so a
//! split tree is a pure function of `(root seed, splitting spec)` —
//! independent of thread count, batch size, and wall-clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

/// Maps a simulator state to its importance level.
///
/// Levels are small non-negative integers; level `0` is the initial
/// region and higher levels are "closer" to the rare event. The function
/// must be memoryless — a pure function of the current state — because the
/// scheduler re-evaluates it after every event.
pub trait LevelFn<S: ?Sized> {
    /// The importance level of `state`.
    fn level(&self, state: &S) -> u32;
}

impl<S: ?Sized, F: Fn(&S) -> u32> LevelFn<S> for F {
    fn level(&self, state: &S) -> u32 {
        self(state)
    }
}

/// One in-flight trajectory that the splitting scheduler can step, clone,
/// reseed, and finish.
///
/// A branch owns everything a trajectory needs: simulator state, pending
/// events, its random stream, and its partially accumulated observations.
/// `Clone` must produce an independent deep copy — after a split the two
/// branches share no mutable state.
pub trait SplitBranch: Clone {
    /// The per-trajectory output produced when the branch reaches the
    /// horizon.
    type Output;
    /// Error type surfaced by [`SplitBranch::step`].
    type Error;

    /// Advances the trajectory by one event. Returns `Ok(false)` once the
    /// horizon is reached (after which [`SplitBranch::finish`] may be
    /// called), `Ok(true)` while events remain.
    fn step(&mut self) -> Result<bool, Self::Error>;

    /// The current importance level of the trajectory.
    fn level(&self) -> u32;

    /// Replaces the branch's random stream with a fresh one derived from
    /// `seed`. Called exactly once on every branch created by a split;
    /// never called on the root branch.
    fn reseed(&mut self, seed: u64);

    /// Draws one Bernoulli(`p`) from the branch's own stream: the Russian
    /// roulette survival trial.
    fn survives(&mut self, p: f64) -> bool;

    /// Consumes the finished branch and produces its output.
    fn finish(self) -> Self::Output;
}

/// One splitting threshold: crossing `threshold` upward splits the
/// trajectory into `factor` branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitLevel {
    /// Importance level at or above which the split fires (crossing from
    /// `< threshold` to `>= threshold`).
    pub threshold: u32,
    /// Number of branches each crossing trajectory becomes (≥ 2).
    pub factor: u32,
}

/// A full splitting configuration: strictly increasing thresholds, each
/// with its splitting factor.
///
/// Parsed from the `--split-levels` command-line spec, e.g. `"1x8,2x4"`:
/// split 8-ways on reaching level 1 and a further 4-ways on reaching
/// level 2. The canonical [`fmt::Display`] form round-trips through
/// [`SplitSpec::from_str`] and is embedded verbatim in store fingerprints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SplitSpec {
    levels: Vec<SplitLevel>,
}

/// Error produced when parsing a `--split-levels` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSplitSpecError(String);

impl fmt::Display for ParseSplitSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad split spec: {}", self.0)
    }
}

impl std::error::Error for ParseSplitSpecError {}

impl SplitSpec {
    /// A spec with no thresholds: splitting degenerates to plain
    /// replication (single-branch trees, weight 1).
    pub fn none() -> Self {
        SplitSpec { levels: Vec::new() }
    }

    /// Builds a spec from explicit levels.
    ///
    /// # Errors
    ///
    /// Rejects factors below 2 (a factor-1 "split" would consume roulette
    /// randomness without splitting, breaking the no-split bit-identity
    /// guarantee) and thresholds that are zero or not strictly increasing.
    pub fn from_levels(levels: Vec<SplitLevel>) -> Result<Self, ParseSplitSpecError> {
        for pair in levels.windows(2) {
            if pair[1].threshold <= pair[0].threshold {
                return Err(ParseSplitSpecError(format!(
                    "thresholds must be strictly increasing ({} then {})",
                    pair[0].threshold, pair[1].threshold
                )));
            }
        }
        for l in &levels {
            if l.threshold == 0 {
                return Err(ParseSplitSpecError(
                    "threshold 0 is the initial region and cannot be crossed upward".to_owned(),
                ));
            }
            if l.factor < 2 {
                return Err(ParseSplitSpecError(format!(
                    "factor must be at least 2, got {}",
                    l.factor
                )));
            }
        }
        Ok(SplitSpec { levels })
    }

    /// The configured thresholds, in increasing order.
    pub fn levels(&self) -> &[SplitLevel] {
        &self.levels
    }

    /// Whether the spec has no thresholds (plain replication).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

impl FromStr for SplitSpec {
    type Err = ParseSplitSpecError;

    /// Parses `"<threshold>x<factor>[,<threshold>x<factor>...]"`, e.g.
    /// `"1x8,2x4"`. The empty string and `"none"` parse to the empty spec.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(SplitSpec::none());
        }
        let mut levels = Vec::new();
        for part in s.split(',') {
            let (t, f) = part
                .split_once('x')
                .ok_or_else(|| ParseSplitSpecError(format!("'{part}' is not <level>x<factor>")))?;
            let threshold: u32 = t
                .trim()
                .parse()
                .map_err(|_| ParseSplitSpecError(format!("'{t}' is not a level number")))?;
            let factor: u32 = f
                .trim()
                .parse()
                .map_err(|_| ParseSplitSpecError(format!("'{f}' is not a factor")))?;
            levels.push(SplitLevel { threshold, factor });
        }
        SplitSpec::from_levels(levels)
    }
}

impl fmt::Display for SplitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.levels.is_empty() {
            return write!(f, "none");
        }
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}x{}", l.threshold, l.factor)?;
        }
        Ok(())
    }
}

/// Hard cap on the number of branches a single split tree may create.
///
/// An over-aggressive spec (large factors, many thresholds) could otherwise
/// explode a single replication into millions of branches. Hitting the cap
/// suppresses further splitting — branches keep running with their weight
/// untouched, so the estimator stays unbiased; only the variance reduction
/// saturates.
pub const MAX_BRANCHES_PER_TREE: u32 = 4096;

/// Effort and shape accounting for one split tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Simulator events stepped, summed over all branches.
    pub steps: u64,
    /// Branches created (1 for a tree that never split).
    pub branches: u32,
    /// Branches that reached the horizon and produced an output.
    pub leaves: u32,
    /// Branches killed by Russian roulette.
    pub killed: u32,
}

struct BranchRun<B> {
    branch: B,
    weight: f64,
    /// Thresholds this branch has split through, innermost last. Falling
    /// below `spawn.last()` triggers roulette against that level's factor.
    spawn: Vec<SplitLevel>,
}

/// Runs one complete split tree from `root` and appends each surviving
/// leaf's `(weight, output)` to `out`.
///
/// The root branch is branch 0 and keeps its own stream; branch `b > 0`
/// runs on `stream_seed(rep_seed, b)` where indices are assigned in the
/// deterministic order branches are created. Branches execute serially
/// (depth-first, most recent split first) inside the caller's replication
/// slot, so the surrounding chunk-ordered reduction keeps results
/// bit-identical at any thread count.
///
/// With an empty `spec` the tree is exactly one branch stepping to the
/// horizon: no clone, no reseed, no roulette draw — bit-identical to the
/// plain replication path.
///
/// # Errors
///
/// Propagates the first error returned by [`SplitBranch::step`].
pub fn run_tree<B: SplitBranch>(
    root: B,
    rep_seed: u64,
    spec: &SplitSpec,
    out: &mut Vec<(f64, B::Output)>,
) -> Result<TreeStats, B::Error> {
    let mut stats = TreeStats {
        branches: 1,
        ..TreeStats::default()
    };
    let mut next_branch: u64 = 1;
    let mut stack = vec![BranchRun {
        branch: root,
        weight: 1.0,
        spawn: Vec::new(),
    }];

    'branches: while let Some(mut run) = stack.pop() {
        loop {
            let before = run.branch.level();
            let running = run.branch.step()?;
            stats.steps += 1;
            let after = run.branch.level();

            if after > before {
                // Collect the thresholds crossed upward, lowest first, and
                // split once per threshold. A multi-level jump multiplies
                // the factors; the branch budget caps the expansion.
                let mut mult: u32 = 1;
                for level in &spec.levels {
                    if before < level.threshold && level.threshold <= after {
                        let next = mult.saturating_mul(level.factor);
                        // Accepting this threshold means `next - 1` clones in
                        // total for this crossing; stop splitting when that
                        // would blow the tree's branch budget (the weight
                        // stays untouched, so the estimator stays unbiased).
                        if stats.branches.saturating_add(next - 1) > MAX_BRANCHES_PER_TREE {
                            break;
                        }
                        run.weight /= f64::from(level.factor);
                        run.spawn.push(*level);
                        mult = next;
                    }
                }
                for _ in 1..mult {
                    let mut clone = BranchRun {
                        branch: run.branch.clone(),
                        weight: run.weight,
                        spawn: run.spawn.clone(),
                    };
                    clone
                        .branch
                        .reseed(itua_sim::rng::stream_seed(rep_seed, next_branch));
                    next_branch += 1;
                    stats.branches += 1;
                    stack.push(clone);
                }
            } else if after < before {
                // Symmetric Russian roulette on each threshold fallen below,
                // innermost first.
                while let Some(level) = run.spawn.last().copied() {
                    if after >= level.threshold {
                        break;
                    }
                    if run.branch.survives(1.0 / f64::from(level.factor)) {
                        run.weight *= f64::from(level.factor);
                        run.spawn.pop();
                    } else {
                        stats.killed += 1;
                        continue 'branches;
                    }
                }
            }

            if !running {
                stats.leaves += 1;
                out.push((run.weight, run.branch.finish()));
                continue 'branches;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itua_sim::rng::{stream_seed, Rng};

    /// A toy trajectory for exercising the scheduler: a deterministic
    /// level path driven by a shared script, plus its own RNG for roulette.
    #[derive(Clone)]
    struct ScriptBranch {
        script: Vec<u32>,
        pos: usize,
        rng: Rng,
        id_trail: Vec<u64>,
    }

    impl ScriptBranch {
        fn new(script: &[u32], seed: u64) -> Self {
            ScriptBranch {
                script: script.to_vec(),
                pos: 0,
                rng: Rng::seed_from_u64(seed),
                id_trail: vec![seed],
            }
        }
    }

    impl SplitBranch for ScriptBranch {
        type Output = (u32, Vec<u64>);
        type Error = std::convert::Infallible;

        fn step(&mut self) -> Result<bool, Self::Error> {
            self.pos += 1;
            Ok(self.pos < self.script.len())
        }

        fn level(&self) -> u32 {
            self.script[self.pos.min(self.script.len() - 1)]
        }

        fn reseed(&mut self, seed: u64) {
            self.rng = Rng::seed_from_u64(seed);
            self.id_trail.push(seed);
        }

        fn survives(&mut self, p: f64) -> bool {
            self.rng.bernoulli(p)
        }

        fn finish(self) -> Self::Output {
            (self.level(), self.id_trail)
        }
    }

    fn spec(s: &str) -> SplitSpec {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["1x8", "1x8,2x4", "2x16,5x2,9x3"] {
            assert_eq!(spec(s).to_string(), s);
        }
        assert!(spec("none").is_empty());
        assert!(spec("").is_empty());
        assert_eq!(SplitSpec::none().to_string(), "none");
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for s in ["1", "x8", "1x1", "0x4", "2x4,1x4", "1x4,1x4", "ax4", "1xb"] {
            assert!(s.parse::<SplitSpec>().is_err(), "accepted '{s}'");
        }
    }

    #[test]
    fn empty_spec_is_single_leaf_weight_one() {
        let mut out = Vec::new();
        let stats = run_tree(
            ScriptBranch::new(&[0, 1, 2, 1, 0], 7),
            7,
            &SplitSpec::none(),
            &mut out,
        )
        .unwrap();
        assert_eq!(stats.branches, 1);
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.killed, 0);
        assert_eq!(stats.steps, 5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1.0);
        // Root branch never reseeded.
        assert_eq!(out[0].1 .1, vec![7]);
    }

    #[test]
    fn upward_crossing_splits_with_weight_division() {
        // Script rises to level 1 and stays: 4-way split, no roulette.
        let mut out = Vec::new();
        let stats = run_tree(ScriptBranch::new(&[0, 1, 1], 3), 3, &spec("1x4"), &mut out).unwrap();
        assert_eq!(stats.branches, 4);
        assert_eq!(stats.leaves, 4);
        assert_eq!(out.len(), 4);
        let total: f64 = out.iter().map(|(w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-12, "weights sum to 1, got {total}");
        for (w, _) in &out {
            assert_eq!(*w, 0.25);
        }
        // Clones got tier-3 seeds; the root kept its own.
        let trails: Vec<&Vec<u64>> = out.iter().map(|(_, o)| &o.1).collect();
        assert!(trails.contains(&&vec![3]));
        for b in 1..4u64 {
            assert!(trails.contains(&&vec![3, stream_seed(3, b)]));
        }
    }

    #[test]
    fn multi_level_jump_multiplies_factors() {
        // 0 → 2 in one step crosses both thresholds: 2 × 3 = 6 branches.
        let mut out = Vec::new();
        let stats = run_tree(
            ScriptBranch::new(&[0, 2, 2], 11),
            11,
            &spec("1x2,2x3"),
            &mut out,
        )
        .unwrap();
        assert_eq!(stats.branches, 6);
        assert_eq!(out.len(), 6);
        let total: f64 = out.iter().map(|(w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roulette_kills_or_reweights() {
        // Rise to 1 (split 8-ways), fall back to 0, then finish: every
        // branch faces one roulette trial at p = 1/8. Summed over survivors
        // the expected total weight is 1; check the martingale numerically
        // over many seeds.
        let mut grand_total = 0.0;
        let trees = 400;
        for seed in 0..trees {
            let mut out = Vec::new();
            run_tree(
                ScriptBranch::new(&[0, 1, 0, 0], seed),
                seed,
                &spec("1x8"),
                &mut out,
            )
            .unwrap();
            grand_total += out.iter().map(|(w, _)| w).sum::<f64>();
        }
        let mean = grand_total / f64::from(trees as u32);
        assert!((mean - 1.0).abs() < 0.25, "roulette biased: mean {mean}");
    }

    #[test]
    fn tree_is_reproducible() {
        let run = |seed: u64| {
            let mut out = Vec::new();
            let stats = run_tree(
                ScriptBranch::new(&[0, 1, 0, 1, 2, 0, 1], seed),
                seed,
                &spec("1x4,2x2"),
                &mut out,
            )
            .unwrap();
            let weights: Vec<u64> = out.iter().map(|(w, _)| w.to_bits()).collect();
            (stats, weights)
        };
        assert_eq!(run(42), run(42));
        assert!(!run(42).1.is_empty());
    }

    #[test]
    fn branch_cap_suppresses_splitting() {
        // An oscillating script with huge factors would explode without the
        // cap; with it, the tree stays bounded and weights stay positive.
        let script: Vec<u32> = (0..200).map(|i| [0, 1][i % 2]).collect();
        let mut out = Vec::new();
        let stats = run_tree(ScriptBranch::new(&script, 5), 5, &spec("1x64"), &mut out).unwrap();
        assert!(stats.branches <= MAX_BRANCHES_PER_TREE);
        for (w, _) in &out {
            assert!(*w > 0.0);
        }
    }
}

//! The determinism lint: a text-level scan of the result-affecting
//! crates for patterns that historically break bit-identical
//! reproducibility.
//!
//! The workspace's contract is that every estimate is a pure function of
//! `(params, seed)` — identical across thread counts, process runs, and
//! machines. Four patterns routinely violate that contract:
//!
//! * **hash-container** — `HashMap`/`HashSet` iteration order is
//!   randomly seeded per process; any iteration that feeds estimates,
//!   output files, or state numbering scrambles results run-to-run.
//! * **wall-clock** — `Instant`/`SystemTime` reads must never influence
//!   simulated time, seeds, or estimates.
//! * **unordered-reduction** — `f64` addition is not associative; a
//!   `.sum()`/`.fold()` over an unordered iterator (hash-map values,
//!   parallel iterators) depends on visit order.
//! * **float-truncation** — rounding/truncating `as` casts on float
//!   paths (`.round() as i32`, `as f32`) silently change measures.
//!
//! A fifth rule, **unsafe-block**, is orthogonal to determinism: the
//! workspace is unsafe-free by policy, and the rule locks that in over
//! *every* crate (including the CLI layer and the vendored shims, which
//! are exempt from the determinism rules).
//!
//! The lint is deliberately *text-level* (no syn, no rustc plumbing —
//! the build environment is offline): it strips comments and string
//! literals, skips `#[cfg(test)]` items, and flags token patterns per
//! line. False positives are expected and handled by the allowlist file
//! [`ALLOWLIST_FILE`] at the workspace root: one `rule path #
//! justification` line per audited (rule, file) pair. An entry that no
//! longer matches any finding is *stale* and fails the lint, so the
//! allowlist can only shrink with the code.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Allowlist file name, resolved against the workspace root.
pub const ALLOWLIST_FILE: &str = "determinism.allow";

/// Source directories scanned by the lint: every crate whose code can
/// influence reported results (simulation, statistics, model, runner,
/// solver, studies, analyzer). The CLI/bench layer and the vendored
/// proptest/criterion shims are exempt from the determinism rules but
/// still covered by the `unsafe-block` rule via [`UNSAFE_ONLY_DIRS`].
pub const SCAN_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/stats/src",
    "crates/san/src",
    "crates/core/src",
    "crates/runner/src",
    "crates/markov/src",
    "crates/studies/src",
    "crates/analyzer/src",
    "crates/rare/src",
    "crates/scenario/src",
];

/// Directories exempt from the determinism rules (CLI layer, build
/// tooling, vendored test shims) but still scanned by the
/// `unsafe-block` rule: the workspace is unsafe-free by policy, with no
/// exemptions.
pub const UNSAFE_ONLY_DIRS: &[&str] = &[
    "crates/bench/src",
    "crates/xtask/src",
    "crates/proptest/src",
    "crates/criterion/src",
];

/// One flagged line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`hash-container`, `wall-clock`, …).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings not covered by the allowlist — these fail the lint.
    pub violations: Vec<Finding>,
    /// Findings suppressed by an allowlist entry.
    pub allowed: Vec<Finding>,
    /// Allowlist entries that matched no finding — these also fail.
    pub stale: Vec<String>,
}

impl Outcome {
    /// Whether the tree passes: no violations and no stale entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for f in &self.violations {
            let _ = writeln!(
                s,
                "error[{}]: {}:{}: {}\n  {}",
                f.rule,
                f.path,
                f.line,
                rule_message(f.rule),
                f.excerpt
            );
        }
        for entry in &self.stale {
            let _ = writeln!(
                s,
                "error[stale-allow]: allowlist entry '{entry}' matches no finding; remove it"
            );
        }
        let _ = writeln!(
            s,
            "determinism lint: {} violation(s), {} allowed finding(s), {} stale entr(ies)",
            self.violations.len(),
            self.allowed.len(),
            self.stale.len()
        );
        s
    }
}

fn rule_message(rule: &str) -> &'static str {
    match rule {
        "hash-container" => {
            "HashMap/HashSet in result-affecting code: iteration order is randomly \
             seeded per process. Use BTreeMap/BTreeSet or insertion-order indexing, \
             or allowlist the audited membership-only use"
        }
        "wall-clock" => {
            "Instant/SystemTime in result-affecting code: wall-clock reads must \
             never influence simulated time, seeds, or estimates"
        }
        "unordered-reduction" => {
            "floating-point reduction over an unordered iterator: f64 addition is \
             not associative, so the result depends on visit order"
        }
        "float-truncation" => {
            "value-changing float cast: rounding/truncating casts silently change \
             measures; audit the site and allowlist it"
        }
        "unsafe-block" => {
            "`unsafe` in the workspace: the entire tree is unsafe-free by policy \
             (no FFI, no hand-rolled concurrency primitives); rewrite in safe Rust"
        }
        _ => "unknown rule",
    }
}

/// A rule: stable id plus the per-line predicate on stripped source.
type Rule = (&'static str, fn(&str) -> bool);

const RULES: &[Rule] = &[
    ("hash-container", flags_hash_container),
    ("wall-clock", flags_wall_clock),
    ("unordered-reduction", flags_unordered_reduction),
    ("float-truncation", flags_float_truncation),
    ("unsafe-block", flags_unsafe_block),
];

/// The subset of [`RULES`] applied in [`UNSAFE_ONLY_DIRS`].
const UNSAFE_ONLY_RULES: &[Rule] = &[("unsafe-block", flags_unsafe_block)];

fn flags_hash_container(line: &str) -> bool {
    has_word(line, "HashMap") || has_word(line, "HashSet")
}

fn flags_wall_clock(line: &str) -> bool {
    has_word(line, "Instant") || has_word(line, "SystemTime")
}

fn flags_unordered_reduction(line: &str) -> bool {
    if line.contains("par_iter") {
        return true;
    }
    let unordered = line.contains(".values()") || line.contains(".keys()");
    let reduces = line.contains(".sum(") || line.contains(".fold(") || line.contains(".product(");
    unordered && reduces
}

fn flags_unsafe_block(line: &str) -> bool {
    // Word-delimited, so `unsafe_code` (as in `#![forbid(unsafe_code)]`)
    // does not match; `unsafe {`, `unsafe fn`, `unsafe impl` all do.
    has_word(line, "unsafe")
}

fn flags_float_truncation(line: &str) -> bool {
    if has_word(line, "f32") && line.contains(" as f32") {
        return true;
    }
    let rounds = [".round(", ".floor(", ".ceil(", ".trunc("]
        .iter()
        .any(|p| line.contains(p));
    let casts_integral = line.contains(" as i") || line.contains(" as u");
    rounds && casts_integral
}

/// Whether `line` contains `word` delimited by non-identifier characters
/// (so `Instant` does not match `Instantaneous`).
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let i = start + pos;
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let j = i + word.len();
        let after_ok = j >= bytes.len() || !is_ident_byte(bytes[j]);
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replaces comments and string/char-literal contents with spaces,
/// preserving every newline so line numbers survive.
fn strip_code(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    // Blanks out[from..to], keeping newlines.
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |p| i + p);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i.min(bytes.len()));
            }
            b'r' | b'b' if !prev_is_ident(bytes, i) && raw_string_hashes(bytes, i).is_some() => {
                let (open_len, hashes) = raw_string_hashes(bytes, i).expect("checked by guard");
                let start = i;
                i += open_len;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < bytes.len() && !bytes[i..].starts_with(&closer) {
                    i += 1;
                }
                i = (i + closer.len()).min(bytes.len());
                blank(&mut out, start, i);
            }
            b'\'' => {
                // Char literal (`'x'`, `'\n'`, `'"'`) vs lifetime (`'a`).
                if bytes.get(i + 1) == Some(&b'\\') {
                    let start = i;
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(bytes.len());
                    blank(&mut out, start, i);
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("blanking is ASCII-preserving")
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(bytes[i - 1])
}

/// If `bytes[i..]` opens a raw (byte) string, returns
/// `(opener length, hash count)`.
fn raw_string_hashes(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

/// Per-line "is test code" flags: every line of an item annotated
/// `#[cfg(test)]` (attribute line through the item's closing brace or
/// terminating semicolon). Operates on stripped source so the marker in
/// a comment or string does not confuse it.
fn test_line_mask(stripped: &str) -> Vec<bool> {
    let line_of = |offset: usize| stripped[..offset].matches('\n').count();
    let num_lines = stripped.lines().count();
    let mut mask = vec![false; num_lines.max(1)];
    let bytes = stripped.as_bytes();
    let mut search = 0;
    while let Some(pos) = stripped[search..].find("#[cfg(test)]") {
        let attr_at = search + pos;
        let mut i = attr_at + "#[cfg(test)]".len();
        // Find the item's extent: first `{` (then brace-match) or a `;`
        // before any brace (e.g. `#[cfg(test)] use foo;`).
        let mut end = bytes.len();
        while i < bytes.len() {
            match bytes[i] {
                b';' => {
                    end = i + 1;
                    break;
                }
                b'{' => {
                    let mut depth = 1usize;
                    i += 1;
                    while i < bytes.len() && depth > 0 {
                        match bytes[i] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                    end = i;
                    break;
                }
                _ => i += 1,
            }
        }
        let first = line_of(attr_at);
        let last = line_of(end.saturating_sub(1).min(bytes.len().saturating_sub(1)));
        for flag in mask.iter_mut().take(last + 1).skip(first) {
            *flag = true;
        }
        search = end.max(attr_at + 1);
    }
    mask
}

/// One parsed allowlist entry.
#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path: String,
    raw: String,
    used: bool,
}

fn parse_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    let mut entries = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (spec, justification) = match line.split_once('#') {
            Some((s, j)) => (s.trim(), j.trim()),
            None => (line, ""),
        };
        if justification.is_empty() {
            return Err(format!(
                "{}:{}: allowlist entry '{line}' has no '# justification' — every \
                 suppression must record why the site is sound",
                path.display(),
                lineno + 1
            ));
        }
        let mut parts = spec.split_whitespace();
        let (Some(rule), Some(entry_path), None) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{}:{}: allowlist entry '{line}' is not 'rule path # justification'",
                path.display(),
                lineno + 1
            ));
        };
        entries.push(AllowEntry {
            rule: rule.to_owned(),
            path: entry_path.to_owned(),
            raw: spec.to_owned(),
            used: false,
        });
    }
    Ok(entries)
}

fn rs_files_under(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// Scans one file's source text; `rel_path` is used in findings.
fn scan_source(rel_path: &str, src: &str, rules: &[Rule]) -> Vec<Finding> {
    let stripped = strip_code(src);
    let mask = test_line_mask(&stripped);
    let mut findings = Vec::new();
    for (idx, (line, original)) in stripped.lines().zip(src.lines()).enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for (rule, check) in rules {
            if check(line) {
                findings.push(Finding {
                    rule,
                    path: rel_path.to_owned(),
                    line: idx + 1,
                    excerpt: original.trim().to_owned(),
                });
            }
        }
    }
    findings
}

/// Runs the lint over `root` (a workspace checkout) against the
/// allowlist at `allow_path`. Pure with respect to process state: no
/// environment reads, deterministic file order.
pub fn run(root: &Path, allow_path: &Path) -> Result<Outcome, String> {
    let mut allow = parse_allowlist(allow_path)?;
    let mut outcome = Outcome::default();
    let scans = SCAN_DIRS
        .iter()
        .map(|d| (*d, RULES))
        .chain(UNSAFE_ONLY_DIRS.iter().map(|d| (*d, UNSAFE_ONLY_RULES)));
    for (dir, rules) in scans {
        for file in rs_files_under(&root.join(dir)) {
            let rel = file
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the root", file.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            for finding in scan_source(&rel, &src, rules) {
                let entry = allow
                    .iter_mut()
                    .find(|a| a.rule == finding.rule && a.path == finding.path);
                if let Some(entry) = entry {
                    entry.used = true;
                    outcome.allowed.push(finding);
                } else {
                    outcome.violations.push(finding);
                }
            }
        }
    }
    outcome.stale = allow
        .iter()
        .filter(|a| !a.used)
        .map(|a| a.raw.clone())
        .collect();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// Builds a throwaway workspace tree under the system temp dir.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(name: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("xtask-lint-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            Fixture { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let p = self.root.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, content).unwrap();
        }

        fn lint(&self) -> Outcome {
            run(&self.root, &self.root.join(ALLOWLIST_FILE)).unwrap()
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn flags_hash_map_iteration_feeding_results() {
        let fx = Fixture::new("hash-violation");
        fx.write(
            "crates/sim/src/bad.rs",
            "use std::collections::HashMap;\n\
             fn emit(map: &HashMap<String, f64>, out: &mut Vec<f64>) {\n\
             \x20   for (_k, v) in map.iter() {\n\
             \x20       out.push(*v);\n\
             \x20   }\n\
             }\n",
        );
        let outcome = fx.lint();
        assert!(!outcome.is_clean());
        let rules: Vec<_> = outcome.violations.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"hash-container"), "got {rules:?}");
        assert_eq!(outcome.violations[0].path, "crates/sim/src/bad.rs");
        assert_eq!(outcome.violations[0].line, 1);
    }

    #[test]
    fn allowlist_suppresses_and_stale_entries_fail() {
        let fx = Fixture::new("allow");
        fx.write(
            "crates/sim/src/ok.rs",
            "use std::collections::HashSet;\nstruct S { seen: HashSet<u64> }\n",
        );
        fx.write(
            ALLOWLIST_FILE,
            "# audited suppressions\n\
             hash-container crates/sim/src/ok.rs # membership-only set\n",
        );
        let outcome = fx.lint();
        assert!(outcome.is_clean(), "{}", outcome.render());
        assert_eq!(outcome.allowed.len(), 2);

        fx.write(
            ALLOWLIST_FILE,
            "hash-container crates/sim/src/ok.rs # membership-only set\n\
             wall-clock crates/sim/src/gone.rs # file was deleted\n",
        );
        let outcome = fx.lint();
        assert!(!outcome.is_clean());
        assert_eq!(outcome.stale, vec!["wall-clock crates/sim/src/gone.rs"]);
    }

    #[test]
    fn entries_without_justification_are_rejected() {
        let fx = Fixture::new("nojust");
        fx.write(ALLOWLIST_FILE, "hash-container crates/sim/src/x.rs\n");
        let err = run(&fx.root, &fx.root.join(ALLOWLIST_FILE)).unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn comments_strings_and_test_modules_are_not_flagged() {
        let fx = Fixture::new("stripping");
        fx.write(
            "crates/stats/src/clean.rs",
            "// a HashMap in a comment is fine\n\
             /* so is an Instant in a block comment */\n\
             const MSG: &str = \"HashSet in a string\";\n\
             const RAW: &str = r#\"SystemTime in a raw string\"#;\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   use std::collections::HashMap;\n\
             \x20   fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n\
             }\n",
        );
        let outcome = fx.lint();
        assert!(outcome.is_clean(), "{}", outcome.render());
        assert!(outcome.allowed.is_empty());
    }

    #[test]
    fn wall_clock_and_reduction_and_cast_rules_fire() {
        let fx = Fixture::new("rules");
        fx.write(
            "crates/runner/src/bad.rs",
            "use std::time::Instant;\n\
             fn total(m: &std::collections::BTreeMap<u32, f64>) -> f64 {\n\
             \x20   m.values().sum()\n\
             }\n\
             fn frac(x: f64) -> u32 { x.round() as u32 }\n\
             fn sum2(m: &std::collections::BTreeMap<u32, f64>) -> f64 {\n\
             \x20   m.values().copied().sum::<f64>()\n\
             }\n",
        );
        let outcome = fx.lint();
        let mut rules: Vec<_> = outcome.violations.iter().map(|f| f.rule).collect();
        rules.sort_unstable();
        rules.dedup();
        assert_eq!(
            rules,
            vec!["float-truncation", "unordered-reduction", "wall-clock"]
        );
    }

    #[test]
    fn unsafe_blocks_are_flagged_everywhere_but_attributes_are_not() {
        let fx = Fixture::new("unsafe");
        // In a determinism-scanned crate…
        fx.write(
            "crates/sim/src/raw.rs",
            "pub fn peek(p: *const u8) -> u8 {\n\
             \x20   unsafe { *p }\n\
             }\n",
        );
        // …and in a crate exempt from the determinism rules.
        fx.write("crates/bench/src/ffi.rs", "pub unsafe fn poke() {}\n");
        // The lint attribute itself must not trip the rule.
        fx.write(
            "crates/stats/src/clean.rs",
            "#![forbid(unsafe_code)]\npub fn safe() {}\n",
        );
        let outcome = fx.lint();
        let flagged: Vec<_> = outcome
            .violations
            .iter()
            .map(|f| (f.rule, f.path.as_str()))
            .collect();
        assert_eq!(
            flagged,
            vec![
                ("unsafe-block", "crates/sim/src/raw.rs"),
                ("unsafe-block", "crates/bench/src/ffi.rs"),
            ]
        );
    }

    #[test]
    fn determinism_rules_do_not_apply_in_unsafe_only_dirs() {
        let fx = Fixture::new("exempt");
        // The CLI layer may use wall clocks and hash maps freely…
        fx.write(
            "crates/bench/src/timing.rs",
            "use std::time::Instant;\nuse std::collections::HashMap;\n",
        );
        let outcome = fx.lint();
        assert!(outcome.is_clean(), "{}", outcome.render());
    }

    #[test]
    fn instantaneous_does_not_match_instant() {
        let fx = Fixture::new("word-boundary");
        fx.write(
            "crates/san/src/ok.rs",
            "pub struct InstantaneousActivity;\npub fn instant_ok() {}\n",
        );
        let outcome = fx.lint();
        assert!(outcome.is_clean(), "{}", outcome.render());
    }

    #[test]
    fn the_real_tree_passes_with_its_allowlist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap();
        let outcome = run(root, &root.join(ALLOWLIST_FILE)).unwrap();
        assert!(outcome.is_clean(), "{}", outcome.render());
        // The audited sites exist: the allowlist is doing real work.
        assert!(
            !outcome.allowed.is_empty(),
            "expected at least one allowlisted finding in the workspace"
        );
    }
}

//! Workspace maintenance tasks, invoked as `cargo xtask <command>`.
//!
//! * `lint` — the determinism lint described in [`lint`]. Exits 0 when
//!   the tree is clean, 1 when violations or stale allowlist entries
//!   exist, and 2 on usage errors.
//! * `bench-json` — runs the SAN hot-path benchmark in full mode and
//!   rewrites the `current` medians of the tracked `BENCH_san.json` at
//!   the workspace root (the `baseline` section is preserved). See
//!   `EXPERIMENTS.md` § "Hot-path benchmark".

mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("bench-json") => run_bench_json(),
        Some(other) => {
            eprintln!("unknown command '{other}'\nusage: cargo xtask lint|bench-json");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint|bench-json");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: the binary lives in crates/xtask, so it is two
/// levels up from the manifest — independent of the invocation cwd.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let allow = root.join(lint::ALLOWLIST_FILE);
    match lint::run(root, &allow) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_bench_json() -> ExitCode {
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(workspace_root())
        .args([
            "bench",
            "-p",
            "itua-bench",
            "--bench",
            "san_hotpath",
            "--",
            "--json",
            "BENCH_san.json",
        ])
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(s) => {
            eprintln!("xtask bench-json: benchmark exited with {s}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask bench-json: failed to launch cargo: {e}");
            ExitCode::from(2)
        }
    }
}

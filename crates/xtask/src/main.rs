//! Workspace maintenance tasks, invoked as `cargo xtask <command>`.
//!
//! Currently the only command is `lint`: the determinism lint described
//! in [`lint`]. It exits 0 when the tree is clean, 1 when violations or
//! stale allowlist entries exist, and 2 on usage errors.

mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown command '{other}'\nusage: cargo xtask lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    // The binary lives in crates/xtask, so the workspace root is two
    // levels up from the manifest — independent of the invocation cwd.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up");
    let allow = root.join(lint::ALLOWLIST_FILE);
    match lint::run(root, &allow) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

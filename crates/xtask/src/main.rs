//! Workspace maintenance tasks, invoked as `cargo xtask <command>`.
//!
//! * `lint` — the determinism lint described in [`lint`]. Exits 0 when
//!   the tree is clean, 1 when violations or stale allowlist entries
//!   exist, and 2 on usage errors.
//! * `bench-json` — runs the tracked benchmarks in full mode and
//!   rewrites the `current` sections of `BENCH_san.json` (SAN hot-path
//!   timing medians), `BENCH_rare.json` (rare-event splitting figures),
//!   and `BENCH_analytic.json` (symmetry-lumped analytic headline) at
//!   the workspace root; the `baseline` sections are preserved. With
//!   `--check`, afterwards applies the [`benchcheck`] rules — >15%
//!   timing regression against a baseline, a rare-event
//!   `event_reduction` below 10×, a lumping `reduction_factor` below
//!   20×, or a lumped-vs-unlumped `micro_max_rel_err` above 1e-9 — and
//!   exits 2 when any rule fails. `--only BENCH` restricts the run (and
//!   the check) to one tracked bench, so CI can gate them at different
//!   severities. See `EXPERIMENTS.md` § "Hot-path benchmark",
//!   § "Rare-event benchmark", and § "Symmetry-lumping benchmark".

mod benchcheck;
mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("bench-json") => run_bench_json(&args[1..]),
        Some(other) => {
            eprintln!("unknown command '{other}'\nusage: cargo xtask lint|bench-json [--check] [--only BENCH]");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint|bench-json [--check] [--only BENCH]");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: the binary lives in crates/xtask, so it is two
/// levels up from the manifest — independent of the invocation cwd.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let allow = root.join(lint::ALLOWLIST_FILE);
    match lint::run(root, &allow) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The tracked benchmarks: (bench target, JSON file at the workspace
/// root, check rule).
type CheckFn = fn(&str) -> Result<Vec<String>, String>;
const TRACKED_BENCHES: &[(&str, &str, CheckFn)] = &[
    ("san_hotpath", "BENCH_san.json", benchcheck::check_san),
    ("rare_split", "BENCH_rare.json", benchcheck::check_rare),
    (
        "analytic",
        "BENCH_analytic.json",
        benchcheck::check_analytic,
    ),
];

fn run_bench_json(args: &[String]) -> ExitCode {
    let mut check = false;
    let mut only: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--only" => match it.next() {
                Some(name) if TRACKED_BENCHES.iter().any(|(b, _, _)| b == name) => {
                    only = Some(name);
                }
                Some(name) => {
                    eprintln!(
                        "xtask bench-json: unknown bench '{name}' (tracked: {})",
                        TRACKED_BENCHES
                            .iter()
                            .map(|(b, _, _)| *b)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("xtask bench-json: --only needs a bench name");
                    return ExitCode::from(2);
                }
            },
            _ => {
                eprintln!("usage: cargo xtask bench-json [--check] [--only BENCH]");
                return ExitCode::from(2);
            }
        }
    }
    let selected = |bench: &str| only.is_none_or(|o| o == bench);
    for (bench, json, _) in TRACKED_BENCHES {
        if !selected(bench) {
            continue;
        }
        let status = std::process::Command::new(env!("CARGO"))
            .current_dir(workspace_root())
            .args([
                "bench",
                "-p",
                "itua-bench",
                "--bench",
                bench,
                "--",
                "--json",
                json,
            ])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask bench-json: {bench} exited with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask bench-json: failed to launch cargo: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !check {
        return ExitCode::SUCCESS;
    }
    let mut failed = false;
    for (bench, json, rule) in TRACKED_BENCHES {
        if !selected(bench) {
            continue;
        }
        let path = workspace_root().join(json);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask bench-json: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match rule(&text) {
            Ok(violations) if violations.is_empty() => println!("{json}: ok"),
            Ok(violations) => {
                failed = true;
                for v in violations {
                    println!("{json}: REGRESSION: {v}");
                }
            }
            Err(e) => {
                eprintln!("xtask bench-json: {json}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

//! Regression rules for the tracked benchmark JSONs, applied by
//! `cargo xtask bench-json --check`.
//!
//! Three files are gated:
//!
//! * `BENCH_san.json` (schema `itua-san-hotpath-v1`) — timing medians.
//!   Every `current` entry must stay within [`REGRESSION_FACTOR`] of its
//!   `baseline` entry; higher ns/replication is a regression.
//! * `BENCH_rare.json` (schema `itua-rare-split-v1`) — the deterministic
//!   rare-event splitting figures. `current.event_reduction` must stay at
//!   or above [`MIN_EVENT_REDUCTION`]: the importance-splitting engine
//!   must keep needing ≥10× fewer simulated events than plain Monte
//!   Carlo for equal CI width on the figure-4 tail point.
//! * `BENCH_analytic.json` (schema `itua-analytic-lumped-v1`) — the
//!   symmetry-lumped analytic headline. `current.reduction_factor`
//!   (full tangible states per lumped orbit) must stay at or above
//!   [`MIN_LUMPING_REDUCTION`], `current.micro_max_rel_err` (lumped vs
//!   unlumped cross-check) at or below [`MAX_LUMPED_REL_ERR`], and the
//!   `build_ms`/`solve_ms` wall-clock figures within
//!   [`REGRESSION_FACTOR`] of their baselines.
//!
//! The parser is deliberately minimal — xtask has no dependencies, and
//! both files are written by the benches themselves as one-line objects
//! whose `baseline`/`current` sections contain only numeric fields.

/// Allowed slowdown of a timing median relative to its baseline (15%).
pub const REGRESSION_FACTOR: f64 = 1.15;

/// Floor on the rare-event benchmark's work-normalized variance-reduction
/// factor.
pub const MIN_EVENT_REDUCTION: f64 = 10.0;

/// Floor on the symmetry-lumping state-space reduction (full tangible
/// states per lumped orbit) of the analytic headline point. The tracked
/// point achieves ~163x; 20x leaves room to swap the point without
/// letting the quotient silently degenerate.
pub const MIN_LUMPING_REDUCTION: f64 = 20.0;

/// Ceiling on the lumped-vs-unlumped relative disagreement across all
/// measures on the analytic benchmark's micro cross-check. The quotient
/// is exact, so anything above uniformization truncation noise means
/// the canonicalizer or the lumped generator broke.
pub const MAX_LUMPED_REL_ERR: f64 = 1e-9;

/// Extracts the flat object following `"key":{` up to the next `}`.
///
/// Sufficient for the tracked bench files: their `baseline` and
/// `current` sections hold only `"name":number` pairs, never nested
/// objects or strings.
fn object_section<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let tag = format!("\"{key}\":{{");
    let start = text
        .find(&tag)
        .ok_or_else(|| format!("no \"{key}\" object"))?
        + tag.len();
    let len = text[start..]
        .find('}')
        .ok_or_else(|| format!("unterminated \"{key}\" object"))?;
    Ok(&text[start..start + len])
}

/// Parses the `"name":number` pairs of a flat object section.
fn numeric_entries(section: &str) -> Vec<(String, f64)> {
    section
        .split(',')
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            let name = k.trim().trim_matches('"').to_owned();
            let val: f64 = v.trim().parse().ok()?;
            Some((name, val))
        })
        .collect()
}

fn lookup(entries: &[(String, f64)], name: &str) -> Option<f64> {
    entries.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

/// Checks the hot-path timing file: every `current` median must be
/// within [`REGRESSION_FACTOR`] of its `baseline`.
///
/// Returns the list of violations (empty = clean).
///
/// # Errors
///
/// Returns a message when the file does not have the expected
/// baseline/current shape.
pub fn check_san(text: &str) -> Result<Vec<String>, String> {
    let baseline = numeric_entries(object_section(text, "baseline")?);
    let current = numeric_entries(object_section(text, "current")?);
    if current.is_empty() {
        return Err("empty \"current\" object".into());
    }
    let mut violations = Vec::new();
    for (name, cur) in &current {
        let Some(base) = lookup(&baseline, name) else {
            // A scenario added after the baseline was recorded has
            // nothing to regress against.
            continue;
        };
        if *cur > base * REGRESSION_FACTOR && base > 0.0 {
            violations.push(format!(
                "{name}: {cur:.0} ns vs baseline {base:.0} ns (+{:.0}%, limit +{:.0}%)",
                (cur / base - 1.0) * 100.0,
                (REGRESSION_FACTOR - 1.0) * 100.0,
            ));
        }
    }
    Ok(violations)
}

/// Checks the rare-event file: `current.event_reduction` must be at
/// least [`MIN_EVENT_REDUCTION`].
///
/// Returns the list of violations (empty = clean).
///
/// # Errors
///
/// Returns a message when the file has no numeric
/// `current.event_reduction` field.
pub fn check_rare(text: &str) -> Result<Vec<String>, String> {
    let current = numeric_entries(object_section(text, "current")?);
    let red = lookup(&current, "event_reduction")
        .ok_or_else(|| "no numeric \"event_reduction\" in \"current\"".to_owned())?;
    if red < MIN_EVENT_REDUCTION {
        Ok(vec![format!(
            "event_reduction {red:.2}x below the {MIN_EVENT_REDUCTION}x floor"
        )])
    } else {
        Ok(Vec::new())
    }
}

/// Checks the analytic lumping file: the structural reduction and
/// exactness gates plus a timing regression check on the build/solve
/// wall-clock figures.
///
/// Returns the list of violations (empty = clean).
///
/// # Errors
///
/// Returns a message when the file has no numeric
/// `current.reduction_factor` or `current.micro_max_rel_err` field.
pub fn check_analytic(text: &str) -> Result<Vec<String>, String> {
    let baseline = numeric_entries(object_section(text, "baseline")?);
    let current = numeric_entries(object_section(text, "current")?);
    let reduction = lookup(&current, "reduction_factor")
        .ok_or_else(|| "no numeric \"reduction_factor\" in \"current\"".to_owned())?;
    let rel_err = lookup(&current, "micro_max_rel_err")
        .ok_or_else(|| "no numeric \"micro_max_rel_err\" in \"current\"".to_owned())?;
    let mut violations = Vec::new();
    if reduction < MIN_LUMPING_REDUCTION {
        violations.push(format!(
            "reduction_factor {reduction:.1}x below the {MIN_LUMPING_REDUCTION}x floor"
        ));
    }
    if rel_err > MAX_LUMPED_REL_ERR {
        violations.push(format!(
            "micro_max_rel_err {rel_err:.3e} above the {MAX_LUMPED_REL_ERR:.0e} ceiling"
        ));
    }
    for name in ["build_ms", "solve_ms"] {
        let (Some(cur), Some(base)) = (lookup(&current, name), lookup(&baseline, name)) else {
            // Before a baseline is recorded there is nothing to regress
            // against (mirrors check_san's new-scenario rule).
            continue;
        };
        if cur > base * REGRESSION_FACTOR && base > 0.0 {
            violations.push(format!(
                "{name}: {cur:.0} ms vs baseline {base:.0} ms (+{:.0}%, limit +{:.0}%)",
                (cur / base - 1.0) * 100.0,
                (REGRESSION_FACTOR - 1.0) * 100.0,
            ));
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAN: &str = r#"{"schema":"itua-san-hotpath-v1","unit":"median ns per replication","baseline":{"a":100.0,"b":200.0},"current":{"a":110.0,"b":200.0}}"#;

    #[test]
    fn within_tolerance_is_clean() {
        assert_eq!(check_san(SAN).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn regression_over_15_percent_is_flagged() {
        let text = SAN.replace("\"a\":110.0,\"b\":200.0", "\"a\":116.0,\"b\":200.0");
        let violations = check_san(&text).unwrap();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("a: 116 ns"), "{violations:?}");
    }

    #[test]
    fn new_scenario_without_baseline_is_ignored() {
        let text = SAN.replace(
            "\"current\":{\"a\":110.0",
            "\"current\":{\"c\":999.0,\"a\":110.0",
        );
        assert_eq!(check_san(&text).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn malformed_file_is_an_error() {
        assert!(check_san("{}").is_err());
        assert!(check_rare("{\"current\":{\"trees\":1.0}}").is_err());
    }

    #[test]
    fn event_reduction_floor() {
        let ok = r#"{"baseline":{"event_reduction":17.5},"current":{"event_reduction":12.0}}"#;
        assert_eq!(check_rare(ok).unwrap(), Vec::<String>::new());
        let bad = r#"{"baseline":{"event_reduction":17.5},"current":{"event_reduction":9.99}}"#;
        assert_eq!(check_rare(bad).unwrap().len(), 1);
    }

    const ANALYTIC: &str = r#"{"schema":"itua-analytic-lumped-v1","unit":"states, reduction factor, milliseconds, relative error","baseline":{"reduction_factor":163.2,"micro_max_rel_err":1.0e-12,"build_ms":16000.0,"solve_ms":138000.0},"current":{"reduction_factor":163.2,"micro_max_rel_err":1.0e-12,"build_ms":16500.0,"solve_ms":139000.0}}"#;

    #[test]
    fn analytic_within_gates_is_clean() {
        assert_eq!(check_analytic(ANALYTIC).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn analytic_reduction_floor_and_exactness_ceiling() {
        let bad = ANALYTIC.replace(
            "\"current\":{\"reduction_factor\":163.2,\"micro_max_rel_err\":1.0e-12",
            "\"current\":{\"reduction_factor\":3.0,\"micro_max_rel_err\":1.0e-6",
        );
        let violations = check_analytic(&bad).unwrap();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("reduction_factor"), "{violations:?}");
        assert!(
            violations[1].contains("micro_max_rel_err"),
            "{violations:?}"
        );
    }

    #[test]
    fn analytic_timing_regression_is_flagged() {
        let bad = ANALYTIC.replace("\"solve_ms\":139000.0", "\"solve_ms\":190000.0");
        let violations = check_analytic(&bad).unwrap();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].starts_with("solve_ms:"), "{violations:?}");
    }

    #[test]
    fn analytic_missing_baseline_timings_are_ignored() {
        let text = ANALYTIC.replace(
            "\"baseline\":{\"reduction_factor\":163.2,\"micro_max_rel_err\":1.0e-12,\"build_ms\":16000.0,\"solve_ms\":138000.0}",
            "\"baseline\":{\"reduction_factor\":163.2,\"micro_max_rel_err\":1.0e-12}",
        );
        assert_eq!(check_analytic(&text).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn analytic_malformed_is_an_error() {
        assert!(check_analytic("{}").is_err());
        assert!(check_analytic(r#"{"baseline":{},"current":{"reduction_factor":50.0}}"#).is_err());
    }

    #[test]
    fn scientific_notation_parses() {
        let text = r#"{"baseline":{"x":1.5e-4},"current":{"x":1.6e-4,"event_reduction":17.501246516957455}}"#;
        assert!(check_san(text).unwrap().is_empty());
        assert!(check_rare(text).unwrap().is_empty());
    }
}

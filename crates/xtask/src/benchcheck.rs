//! Regression rules for the tracked benchmark JSONs, applied by
//! `cargo xtask bench-json --check`.
//!
//! Two files are gated:
//!
//! * `BENCH_san.json` (schema `itua-san-hotpath-v1`) — timing medians.
//!   Every `current` entry must stay within [`REGRESSION_FACTOR`] of its
//!   `baseline` entry; higher ns/replication is a regression.
//! * `BENCH_rare.json` (schema `itua-rare-split-v1`) — the deterministic
//!   rare-event splitting figures. `current.event_reduction` must stay at
//!   or above [`MIN_EVENT_REDUCTION`]: the importance-splitting engine
//!   must keep needing ≥10× fewer simulated events than plain Monte
//!   Carlo for equal CI width on the figure-4 tail point.
//!
//! The parser is deliberately minimal — xtask has no dependencies, and
//! both files are written by the benches themselves as one-line objects
//! whose `baseline`/`current` sections contain only numeric fields.

/// Allowed slowdown of a timing median relative to its baseline (15%).
pub const REGRESSION_FACTOR: f64 = 1.15;

/// Floor on the rare-event benchmark's work-normalized variance-reduction
/// factor.
pub const MIN_EVENT_REDUCTION: f64 = 10.0;

/// Extracts the flat object following `"key":{` up to the next `}`.
///
/// Sufficient for the tracked bench files: their `baseline` and
/// `current` sections hold only `"name":number` pairs, never nested
/// objects or strings.
fn object_section<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let tag = format!("\"{key}\":{{");
    let start = text
        .find(&tag)
        .ok_or_else(|| format!("no \"{key}\" object"))?
        + tag.len();
    let len = text[start..]
        .find('}')
        .ok_or_else(|| format!("unterminated \"{key}\" object"))?;
    Ok(&text[start..start + len])
}

/// Parses the `"name":number` pairs of a flat object section.
fn numeric_entries(section: &str) -> Vec<(String, f64)> {
    section
        .split(',')
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            let name = k.trim().trim_matches('"').to_owned();
            let val: f64 = v.trim().parse().ok()?;
            Some((name, val))
        })
        .collect()
}

fn lookup(entries: &[(String, f64)], name: &str) -> Option<f64> {
    entries.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

/// Checks the hot-path timing file: every `current` median must be
/// within [`REGRESSION_FACTOR`] of its `baseline`.
///
/// Returns the list of violations (empty = clean).
///
/// # Errors
///
/// Returns a message when the file does not have the expected
/// baseline/current shape.
pub fn check_san(text: &str) -> Result<Vec<String>, String> {
    let baseline = numeric_entries(object_section(text, "baseline")?);
    let current = numeric_entries(object_section(text, "current")?);
    if current.is_empty() {
        return Err("empty \"current\" object".into());
    }
    let mut violations = Vec::new();
    for (name, cur) in &current {
        let Some(base) = lookup(&baseline, name) else {
            // A scenario added after the baseline was recorded has
            // nothing to regress against.
            continue;
        };
        if *cur > base * REGRESSION_FACTOR && base > 0.0 {
            violations.push(format!(
                "{name}: {cur:.0} ns vs baseline {base:.0} ns (+{:.0}%, limit +{:.0}%)",
                (cur / base - 1.0) * 100.0,
                (REGRESSION_FACTOR - 1.0) * 100.0,
            ));
        }
    }
    Ok(violations)
}

/// Checks the rare-event file: `current.event_reduction` must be at
/// least [`MIN_EVENT_REDUCTION`].
///
/// Returns the list of violations (empty = clean).
///
/// # Errors
///
/// Returns a message when the file has no numeric
/// `current.event_reduction` field.
pub fn check_rare(text: &str) -> Result<Vec<String>, String> {
    let current = numeric_entries(object_section(text, "current")?);
    let red = lookup(&current, "event_reduction")
        .ok_or_else(|| "no numeric \"event_reduction\" in \"current\"".to_owned())?;
    if red < MIN_EVENT_REDUCTION {
        Ok(vec![format!(
            "event_reduction {red:.2}x below the {MIN_EVENT_REDUCTION}x floor"
        )])
    } else {
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAN: &str = r#"{"schema":"itua-san-hotpath-v1","unit":"median ns per replication","baseline":{"a":100.0,"b":200.0},"current":{"a":110.0,"b":200.0}}"#;

    #[test]
    fn within_tolerance_is_clean() {
        assert_eq!(check_san(SAN).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn regression_over_15_percent_is_flagged() {
        let text = SAN.replace("\"a\":110.0,\"b\":200.0", "\"a\":116.0,\"b\":200.0");
        let violations = check_san(&text).unwrap();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("a: 116 ns"), "{violations:?}");
    }

    #[test]
    fn new_scenario_without_baseline_is_ignored() {
        let text = SAN.replace(
            "\"current\":{\"a\":110.0",
            "\"current\":{\"c\":999.0,\"a\":110.0",
        );
        assert_eq!(check_san(&text).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn malformed_file_is_an_error() {
        assert!(check_san("{}").is_err());
        assert!(check_rare("{\"current\":{\"trees\":1.0}}").is_err());
    }

    #[test]
    fn event_reduction_floor() {
        let ok = r#"{"baseline":{"event_reduction":17.5},"current":{"event_reduction":12.0}}"#;
        assert_eq!(check_rare(ok).unwrap(), Vec::<String>::new());
        let bad = r#"{"baseline":{"event_reduction":17.5},"current":{"event_reduction":9.99}}"#;
        assert_eq!(check_rare(bad).unwrap().len(), 1);
    }

    #[test]
    fn scientific_notation_parses() {
        let text = r#"{"baseline":{"x":1.5e-4},"current":{"x":1.6e-4,"event_reduction":17.501246516957455}}"#;
        assert!(check_san(text).unwrap().is_empty());
        assert!(check_rare(text).unwrap().is_empty());
    }
}
